#!/usr/bin/env python3
"""Benchmark regression gate: fresh BENCH_*.json vs committed baselines.

CI regenerates the benchmark JSONs on every run; this script compares
each throughput metric in them against the copy committed at a git
ref (default ``HEAD``) and fails when any rate dropped by more than
the threshold (default 25% — CI runners are shared and noisy, and
the benchmarks already take a median over warmed rounds, so a drop
past that is a real regression, not jitter).

Usage::

    python tools/bench_gate.py                       # all BENCH_*.json
    python tools/bench_gate.py BENCH_kernel.json     # a subset
    python tools/bench_gate.py --ref origin/main --threshold 0.3

Only ``tasks_per_wall_second*``, ``per_seed_speedup*``,
``warm_speedup*`` and ``hit_rate*`` keys are compared (recursively,
so BENCH_scale.json's per-point entries are covered;
BENCH_ensemble.json's ensemble-vs-independent speedup and
BENCH_store.json's cold-vs-warm speedup and memoized hit rate are
gated like rates — a drop means the engine or the store lost its
edge).
``checkpoint_overhead*`` and ``recovery_seconds*`` are **cost**
metrics gated the other way around: they fail when the fresh value
*rises* more than the threshold above the baseline (absolute slack —
costs sit near zero, where ratios explode on noise).  A file or key
missing from the baseline is reported and skipped — new benchmarks
must not fail the gate on the commit that introduces them.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

#: Metric keys compared by the gate (prefix match, tuple form as
#: accepted by ``str.startswith``).  Rates fail when they *drop*,
#: costs fail when they *rise*.  ``warm_speedup`` and ``hit_rate``
#: (BENCH_store.json) gate like rates: a drop means warm store hits
#: got slower relative to cold runs, or the memoized sweep stopped
#: hitting.
METRIC_PREFIX = ("tasks_per_wall_second", "per_seed_speedup",
                 "warm_speedup", "hit_rate")
COST_PREFIX = ("checkpoint_overhead", "recovery_seconds")


def entry_label(entry, index: int) -> str:
    """A content-derived label for one list entry.

    BENCH_scale.json's ``points[]`` entries are labelled by what they
    measure (``9408n64p``, plus ``xNshards`` for sharded points), not
    by position — so reordering points or inserting one in the middle
    compares each point against *its own* baseline instead of its
    neighbour's.  Entries without identifying keys keep the positional
    ``[i]`` form.
    """
    if isinstance(entry, dict) and "n_nodes" in entry:
        label = f"{entry['n_nodes']}n"
        if "n_partitions" in entry:
            label += f"{entry['n_partitions']}p"
        shards = entry.get("n_shards") or entry.get("shards")
        if shards:
            label += f"x{shards}shards"
        return label
    return f"[{index}]"


def extract_rates(doc, prefix: str = ""
                  ) -> Iterator[Tuple[str, float, str]]:
    """Yield ``(dotted.path, value, kind)`` for every gated metric,
    where ``kind`` is ``"rate"`` or ``"cost"``."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if not isinstance(value, (int, float)) or isinstance(
                    value, bool):
                yield from extract_rates(value, path)
            elif key.startswith(METRIC_PREFIX):
                yield path, float(value), "rate"
            elif key.startswith(COST_PREFIX):
                yield path, float(value), "cost"
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            label = entry_label(value, i)
            sep = "." if label[0] != "[" else ""
            yield from extract_rates(value, f"{prefix}{sep}{label}"
                                     if sep else f"{prefix}{label}")


def compare(fresh: dict, baseline: dict, threshold: float
            ) -> Tuple[List[str], List[str]]:
    """Compare gated metrics; returns (failures, notes)."""
    failures: List[str] = []
    notes: List[str] = []
    base_rates: Dict[str, float] = {
        path: value for path, value, _ in extract_rates(baseline)}
    for path, rate, kind in extract_rates(fresh):
        base = base_rates.get(path)
        if base is None:
            notes.append(f"{path}: no baseline (new metric), skipped")
            continue
        if kind == "cost":
            # Ceiling gate with absolute slack: costs live near zero,
            # where a ratio gate would flag pure noise.
            line = (f"{path}: {rate:.3f} vs baseline {base:.3f} "
                    f"(ceiling {base + threshold:.3f})")
            if rate > base + threshold:
                failures.append(line)
            else:
                notes.append(line)
            continue
        if base <= 0:
            notes.append(f"{path}: non-positive baseline {base}, skipped")
            continue
        ratio = rate / base
        line = f"{path}: {rate:,.0f} vs baseline {base:,.0f} ({ratio:.2f}x)"
        if ratio < 1.0 - threshold:
            failures.append(line)
        else:
            notes.append(line)
    return failures, notes


def baseline_text(path: Path, ref: str, repo_root: Path) -> str:
    """The file's content at ``ref``, or '' when absent there."""
    rel = path.resolve().relative_to(repo_root.resolve())
    proc = subprocess.run(
        ["git", "show", f"{ref}:{rel.as_posix()}"],
        capture_output=True, text=True, cwd=repo_root)
    return proc.stdout if proc.returncode == 0 else ""


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="benchmark JSONs (default: BENCH_*.json "
                             "at the repo root)")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baselines "
                             "(default: HEAD)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional throughput drop "
                             "(default: 0.25)")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    files = ([Path(f) for f in args.files] if args.files
             else sorted(repo_root.glob("BENCH_*.json")))
    if not files:
        print("bench-gate: no BENCH_*.json files found", file=sys.stderr)
        return 2

    any_failures = False
    for path in files:
        if not path.is_file():
            print(f"bench-gate: {path}: missing", file=sys.stderr)
            any_failures = True
            continue
        fresh = json.loads(path.read_text())
        base_text = baseline_text(path, args.ref, repo_root)
        if not base_text:
            print(f"{path.name}: no baseline at {args.ref}, skipped")
            continue
        failures, notes = compare(fresh, json.loads(base_text),
                                  args.threshold)
        for note in notes:
            print(f"{path.name}: {note}")
        for failure in failures:
            print(f"{path.name}: REGRESSION {failure}", file=sys.stderr)
        any_failures = any_failures or bool(failures)

    if any_failures:
        print(f"bench-gate: metrics regressed past the "
              f"{args.threshold:.0%} threshold", file=sys.stderr)
        return 1
    print("bench-gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
