"""The task manager: accepts task descriptions and feeds the agent."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from ..exceptions import ConfigurationError
from .description import TaskDescription
from .pilot import Pilot
from .states import TaskState
from .task import Task, build_tasks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Event
    from .session import Session


class TaskManager:
    """Client-side task intake; forwards tasks to a pilot's agent."""

    def __init__(self, session: "Session") -> None:
        self.session = session
        self.env = session.env
        self.uid = session.ids.next("tmgr")
        self.pilot: Optional[Pilot] = None
        self.tasks: List[Task] = []

    def add_pilot(self, pilot: Pilot) -> None:
        """Bind this manager to a pilot (one pilot per manager here)."""
        if self.pilot is not None:
            raise ConfigurationError(f"{self.uid} already has a pilot")
        self.pilot = pilot

    def submit_tasks(
        self, descriptions: Union[TaskDescription, Sequence[TaskDescription]],
        bulk: bool = False,
    ) -> Union[Task, List[Task]]:
        """Create tasks and enqueue them for the agent.

        Tasks queue in the agent's intake store immediately; the agent
        starts draining it once bootstrapped.  ``bulk=True`` switches a
        multi-task submission to the batched pipeline: tasks are built
        in one pass (:func:`~repro.core.task.build_tasks`) and admitted
        through :meth:`Agent.submit_bulk` with O(batch) kernel events
        instead of one store/Timeout/generator chain per task.  Both
        paths produce byte-identical same-seed traces.
        """
        if self.pilot is None or self.pilot.agent is None:
            raise ConfigurationError(f"{self.uid}: add_pilot() first")
        single = isinstance(descriptions, TaskDescription)
        descs = [descriptions] if single else list(descriptions)
        if bulk and not single:
            ids = self.session.ids
            uids = [ids.next("task") for _ in descs]
            out = build_tasks(self.env, uids, descs,
                              profiler=self.session.profiler)
            for task in out:
                task.advance(TaskState.TMGR_SCHEDULING)
            self.tasks.extend(out)
            self.pilot.agent.submit_bulk(out)
            return out
        out: List[Task] = []
        for desc in descs:
            task = Task(self.env, self.session.ids.next("task"), desc,
                        profiler=self.session.profiler)
            task.advance(TaskState.TMGR_SCHEDULING)
            self.tasks.append(task)
            out.append(task)
            self.pilot.agent.incoming.put(task)
        return out[0] if single else out

    def cancel_tasks(self, tasks: Optional[Sequence[Task]] = None) -> int:
        """Cancel the given tasks (default: every non-final task).

        Returns how many tasks were actually canceled.  Running
        payloads are killed at the backend; queued ones are dropped.
        """
        if self.pilot is None or self.pilot.agent is None:
            raise ConfigurationError(f"{self.uid}: add_pilot() first")
        targets = self.tasks if tasks is None else list(tasks)
        count = 0
        for task in targets:
            if not task.is_final:
                self.pilot.agent.cancel_task(task)
                count += 1
        return count

    def wait_tasks(self, tasks: Optional[Sequence[Task]] = None) -> "Event":
        """Event firing when all given tasks (default: all submitted
        tasks) reach a final state.

        Implemented as a single counting event fed by each task's
        ``_on_final`` hook rather than an ``AllOf`` over one completion
        event per task: for the large synthetic workloads that removes
        tens of thousands of Event allocations and queue round-trips
        without changing when the returned event fires (it triggers at
        the last task's final transition).
        """
        targets = self.tasks if tasks is None else list(tasks)
        done = self.env.event()
        remaining = sum(1 for t in targets if not t.is_final)
        if remaining == 0:
            return done.succeed()

        def on_final(_task: Task) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0 and not done.triggered:
                done.succeed()

        for task in targets:
            if task.is_final:
                continue
            prev = task._on_final
            if prev is None:
                task._on_final = on_final
            else:
                def chained(t: Task, _prev=prev) -> None:
                    _prev(t)
                    on_final(t)
                task._on_final = chained
        return done

    # -- convenience -------------------------------------------------------

    def counts(self) -> dict:
        """Tally of task states (for progress reporting and tests)."""
        tally: dict = {}
        for task in self.tasks:
            tally[task.state] = tally.get(task.state, 0) + 1
        return tally
