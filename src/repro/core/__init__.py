"""The pilot runtime (RADICAL-Pilot analogue) — the paper's core system.

Public API::

    from repro.core import (
        Session, PilotDescription, PartitionSpec, TaskDescription,
    )

    session = Session(cluster=frontier(64), seed=1)
    pmgr = session.pilot_manager()
    tmgr = session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=64,
        partitions=(PartitionSpec("flux", n_instances=4),
                    PartitionSpec("dragon", n_instances=4)),
    ))
    tmgr.add_pilot(pilot)
    tasks = tmgr.submit_tasks([TaskDescription(duration=180.0)
                               for _ in range(1000)])
    session.run(tmgr.wait_tasks())
"""

from .description import (
    BACKEND_DRAGON,
    BACKEND_FLUX,
    BACKEND_PRRTE,
    BACKEND_SRUN,
    BACKENDS,
    MODE_EXECUTABLE,
    MODE_FUNCTION,
    PartitionSpec,
    PilotDescription,
    TaskDescription,
)
from .pilot import Pilot
from .pilot_manager import PilotManager
from .service import Service, ServiceDescription, ServiceEndpoint
from .session import Session
from .states import PilotState, TaskState
from .task import Task
from .task_manager import TaskManager

__all__ = [
    "BACKENDS",
    "BACKEND_DRAGON",
    "BACKEND_FLUX",
    "BACKEND_PRRTE",
    "BACKEND_SRUN",
    "MODE_EXECUTABLE",
    "MODE_FUNCTION",
    "PartitionSpec",
    "Pilot",
    "PilotDescription",
    "PilotManager",
    "PilotState",
    "Service",
    "ServiceDescription",
    "ServiceEndpoint",
    "Session",
    "Task",
    "TaskDescription",
    "TaskManager",
    "TaskState",
]
