"""Input/output staging subsystems.

RP manages data staging uniformly across execution substrates
(§3.2): tasks pass through StagerInput before scheduling and
StagerOutput after execution.  Multiple stager instances operate
concurrently (the stacked boxes in Fig. 1); each staging item costs a
latency draw.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...platform.latency import LatencyModel
from ...sim import Environment, Resource, RngStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class Stager:
    """A pool of concurrent staging workers.

    Each item pays a protocol/metadata overhead
    (``staging_cost_per_item``) plus — when a shared filesystem is
    attached — a bandwidth-shared data transfer through it.
    """

    def __init__(self, env: Environment, latencies: LatencyModel,
                 rng: RngStreams, concurrency: int = 4,
                 name: str = "stager", filesystem=None) -> None:
        self.env = env
        self.latencies = latencies
        self.rng = rng
        self.name = name
        self.filesystem = filesystem
        self._workers = Resource(env, capacity=concurrency)
        self.n_items = 0
        self.bytes_staged = 0.0

    @property
    def concurrency(self) -> int:
        return self._workers.capacity

    def stage(self, n_items: int, item_mb: float = 0.0):
        """Generator: move ``n_items`` staging items through one worker."""
        if n_items <= 0:
            return
        nbytes = item_mb * 1024 * 1024
        with self._workers.request() as worker:
            yield worker
            for _ in range(n_items):
                cost = self.rng.lognormal_latency(
                    f"{self.name}.item",
                    self.latencies.staging_cost_per_item,
                    cv=self.latencies.staging_cv)
                if cost > 0:
                    yield self.env.timeout(cost)
                if self.filesystem is not None and nbytes > 0:
                    yield from self.filesystem.transfer(nbytes)
                    self.bytes_staged += nbytes
                self.n_items += 1
