"""Common interface of the agent's executor subsystems.

Each executor owns one backend deployment on its node partition(s):
it bootstraps the backend, accepts scheduled tasks, drives them
through execution, and reports every attempt's outcome back to the
agent (which owns retries and final states).  This mirrors the
paper's design where Flux/Dragon integrations are "cleanly isolated
within the Agent's launching and executing subsystems" (§3.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ...platform.cluster import Allocation
from ..states import TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..task import Task
    from .agent import Agent


class ExecutorBase:
    """Base class for srun / Flux / Dragon executors."""

    #: Backend name, set by subclasses.
    backend: str = "?"

    def __init__(self, agent: "Agent", allocation: Allocation) -> None:
        self.agent = agent
        self.env = agent.env
        self.latencies = agent.latencies
        self.rng = agent.rng
        self.profiler = agent.profiler
        #: Metrics registry (``None`` when observability is disabled).
        self.metrics = agent.metrics
        self.allocation = allocation
        self.ready = False
        self.failed = False
        #: Cleared by the agent when the backend is blacklisted after
        #: repeated infrastructure failures; restored on recovery.
        #: Distinct from :attr:`ready` (backend up) — a blacklisted
        #: backend may still be up but is skipped by the router.
        self.routable = True
        self.n_submitted = 0
        self.n_active = 0
        #: Tasks whose attempt finished (any outcome); with
        #: :attr:`ready_at` this yields the measured drain rate the
        #: DynamicRouter uses.
        self.n_retired = 0
        self.ready_at = None

    @property
    def outstanding(self) -> int:
        """Tasks accepted but not yet retired (queued + running);
        consumed by the load-aware :class:`~.router.DynamicRouter`."""
        return self.n_active

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Generator: bootstrap the backend.  Sets :attr:`ready` on
        success, :attr:`failed` on unrecoverable startup failure (the
        agent removes failed executors from routing)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def shutdown(self) -> None:
        """Stop the backend; queued work is failed back to the agent."""
        raise NotImplementedError

    # -- execution -----------------------------------------------------------

    def submit(self, task: "Task") -> None:
        """Accept one task for execution (non-blocking).

        The executor must eventually call
        ``self.agent.attempt_finished(task, ok, reason)`` exactly once
        per attempt.
        """
        raise NotImplementedError

    def cancel(self, task: "Task") -> bool:
        """Best-effort cancellation of a task this executor holds.

        Called *after* the task object is already in a final state;
        the executor only tears down backend-side work (kills the
        payload, frees resources).  Returns True when backend-side
        work was found and canceled.
        """
        return False

    # -- fault hooks ---------------------------------------------------------

    def on_node_failure(self, node) -> None:
        """A node went DOWN (fault injection).  Executors owning the
        node kill and requeue the affected work; the default ignores
        the call (the node is not theirs or the backend has no
        node-level state)."""

    def on_node_recover(self, node) -> None:
        """The node came back UP; executors may resume using it."""

    # -- helpers -------------------------------------------------------------

    def _task_started(self, task: "Task") -> None:
        if task.state != TaskState.AGENT_EXECUTING:
            task.backend = self.backend
            task.advance(TaskState.AGENT_EXECUTING, backend=self.backend)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} nodes={self.allocation.n_nodes} "
                f"ready={self.ready}>")
