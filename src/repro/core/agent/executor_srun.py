"""The srun executor: RP's default launch path via Slurm.

The agent scheduler places tasks on the partition (slot-level), then
each task is launched through the machine-wide
:class:`~repro.rjms.srun.SrunLauncher` — paying the serialized
controller RPC and holding one of the 112 concurrency-ceiling slots
for its whole lifetime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...platform.cluster import Allocation
from .executor_base import ExecutorBase
from .scheduler import PartitionScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..task import Task
    from .agent import Agent


class SrunExecutor(ExecutorBase):
    """Launches executable tasks with one srun invocation each."""

    backend = "srun"

    def __init__(self, agent: "Agent", allocation: Allocation) -> None:
        super().__init__(agent, allocation)
        self.srun = agent.session.srun
        self.scheduler = PartitionScheduler(
            self.env, allocation, name=f"{agent.uid}.srun.sched",
            metrics=self.metrics)
        self._alive = False
        self._procs = {}
        self._steps = {}
        #: task uid -> granted placements, so node failures can find
        #: the tasks running on the dead node.
        self._placements = {}

    @property
    def outstanding(self) -> int:
        return self.scheduler.queue_depth + self.n_active

    def start(self):
        """srun needs no bootstrap beyond Slurm itself."""
        self._alive = True
        self.ready = True
        self.ready_at = self.env.now
        if self.profiler is not None:
            self.profiler.record(f"{self.agent.uid}.srun", "backend_start",
                                 kind="srun", nodes=self.allocation.n_nodes)
            self.profiler.record(f"{self.agent.uid}.srun", "backend_ready",
                                 kind="srun", nodes=self.allocation.n_nodes)
        return
        yield  # pragma: no cover - generator protocol

    def shutdown(self) -> None:
        self._alive = False
        self.ready = False
        self.scheduler.cancel_pending()

    def submit(self, task: "Task") -> None:
        self.n_submitted += 1
        self._procs[task.uid] = self.env.process(self._execute(task))

    def cancel(self, task: "Task") -> bool:
        """Kill the running srun step (the client process dies and its
        ceiling slot frees); queued placements clean themselves up when
        granted (the _execute process notices the final task state)."""
        step = self._steps.get(task.uid)
        if step is not None and getattr(step, "is_alive", False):
            step.interrupt("canceled")
            return True
        return False

    def on_node_failure(self, node) -> None:
        """Kill the running steps with placements on the dead node;
        their attempts fail as infrastructure failures and qualify for
        retry.  Queued requests that no longer fit the shrunken
        partition fail immediately instead of deadlocking the queue."""
        from ...exceptions import NodeFailureError

        index = node.index
        for uid, placements in list(self._placements.items()):
            if all(pl.node_index != index for pl in placements):
                continue
            step = self._steps.get(uid)
            if step is not None and getattr(step, "is_alive", False):
                step.interrupt(NodeFailureError(f"node failure: {node.name}"))
        self.scheduler.node_lost()

    def on_node_recover(self, node) -> None:
        """Recovered capacity may satisfy queued placement requests."""
        self.scheduler._drain()

    def _execute(self, task: "Task"):
        from ...exceptions import BackendError, NodeFailureError, SchedulingError
        from ...sim import Interrupt

        try:
            placements = yield self.scheduler.place(task.description.resources)
        except NodeFailureError as exc:
            self._procs.pop(task.uid, None)
            self.agent.attempt_finished(task, ok=False, reason=str(exc),
                                        infra=True)
            return
        except SchedulingError as exc:
            self._procs.pop(task.uid, None)
            self.agent.attempt_finished(task, ok=False, reason=str(exc))
            return
        if task.is_final:
            # Canceled while waiting for resources.
            self._procs.pop(task.uid, None)
            self.scheduler.free(placements)
            return
        self._placements[task.uid] = placements
        faults = self.agent.faults
        if faults is not None:
            fault = faults.launch_outcome("srun")
            if fault is not None:
                if fault.delay > 0:
                    yield self.env.timeout(fault.delay)
                self._placements.pop(task.uid, None)
                self._procs.pop(task.uid, None)
                self.scheduler.free(placements)
                self.agent.attempt_finished(task, ok=False,
                                            reason=fault.reason, infra=True)
                return
        self.n_active += 1
        payload_failed = task.description.fail
        duration = 0.0 if payload_failed else task.description.duration
        interrupt_cause = None
        step = self.env.process(self.srun.run_task(
            alloc_nodes=self.agent.pilot_nodes,
            duration=duration,
            on_start=lambda: self._task_started(task),
            on_stop=task.mark_exec_stop,
        ))
        self._steps[task.uid] = step
        try:
            yield step
        except Interrupt as interrupt:
            interrupt_cause = interrupt.cause \
                if interrupt.cause is not None else "canceled"
        finally:
            self.n_active -= 1
            self.scheduler.free(placements)
            self._procs.pop(task.uid, None)
            self._steps.pop(task.uid, None)
            self._placements.pop(task.uid, None)
        if interrupt_cause is not None:
            if isinstance(interrupt_cause, (NodeFailureError, BackendError)):
                # Killed by a fault, not canceled: report the attempt so
                # the agent can retry/fail the task.
                self.agent.attempt_finished(task, ok=False,
                                            reason=str(interrupt_cause),
                                            infra=True)
            return
        if payload_failed:
            self.agent.attempt_finished(task, ok=False,
                                        reason="task payload failed")
        else:
            self.agent.attempt_finished(task, ok=True)
