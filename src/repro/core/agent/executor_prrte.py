"""The PRRTE executor: RP supplies scheduling, the DVM launches.

The paper (§5): "Our work demonstrated how RP complements PRRTE's
minimalist design by supplying scheduling, fault tolerance, and
coordination logic."  Accordingly this executor pairs the agent's
:class:`~repro.core.agent.scheduler.PartitionScheduler` (slot-level
placement) with a :class:`~repro.rjms.prrte.PrrteDVM` (fast launch,
no ceiling, no internal queue).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...platform.cluster import Allocation
from ...rjms.prrte import PrrteDVM
from .executor_base import ExecutorBase
from .scheduler import PartitionScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..task import Task
    from .agent import Agent


class PrrteExecutor(ExecutorBase):
    """Launches executable tasks through a PRRTE DVM."""

    backend = "prrte"

    def __init__(self, agent: "Agent", allocation: Allocation) -> None:
        super().__init__(agent, allocation)
        self.dvm = PrrteDVM(self.env, allocation, self.latencies, self.rng,
                            dvm_id=f"{agent.uid}.prrte",
                            profiler=self.profiler)
        self.scheduler = PartitionScheduler(
            self.env, allocation, name=f"{agent.uid}.prrte.sched")
        self._steps = {}

    @property
    def outstanding(self) -> int:
        return self.scheduler.queue_depth + self.n_active

    def start(self):
        yield from self.dvm.start()
        self.ready = True
        self.ready_at = self.env.now

    def shutdown(self) -> None:
        self.ready = False
        self.dvm.shutdown()
        self.scheduler.cancel_pending()

    def submit(self, task: "Task") -> None:
        self.n_submitted += 1
        self.env.process(self._execute(task))

    def cancel(self, task: "Task") -> bool:
        step = self._steps.get(task.uid)
        if step is not None and getattr(step, "is_alive", False):
            step.interrupt("canceled")
            return True
        return False

    def _execute(self, task: "Task"):
        from ...exceptions import SchedulingError
        from ...sim import Interrupt

        try:
            placements = yield self.scheduler.place(
                task.description.resources)
        except SchedulingError as exc:
            self.agent.attempt_finished(task, ok=False, reason=str(exc))
            return
        if task.is_final:
            self.scheduler.free(placements)
            return
        self.n_active += 1
        payload_failed = task.description.fail
        duration = 0.0 if payload_failed else task.description.duration
        canceled = False
        step = self.env.process(self.dvm.run_task(
            duration=duration,
            on_start=lambda: self._task_started(task),
            on_stop=task.mark_exec_stop,
        ))
        self._steps[task.uid] = step
        try:
            yield step
        except Interrupt:
            canceled = True
        finally:
            self.n_active -= 1
            self.scheduler.free(placements)
            self._steps.pop(task.uid, None)
        if canceled:
            return
        if payload_failed:
            self.agent.attempt_finished(task, ok=False,
                                        reason="task payload failed")
        else:
            self.agent.attempt_finished(task, ok=True)
