"""The Flux executor: asynchronous, event-driven integration (§3.2.1).

Tasks are serialized into jobspecs and submitted over the instance's
ingest RPC; the executor never polls — a watcher process per instance
consumes the job event stream and maps Flux lifecycle events onto RP
task states.  Multiple concurrent instances (the *flux_n* and hybrid
configurations) are managed through a
:class:`~repro.flux.hierarchy.FluxHierarchy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ...exceptions import JobspecError, RuntimeStartupError
from ...flux import (
    EV_EXCEPTION,
    EV_FINISH,
    EV_START,
    FluxHierarchy,
    Jobspec,
)
from ...platform.cluster import Allocation
from .executor_base import ExecutorBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..task import Task
    from .agent import Agent


class FluxExecutor(ExecutorBase):
    """Drives one or more concurrent Flux instances."""

    backend = "flux"

    def __init__(self, agent: "Agent", allocation: Allocation,
                 n_instances: int = 1, policy: str = "fcfs") -> None:
        super().__init__(agent, allocation)
        self.hierarchy = FluxHierarchy(
            self.env, allocation, self.latencies, self.rng,
            n_instances=n_instances, policy=policy,
            name=f"{agent.uid}.flux", profiler=self.profiler,
            metrics=self.metrics, faults=agent.faults,
            lean=agent.session.lean,
            tracer=agent.obs.tracer if agent.obs.enabled else None)
        #: flux job id -> RP task, for event correlation.
        self._job_to_task: Dict[str, "Task"] = {}
        #: RP task uid -> (instance, flux job id), for cancellation.
        self._task_to_job: Dict[str, tuple] = {}
        #: id(description) -> (description, jobspec).  Descriptions are
        #: frozen, so identical submissions reuse one validated spec —
        #: bulk synthetic workloads share a single description across
        #: every task.  The description is pinned in the value to keep
        #: its id() from being recycled.
        self._spec_cache: Dict[int, tuple] = {}

    @property
    def n_instances(self) -> int:
        return self.hierarchy.n_instances

    @property
    def outstanding(self) -> int:
        return sum(inst.outstanding for inst in self.hierarchy.instances)

    def start(self):
        """Bootstrap all instances concurrently, then start watchers."""
        yield from self.hierarchy.start_all()
        self.ready = True
        self.ready_at = self.env.now
        for inst in self.hierarchy.instances:
            # Only the events _on_event acts on: submit/alloc/release
            # are bookkeeping noise at this layer and skipping them
            # removes a delivery round-trip per event per job.  A
            # callback subscription (rather than a queue + watcher
            # process) saves a blocking-get event per delivery; the
            # handler is fully synchronous so this is safe.
            inst.events.subscribe_callback(
                self._on_event, names=(EV_START, EV_FINISH, EV_EXCEPTION))

    def shutdown(self) -> None:
        self.ready = False
        self.hierarchy.shutdown_all()

    def submit(self, task: "Task") -> None:
        td = task.description
        entry = self._spec_cache.get(id(td))
        if entry is None or entry[0] is not td:
            spec = Jobspec(
                command=td.executable,
                resources=td.resources,
                duration=td.duration,
                # RP priority [-16, 15] maps onto flux urgency [0, 31].
                urgency=16 + td.priority,
                attributes={"fail": True} if td.fail else {},
            )
            self._spec_cache[id(td)] = (td, spec)
        else:
            spec = entry[1]
        try:
            instance = self.hierarchy.least_loaded(
                min_cores=td.resources.cores, min_gpus=td.resources.gpus)
            job = instance.submit(spec)
        except JobspecError as exc:
            self.agent.attempt_finished(task, ok=False, reason=str(exc))
            return
        except RuntimeStartupError as exc:
            # No ready instance (or it died between pick and submit):
            # infrastructural, so the retry policy may reroute the task.
            self.agent.attempt_finished(task, ok=False, reason=str(exc),
                                        infra=True)
            return
        self.n_submitted += 1
        self._job_to_task[job.job_id] = task
        self._task_to_job[task.uid] = (instance, job.job_id)

    def cancel(self, task: "Task") -> bool:
        """Cancel the task's Flux job (pending or running)."""
        entry = self._task_to_job.get(task.uid)
        if entry is None:
            return False
        instance, job_id = entry
        return instance.cancel(job_id, reason="canceled by RP")

    def _on_event(self, event):
        """Map one delivered Flux job event onto RP task state."""
        task = self._job_to_task.get(event.job_id)
        if task is None:
            return
        if event.name == EV_START:
            self.n_active += 1
            self._task_started(task)
        elif event.name == EV_FINISH:
            self.n_active -= 1
            del self._job_to_task[event.job_id]
            self._task_to_job.pop(task.uid, None)
            task.mark_exec_stop()
            self.agent.attempt_finished(task, ok=True)
        elif event.name == EV_EXCEPTION:
            if task.exec_start is not None and task.exec_stop is None:
                self.n_active -= 1
            del self._job_to_task[event.job_id]
            self._task_to_job.pop(task.uid, None)
            reason = event.meta.get("reason", "flux job exception")
            self.agent.attempt_finished(task, ok=False, reason=reason,
                                        infra=bool(event.meta.get("infra")))

    # -- fault hooks ---------------------------------------------------------

    def on_node_failure(self, node) -> None:
        """Forward the failure to the instance whose partition owns the
        node; its running jobs there are killed and requeued."""
        for inst in self.hierarchy.instances:
            if node.index in inst.allocation._by_index:
                inst.fail_node(node)
                return

    def on_node_recover(self, node) -> None:
        """Recovered capacity: kick the owning instance's scheduler."""
        for inst in self.hierarchy.instances:
            if node.index in inst.allocation._by_index:
                inst._kick()
                return


class ShardedFluxExecutor(ExecutorBase):
    """:class:`FluxExecutor` twin whose instances live in shard workers.

    Selected by the agent when the session runs a
    :class:`~repro.shard.coordinator.ShardEngine`.  The submit path is
    a line-for-line mirror of the sequential executor — same spec
    cache, same routing through ``least_loaded``, same bookkeeping —
    except that the chosen "instance" is an
    :class:`~repro.shard.coordinator.InstanceProxy` and the submit
    itself is a buffered message to the owning shard.

    Job events come back as :class:`~repro.shard.protocol.JobReport`
    batches applied at window boundaries through
    :meth:`apply_report`, which replays :meth:`FluxExecutor._on_event`
    with two extra guards for interleavings the sequential path never
    sees (a task canceled on the coordinator while its report was in
    flight).
    """

    backend = "flux"

    def __init__(self, agent: "Agent", allocation: Allocation,
                 n_instances: int = 1, policy: str = "fcfs") -> None:
        super().__init__(agent, allocation)
        self.engine = agent.session.engine
        assert self.engine is not None, "sharded executor needs an engine"
        self.hierarchy = self.engine.build_hierarchy(
            self, allocation, n_instances=n_instances, policy=policy,
            name=f"{agent.uid}.flux")
        #: flux job id -> RP task, for report correlation.
        self._job_to_task: Dict[str, "Task"] = {}
        #: RP task uid -> (proxy, flux job id), for cancellation.
        self._task_to_job: Dict[str, tuple] = {}
        #: id(description) -> (description, jobspec); see FluxExecutor.
        self._spec_cache: Dict[int, tuple] = {}
        #: Job ids whose START report was applied (task then counted
        #: in n_active); FINISH/EXCEPTION reports decrement only for
        #: these, so n_active stays balanced under report latency.
        self._started: set = set()

    @property
    def n_instances(self) -> int:
        return self.hierarchy.n_instances

    @property
    def outstanding(self) -> int:
        return sum(inst.outstanding for inst in self.hierarchy.instances)

    def start(self):
        """Bootstrap all shards' instances concurrently."""
        yield from self.hierarchy.start_all()
        self.ready = True
        self.ready_at = self.env.now

    def shutdown(self) -> None:
        self.ready = False
        self.hierarchy.shutdown_all()

    def submit(self, task: "Task") -> None:
        td = task.description
        entry = self._spec_cache.get(id(td))
        if entry is None or entry[0] is not td:
            spec = Jobspec(
                command=td.executable,
                resources=td.resources,
                duration=td.duration,
                # RP priority [-16, 15] maps onto flux urgency [0, 31].
                urgency=16 + td.priority,
                attributes={"fail": True} if td.fail else {},
            )
            self._spec_cache[id(td)] = (td, spec)
        else:
            spec = entry[1]
        try:
            proxy = self.hierarchy.least_loaded(
                min_cores=td.resources.cores, min_gpus=td.resources.gpus)
            job_id = proxy.submit(spec)
        except JobspecError as exc:
            self.agent.attempt_finished(task, ok=False, reason=str(exc))
            return
        except RuntimeStartupError as exc:
            self.agent.attempt_finished(task, ok=False, reason=str(exc),
                                        infra=True)
            return
        self.n_submitted += 1
        self._job_to_task[job_id] = task
        self._task_to_job[task.uid] = (proxy, job_id)

    def cancel(self, task: "Task") -> bool:
        """Cancel the task's Flux job in its shard (fire and forget)."""
        entry = self._task_to_job.get(task.uid)
        if entry is None:
            return False
        proxy, job_id = entry
        return proxy.cancel(job_id, reason="canceled by RP")

    def apply_report(self, rep) -> None:
        """Apply one shard job report at the window boundary."""
        # Proxy completion counters first: the shard-side instance
        # counts every job (known to the agent or not), and routing
        # balance depends on the mirrors matching.
        proxy = self.hierarchy.instances[rep.instance]
        if rep.name == EV_FINISH:
            proxy.n_completed += 1
        elif rep.name == EV_EXCEPTION:
            proxy.n_failed += 1
        task = self._job_to_task.get(rep.job_id)
        if task is None:
            return
        if rep.name == EV_START:
            if task.is_final:
                # Canceled on the coordinator while the start report
                # was in flight; the shard-side cancel is already on
                # its way and will produce the exception report.
                return
            self.n_active += 1
            self._started.add(rep.job_id)
            self._task_started(task)
            # Backdate to the shard-side start: exec intervals must
            # pair with the backdated stop below, or sub-window tasks
            # would report negative durations.
            task.exec_start = rep.time
        elif rep.name == EV_FINISH:
            if rep.job_id in self._started:
                self._started.discard(rep.job_id)
                self.n_active -= 1
            del self._job_to_task[rep.job_id]
            self._task_to_job.pop(task.uid, None)
            if not task.is_final:
                # Backdate to the shard-side event time: the window
                # only delays observation, not execution.
                task.mark_exec_stop(when=rep.time)
            self.agent.attempt_finished(task, ok=True)
        elif rep.name == EV_EXCEPTION:
            if rep.job_id in self._started:
                self._started.discard(rep.job_id)
                self.n_active -= 1
            del self._job_to_task[rep.job_id]
            self._task_to_job.pop(task.uid, None)
            reason = rep.meta.get("reason", "flux job exception")
            self.agent.attempt_finished(task, ok=False, reason=reason,
                                        infra=bool(rep.meta.get("infra")))

    # -- fault hooks ---------------------------------------------------------

    def on_node_failure(self, node) -> None:
        """Ship the node failure to the shard owning its partition."""
        from ...shard.protocol import FailNodeMsg

        for proxy in self.hierarchy.instances:
            if node.index in proxy.allocation._by_index:
                self.engine.post(proxy.host,
                                 FailNodeMsg(self.env._now, node.index))
                return

    def on_node_recover(self, node) -> None:
        from ...shard.protocol import RecoverNodeMsg

        for proxy in self.hierarchy.instances:
            if node.index in proxy.allocation._by_index:
                self.engine.post(proxy.host,
                                 RecoverNodeMsg(self.env._now, node.index))
                return
