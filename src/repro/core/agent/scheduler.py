"""The agent-level partition scheduler.

For backends where RP itself owns placement (srun, Dragon), the agent
scheduler hands out slot-level placements on the backend's partition,
queueing requests FIFO while resources are busy.  (Flux partitions
schedule internally; tasks routed there bypass this component.)
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ...platform.cluster import Allocation
from ...platform.node import Placement
from ...platform.spec import ResourceSpec
from ...sim import Environment, Event


class PartitionScheduler:
    """FIFO slot scheduler over one partition allocation."""

    def __init__(self, env: Environment, allocation: Allocation,
                 name: str = "sched", metrics=None) -> None:
        self.env = env
        self.allocation = allocation
        self.name = name
        self._pending: Deque[Tuple[ResourceSpec, Event]] = deque()
        self.n_placed = 0
        # Optional observability: placement-queue depth and grant count
        # labeled by scheduler name (one scheduler per partition).
        self._m_queue = self._m_placed = None
        if metrics is not None:
            self._m_queue = metrics.gauge(
                "repro_agent_sched_queue_depth",
                "placement requests waiting for partition slots",
                labels=("scheduler",)).labels(name)
            self._m_placed = metrics.counter(
                "repro_agent_sched_placements_total",
                "slot placements granted",
                labels=("scheduler",)).labels(name)

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def place(self, spec: ResourceSpec) -> Event:
        """Request a placement; the event fires with the placements list.

        Requests are granted strictly FIFO — a large task at the queue
        head blocks later small ones (the agent relies on the backend's
        own scheduler, e.g. Flux backfill, when that matters).
        """
        ev = Event(self.env)
        alloc = self.allocation
        if alloc.n_down_nodes and (spec.cores > alloc.usable_cores
                                   or spec.gpus > alloc.usable_gpus):
            # Node failures shrank the partition below the request:
            # fail fast (the retry policy decides what happens next)
            # instead of queueing a request nothing can ever grant.
            from ...exceptions import NodeFailureError

            ev._defused = True  # type: ignore[attr-defined]
            ev.fail(NodeFailureError(
                f"{self.name}: unsatisfiable after node failure"))
            return ev
        if not self._pending:
            placements = self.allocation.try_place(spec)
            if placements is not None:
                self.n_placed += 1
                if self._m_placed is not None:
                    self._m_placed.inc()
                ev.succeed(placements)
                return ev
        self._pending.append((spec, ev))
        if self._m_queue is not None:
            self._m_queue.set(len(self._pending))
        return ev

    def free(self, placements: List[Placement]) -> None:
        """Release placements and drain the FIFO queue as far as possible."""
        self.allocation.release(placements)
        self._drain()

    def _drain(self) -> None:
        while self._pending:
            spec, ev = self._pending[0]
            placements = self.allocation.try_place(spec)
            if placements is None:
                break
            self._pending.popleft()
            self.n_placed += 1
            if self._m_placed is not None:
                self._m_placed.inc()
            ev.succeed(placements)
        if self._m_queue is not None:
            self._m_queue.set(len(self._pending))

    def cancel_pending(self) -> None:
        """Fail all queued placement requests (partition shutdown)."""
        while self._pending:
            _spec, ev = self._pending.popleft()
            if not ev.triggered:
                ev._defused = True  # type: ignore[attr-defined]
                from ...exceptions import SchedulingError

                ev.fail(SchedulingError(f"{self.name}: partition shut down"))

    def node_lost(self) -> None:
        """A partition node went DOWN: fail the queued requests that no
        longer fit the usable capacity (they would deadlock the FIFO
        queue forever), keep the satisfiable rest, and re-drain."""
        from ...exceptions import NodeFailureError

        alloc = self.allocation
        keep: Deque[Tuple[ResourceSpec, Event]] = deque()
        for spec, ev in self._pending:
            if spec.cores > alloc.usable_cores or spec.gpus > alloc.usable_gpus:
                if not ev.triggered:
                    ev._defused = True  # type: ignore[attr-defined]
                    ev.fail(NodeFailureError(
                        f"{self.name}: unsatisfiable after node failure"))
            else:
                keep.append((spec, ev))
        if len(keep) != len(self._pending):
            self._pending = keep
        self._drain()
