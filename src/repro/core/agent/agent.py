"""The RP Agent: resource acquisition + task execution orchestration.

The agent is the paper's focus (§3): it bootstraps on the pilot
allocation, concurrently instantiates the configured runtime backends
on disjoint node partitions, and drives every task through

    staging-in -> routing -> backend execution -> staging-out

with a serialized per-task dispatch stage whose cost models RP's task
management subsystem (the ~1,500-1,600 tasks/s upper bound observed
in the hybrid experiment).  Retries and failover live here: executor
attempt failures are retried while the task has retries left (plus the
session :class:`~repro.faults.RetryPolicy` budget for infrastructure
failures, with seeded exponential backoff), backends that fail to
bootstrap are removed from the routing table, and backends that keep
failing are blacklisted so surviving backends absorb the work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ...analytics.events import BACKEND_BLACKLISTED, TASK_ATTEMPT_FAILED
from ...exceptions import ConfigurationError, SchedulingError
from ...platform.cluster import Allocation
from ...sim import Store
from ..description import (
    BACKEND_DRAGON,
    BACKEND_FLUX,
    BACKEND_PRRTE,
    BACKEND_SRUN,
    PartitionSpec,
)
from ..states import TaskState
from .executor_base import ExecutorBase
from .executor_dragon import DragonExecutor
from .executor_flux import FluxExecutor
from .executor_prrte import PrrteExecutor
from .executor_srun import SrunExecutor
from .router import DynamicRouter, Router
from .staging import Stager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pilot import Pilot
    from ..session import Session
    from ..task import Task


class Agent:
    """One agent per pilot."""

    def __init__(self, session: "Session", pilot: "Pilot") -> None:
        self.session = session
        self.pilot = pilot
        self.env = session.env
        self.latencies = session.latencies
        self.rng = session.rng
        self.profiler = session.profiler
        self.obs = session.obs
        self.metrics = session.obs.registry
        self.uid = session.ids.next("agent")
        self.log = session.obs.logger(self.uid)
        self._m_dispatched = self._m_intake = None
        if self.metrics is not None:
            self._m_dispatched = self.metrics.counter(
                "repro_agent_dispatched_total",
                "tasks through the serialized dispatch stage",
                labels=("agent",)).labels(self.uid)
            self._m_intake = self.metrics.gauge(
                "repro_agent_intake_depth",
                "tasks queued at the agent intake",
                labels=("agent",)).labels(self.uid)
        self.incoming: Store = Store(self.env)
        self.executors: Dict[str, ExecutorBase] = {}
        self.stager_in = Stager(self.env, self.latencies, self.rng,
                                name=f"{self.uid}.stage_in",
                                filesystem=session.filesystem)
        self.stager_out = Stager(self.env, self.latencies, self.rng,
                                 name=f"{self.uid}.stage_out",
                                 filesystem=session.filesystem)
        self._router: Optional[Router] = None
        # Set when backend membership changes (crash, blacklist,
        # restart); the routing table is then rebuilt lazily on the
        # next routing decision instead of once per retry.
        self._router_dirty = False
        self._alive = False
        self._n_flux_instances = 0
        self._inflight: set = set()
        #: Bulk-submission state: batches handed over before bootstrap,
        #: tasks admitted but whose dispatch slot has not fired yet, and
        #: the time at which the serialized dispatch stage frees up
        #: (keeps successive bulk waves — and bulk after streaming —
        #: serialized like the legacy loop).
        self._bulk_backlog: List[List["Task"]] = []
        self._bulk_pending: set = set()
        self._dispatch_free_at = 0.0
        #: Session fault model (``None`` unless the session was built
        #: with a :class:`~repro.faults.FaultSpec`); owns the retry
        #: policy and all fault randomness.
        self.faults = session.faults
        #: backend name -> consecutive infra-failure strikes.
        self._backend_strikes: Dict[str, int] = {}
        self.services: List = []
        self.n_dispatched = 0
        self.n_done = 0
        self.n_failed = 0
        self.n_canceled = 0

    # -- properties -------------------------------------------------------

    @property
    def pilot_nodes(self) -> int:
        return self.pilot.description.nodes

    @property
    def available_backends(self) -> List[str]:
        return [name for name, ex in self.executors.items() if ex.ready]

    def max_task_capacity(self) -> tuple:
        """(cores, gpus) of the largest single task any deployed
        backend instance can host.

        Flux and Dragon instances each manage a disjoint partition, so
        a task can be at most as wide as the widest single instance;
        srun can span its whole partition.
        """
        best_cores = best_gpus = 0
        for ex in self.executors.values():
            if not ex.ready:
                continue
            if hasattr(ex, "hierarchy"):  # Flux
                pools = [i.allocation for i in ex.hierarchy.instances]
            elif hasattr(ex, "runtimes"):  # Dragon
                pools = [rt.allocation for rt in ex.runtimes]
            else:  # srun
                pools = [ex.allocation]
            for pool in pools:
                best_cores = max(best_cores, pool.total_cores)
                best_gpus = max(best_gpus, pool.total_gpus)
        return best_cores, best_gpus

    # -- bootstrap -----------------------------------------------------------

    def bootstrap(self):
        """Generator: bring up the agent and all backend executors."""
        span = self.obs.tracer.begin(f"{self.uid}.bootstrap",
                                     cat="bootstrap", agent=self.uid)
        yield self.env.timeout(self.latencies.agent_startup)
        allocation = self.pilot.allocation
        assert allocation is not None, "agent bootstraps after allocation"
        self._build_executors(allocation)
        procs = [self.env.process(ex.start())
                 for ex in self.executors.values()]
        if procs:
            yield self.env.all_of(procs)
        # Drop executors that failed to bootstrap (Dragon watchdog etc.).
        dropped = [name for name, ex in self.executors.items()
                   if not ex.ready]
        self.executors = {
            name: ex for name, ex in self.executors.items() if ex.ready
        }
        for name in dropped:
            self.log.warning("backend failed to bootstrap", backend=name)
        if not self.executors:
            raise ConfigurationError(f"{self.uid}: no backend came up")
        self._router = self._make_router()
        self._alive = True
        self.log.info("agent ready",
                      backends=",".join(sorted(self.executors)))
        self.obs.tracer.end(span)
        self.env.process(self._dispatch_loop())
        if self.faults is not None:
            # Arm the fault clocks only once the stack is fully up, so
            # the injection schedule is a pure function of the seed and
            # the bootstrapped topology.
            self.faults.on_agent_ready(self)
        if self._bulk_backlog:
            waves, self._bulk_backlog = self._bulk_backlog, []
            for wave in waves:
                self._admit_bulk(wave)

    def _make_router(self) -> Router:
        ready = {name: ex for name, ex in self.executors.items()
                 if ex.ready and ex.routable}
        if not ready:
            # Everything blacklisted/down: fall back to whatever is up
            # rather than routing into the void.
            ready = {name: ex for name, ex in self.executors.items()
                     if ex.ready}
        if self.pilot.description.routing == "dynamic":
            return DynamicRouter(ready)
        return Router(list(ready))

    def _build_executors(self, allocation: Allocation) -> None:
        desc = self.pilot.description
        shares = desc.node_shares()
        seen = set()
        cursor = 0
        for part, share in zip(desc.partitions, shares):
            if part.backend in seen:
                raise ConfigurationError(
                    f"duplicate partition backend {part.backend!r}")
            seen.add(part.backend)
            nodes = allocation.nodes[cursor:cursor + share]
            cursor += share
            sub = Allocation(allocation.cluster, nodes,
                             walltime=allocation.walltime,
                             job_id=f"{allocation.job_id}.{part.backend}")
            self.executors[part.backend] = self._make_executor(part, sub)

    def _make_executor(self, part: PartitionSpec,
                       sub: Allocation) -> ExecutorBase:
        if part.backend == BACKEND_SRUN:
            return SrunExecutor(self, sub)
        if part.backend == BACKEND_FLUX:
            self._n_flux_instances = part.n_instances
            engine = self.session.engine
            if engine is not None and engine.wants(part.n_instances):
                from .executor_flux import ShardedFluxExecutor

                return ShardedFluxExecutor(self, sub,
                                           n_instances=part.n_instances,
                                           policy=part.policy)
            return FluxExecutor(self, sub, n_instances=part.n_instances,
                                policy=part.policy)
        if part.backend == BACKEND_DRAGON:
            return DragonExecutor(self, sub, n_instances=part.n_instances)
        if part.backend == BACKEND_PRRTE:
            return PrrteExecutor(self, sub)
        raise ConfigurationError(f"unknown backend {part.backend!r}")

    def shutdown(self) -> None:
        """Stop dispatching and shut all backends down.

        Tasks still queued or in flight are canceled — the behaviour
        of a pilot hitting its walltime: the allocation disappears and
        no task on it can finish.
        """
        self._alive = False
        if self.faults is not None:
            self.faults.stop()
        for ex in self.executors.values():
            ex.shutdown()
        while True:
            task = self.incoming.try_get()
            if task is None:
                break
            self.n_canceled += 1
            task.cancel()
        # Bulk tasks waiting for their dispatch slot (or for bootstrap)
        # are queued work just like the intake store's.
        for wave in self._bulk_backlog:
            for task in wave:
                if not task.is_final:
                    self.n_canceled += 1
                    task.cancel()
        self._bulk_backlog.clear()
        for task in list(self._bulk_pending):
            if not task.is_final:
                self.n_canceled += 1
                task.cancel()
        self._bulk_pending.clear()
        for task in list(self._inflight):
            if not task.is_final:
                self.n_canceled += 1
                task.cancel()
        self._inflight.clear()

    # -- dispatch ------------------------------------------------------------

    def _dispatch_mean(self) -> float:
        """Mean of the serialized task-management cost [s]."""
        lat = self.latencies
        mean = (lat.agent_dispatch_base
                + lat.agent_dispatch_per_node * self.pilot_nodes)
        return mean * (1.0 + lat.agent_coord_per_instance
                       * self._n_flux_instances)

    def dispatch_cost(self) -> float:
        """One draw of the serialized task-management cost [s]."""
        return self.rng.lognormal_latency(
            "agent.dispatch", self._dispatch_mean(),
            cv=self.latencies.agent_cv)

    def _dispatch_loop(self):
        """Serialized dispatch: RP's task-management subsystem."""
        while self._alive:
            # Synchronous pop while tasks are queued; only block on an
            # empty intake.  Saves one event round-trip per task when
            # the agent is saturated (the regime the paper measures).
            task = self.incoming.try_get()
            if task is None:
                task = yield self.incoming.get()
            yield self.env.timeout(self.dispatch_cost())
            # Keep the bulk path serialized behind streamed dispatches;
            # a plain attribute write, so traces without bulk
            # submission are untouched.
            self._dispatch_free_at = self.env._now
            self.n_dispatched += 1
            if self._m_dispatched is not None:
                self._m_dispatched.inc()
                # len(Store) is O(1); .items would snapshot the whole
                # deque per dispatch — O(n^2) over a saturated intake.
                self._m_intake.set(len(self.incoming))
            if task.description.input_staging > 0:
                self.env.process(self._handle(task))
            else:
                # No staging: the pipeline up to backend submission is
                # synchronous — skip the per-task process allocation
                # and bootstrap round-trip through the event queue.
                self._submit_routed(task)

    # -- bulk submission -----------------------------------------------------

    def submit_bulk(self, tasks) -> None:
        """Admit a whole wave of tasks through the serialized dispatch
        stage with O(batch) kernel events.

        The legacy path threads every task through the intake store
        and the dispatch-loop generator: a store round-trip, a Timeout
        and a generator resume per task.  Bulk admission draws all
        dispatch costs in one batched RNG call (bitwise-identical to
        sequential draws, see
        :meth:`~repro.sim.random.RngStreams.lognormal_latency_batch`)
        and walks the wave with a single chained deferred callback —
        one live queue entry regardless of wave size, admitting each
        task at the exact simulated time the legacy loop would have.
        Same-seed traces are byte-identical between the two paths.
        """
        tasks = list(tasks)
        if not tasks:
            return
        if not self._alive:
            # Pre-bootstrap hand-over (the common case: the harness
            # submits the workload, then runs): admitted once the
            # backends are up, like tasks parked in the intake store.
            self._bulk_backlog.append(tasks)
            return
        self._admit_bulk(tasks)

    def _admit_bulk(self, tasks: list) -> None:
        costs = self.rng.lognormal_latency_batch(
            "agent.dispatch", self._dispatch_mean(),
            cv=self.latencies.agent_cv, n=len(tasks))
        now = self.env._now
        start = now if self._dispatch_free_at < now else self._dispatch_free_at
        self._bulk_pending.update(tasks)
        # The dispatch stage is a serial resource: a later wave (or a
        # streamed dispatch) queues behind this one.  Accumulate the
        # end time with the same one-addition-per-task float order the
        # legacy loop produces.
        end = start
        for cost in costs:
            end += cost
        self._dispatch_free_at = end
        # (start - now) is exactly 0.0 when the stage is free, making
        # the first admission land at now + costs[0] to the last ulp —
        # the same float the legacy loop's first Timeout targets.
        self.env.schedule_callback(start - now + costs[0],
                                   self._bulk_step, [tasks, costs, 0])

    def _bulk_step(self, wave: list) -> None:
        """Admit one bulk task, then chain the next admission.

        Mirrors one iteration of :meth:`_dispatch_loop` past its
        ``timeout`` — same counters, same routing, same event order —
        with the next admission scheduled exactly ``costs[i+1]`` after
        this one, as the loop's next Timeout would be.
        """
        if not self._alive:
            return
        tasks, costs, i = wave
        task = tasks[i]
        self._bulk_pending.discard(task)
        self.n_dispatched += 1
        if self._m_dispatched is not None:
            self._m_dispatched.inc()
            self._m_intake.set(len(self.incoming))
        if task.description.input_staging > 0:
            self.env.process(self._handle(task))
        else:
            self._submit_routed(task)
        i += 1
        if i < len(tasks):
            wave[2] = i
            self.env.schedule_callback(costs[i], self._bulk_step, wave)

    def _handle(self, task: "Task"):
        """Per-task pipeline up to backend submission (staging path)."""
        if task.is_final:  # canceled while queued in the intake store
            return
        self._inflight.add(task)
        td = task.description
        task.advance(TaskState.AGENT_STAGING_INPUT)
        yield self.env.process(self.stager_in.stage(
            td.input_staging, item_mb=td.staging_item_mb))
        if task.is_final:  # canceled during staging
            self._inflight.discard(task)
            return
        task.advance(TaskState.AGENT_SCHEDULING)
        self._route_and_submit(task)

    def _submit_routed(self, task: "Task") -> None:
        """Staging-free tail of :meth:`_handle`, run inline."""
        if task.is_final:  # canceled while queued in the intake store
            return
        self._inflight.add(task)
        task.advance(TaskState.AGENT_SCHEDULING)
        self._route_and_submit(task)

    def start_service(self, description) -> "object":
        """Launch a persistent service on the pilot (Fig. 1 service
        path).  Returns a :class:`~repro.core.service.Service` whose
        endpoint becomes callable once the service bootstraps.

        The service occupies its resources until :meth:`Service.stop`
        or agent shutdown.
        """
        from ..description import MODE_EXECUTABLE, TaskDescription
        from ..service import Service
        from ..states import TaskState
        from ..task import Task

        if not self._alive:
            raise ConfigurationError(
                f"{self.uid}: cannot start services before bootstrap")
        td = TaskDescription(
            executable=description.name, mode=MODE_EXECUTABLE,
            resources=description.resources, duration=float("inf"),
            backend=description.backend,
            tags={"service": description.name})
        task = Task(self.env, self.session.ids.next("service.task"), td,
                    profiler=self.profiler)
        task.advance(TaskState.TMGR_SCHEDULING)
        self.incoming.put(task)
        service = Service(self.env, self.rng,
                          self.session.ids.next("service"), description,
                          task)
        service._agent = self
        self.services.append(service)
        return service

    def cancel_task(self, task: "Task") -> None:
        """Cancel one task wherever it currently is: intake queue,
        staging, backend queue, or running payload."""
        if task.is_final:
            return
        backend = task.backend
        self.n_canceled += 1
        task.cancel()
        self._inflight.discard(task)
        if backend is not None:
            executor = self.executors.get(backend)
            if executor is not None:
                executor.cancel(task)

    def _route_and_submit(self, task: "Task") -> None:
        assert self._router is not None
        if self._router_dirty:
            # Rebuild only when backend membership actually changed
            # (crash, blacklist, restart) — not once per retry.
            self._router = self._make_router()
            self._router_dirty = False
        try:
            backend = self._router.route(
                task.description,
                cores_per_node=self.session.cluster.cores_per_node,
                gpus_per_node=self.session.cluster.gpus_per_node)
        except SchedulingError as exc:
            if self.faults is not None:
                # No routable backend right now — possibly a total but
                # transient outage (a restart or repair may be pending).
                # Burn an infra attempt and let the retry policy decide
                # whether to try again.  The previous attempt's backend
                # is cleared first: no executor ran this attempt, so
                # none should be retired or struck for it.
                task.backend = None
                self.attempt_finished(task, ok=False, reason=str(exc),
                                      infra=True)
                return
            self.n_failed += 1
            self._inflight.discard(task)
            task.fail(str(exc))
            return
        executor = self.executors[backend]
        if not executor.ready:
            if self.faults is not None:
                # The backend died between routing decisions: mark the
                # table stale and account a failed attempt — the retry
                # policy decides whether the task gets re-routed to a
                # survivor.
                self._router_dirty = True
                self.attempt_finished(task, ok=False,
                                      reason=f"backend {backend} unavailable",
                                      infra=True)
                return
            self.n_failed += 1
            self._inflight.discard(task)
            task.fail(f"backend {backend} unavailable")
            return
        task.backend = backend
        executor.submit(task)

    # -- attempt outcomes ---------------------------------------------------------

    def attempt_finished(self, task: "Task", ok: bool, reason: str = "",
                         infra: bool = False) -> None:
        """Called exactly once per execution attempt by executors.

        ``infra`` marks infrastructure failures (node/backend death,
        injected launch faults) as opposed to payload failures.  Infra
        failures qualify for retries from the session
        :class:`~repro.faults.RetryPolicy` budget on top of the task's
        own ``retries``, and they accrue blacklist strikes against the
        failing backend.
        """
        backend = task.backend
        if backend is not None:
            executor = self.executors.get(backend)
            if executor is not None:
                executor.n_retired += 1
        if task.is_final:
            return
        # Every finished attempt counts, whatever its outcome (failed
        # final attempts used to go uncounted).
        task.attempts += 1
        faults = self.faults
        if ok:
            if faults is not None:
                faults.note_recovered(task)
                if backend is not None:
                    self._backend_strikes.pop(backend, None)
            if task.description.output_staging > 0:
                self.env.process(self._finalize(task))
            else:
                # Synchronous completion: no staging-out to wait for.
                self._inflight.discard(task)
                self.n_done += 1
                task.advance(TaskState.DONE)
            return
        self.profiler.record_event(
            task.uid, TASK_ATTEMPT_FAILED,
            {"attempt": task.attempts, "backend": backend or "",
             "reason": reason, "infra": infra})
        if faults is not None:
            faults.note_attempt_failed(task, infra,
                                       task.description.resources.cores)
            if infra and backend is not None:
                self._strike(backend)
        retry = False
        if task.retries_left > 0:
            task.retries_left -= 1
            retry = True
        elif infra and faults is not None \
                and faults.retry.allows(task.attempts, self.env.now):
            retry = True
        if retry and self._alive:
            if task.state == TaskState.AGENT_EXECUTING:
                task.advance(TaskState.AGENT_SCHEDULING, retry=True)
            delay = faults.retry_delay(task.attempts) \
                if faults is not None else 0.0
            if delay > 0:
                self.env.schedule_callback(delay, self._retry_submit, task)
            else:
                self._route_and_submit(task)
            return
        self.n_failed += 1
        self._inflight.discard(task)
        if infra and faults is not None:
            reason = (f"retries exhausted after {task.attempts} attempts: "
                      f"{reason or 'infrastructure failure'}")
        task.fail(reason or "execution failed")

    def _retry_submit(self, task: "Task") -> None:
        """Deferred resubmission after a backoff delay."""
        if not self._alive or task.is_final:
            # Agent shut down, or the task was canceled while backing
            # off — the retry silently dies with it.
            return
        self._route_and_submit(task)

    def _strike(self, backend: str) -> None:
        """One blacklist strike against ``backend``; at the policy
        threshold the backend drops out of routing (never the last
        routable one — degraded service beats none)."""
        assert self.faults is not None
        limit = self.faults.retry.blacklist_after
        if limit <= 0:
            return
        strikes = self._backend_strikes.get(backend, 0) + 1
        self._backend_strikes[backend] = strikes
        if strikes < limit:
            return
        executor = self.executors.get(backend)
        if executor is None or not executor.routable:
            return
        survivors = [ex for name, ex in self.executors.items()
                     if name != backend and ex.ready and ex.routable]
        if not survivors:
            return
        executor.routable = False
        self.notify_backend_change()
        self.faults.note_blacklisted(backend)
        self.profiler.record(f"{self.uid}.{backend}", BACKEND_BLACKLISTED,
                             strikes=strikes)
        self.log.warning("backend blacklisted", backend=backend,
                         strikes=strikes)

    # -- fault-model hooks ---------------------------------------------------

    def notify_backend_change(self) -> None:
        """Backend membership changed (crash, blacklist, restart): the
        routing table is rebuilt lazily on the next routing decision."""
        self._router_dirty = True

    def backend_restored(self, name: str) -> None:
        """A crashed backend came back up (fault-model restart)."""
        self._backend_strikes.pop(name, None)
        executor = self.executors.get(name)
        if executor is not None:
            executor.routable = True
        self.notify_backend_change()

    def _finalize(self, task: "Task"):
        """Staging-out pipeline for tasks that produce output."""
        td = task.description
        if not task.is_final:
            task.advance(TaskState.AGENT_STAGING_OUTPUT)
            yield self.env.process(self.stager_out.stage(
                td.output_staging, item_mb=td.staging_item_mb))
        self._inflight.discard(task)
        if not task.is_final:
            self.n_done += 1
            task.advance(TaskState.DONE)
