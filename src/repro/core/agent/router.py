"""Task-type-aware backend selection.

The router implements the paper's adaptive mapping (§3.1): tasks are
dispatched to the backend whose execution model matches their
properties —

* explicit ``backend`` hints win;
* **function** tasks go to Dragon (in-memory dispatch) when present,
  else Flux;
* multi-node / node-exclusive **executable** tasks need hierarchical
  co-scheduling: Flux first, srun as fallback;
* other executables prefer Flux, then srun, then Dragon (Dragon *can*
  launch executables, as experiment *dragon* shows, but it is the
  last resort for them).
"""

from __future__ import annotations

from typing import Dict, Sequence

from ...exceptions import SchedulingError
from ..description import (
    BACKEND_DRAGON,
    BACKEND_FLUX,
    BACKEND_PRRTE,
    BACKEND_SRUN,
    MODE_FUNCTION,
    TaskDescription,
)

#: Preference order per task class.  PRRTE sits between Flux (it has
#: no internal scheduler, so co-scheduling quality is lower) and srun
#: (it launches much faster, with no concurrency ceiling).
_FUNCTION_ORDER = (BACKEND_DRAGON, BACKEND_FLUX)
_EXEC_MULTI_NODE_ORDER = (BACKEND_FLUX, BACKEND_PRRTE, BACKEND_SRUN)
_EXEC_ORDER = (BACKEND_FLUX, BACKEND_PRRTE, BACKEND_SRUN, BACKEND_DRAGON)


class Router:
    """Chooses a backend name for each task, given what is available.

    Static policy: within each task class, the first available backend
    in preference order wins.
    """

    def __init__(self, available: Sequence[str]) -> None:
        self.available = tuple(available)
        # The availability set only changes when a router is rebuilt,
        # so the per-class candidate lists are precomputed instead of
        # being filtered on every routing decision.
        self._filtered = {
            order: tuple(b for b in order if b in self.available)
            for order in (_FUNCTION_ORDER, _EXEC_MULTI_NODE_ORDER,
                          _EXEC_ORDER)
        }

    def _order_for(self, td: TaskDescription, cores_per_node: int,
                   gpus_per_node: int) -> Sequence[str]:
        if td.mode == MODE_FUNCTION:
            return _FUNCTION_ORDER
        if (td.resources.exclusive_nodes
                or not td.resources.fits_node(cores_per_node,
                                              gpus_per_node)):
            return _EXEC_MULTI_NODE_ORDER
        return _EXEC_ORDER

    def _candidates(self, td: TaskDescription, cores_per_node: int,
                    gpus_per_node: int) -> Sequence[str]:
        if td.backend is not None:
            if td.backend in self.available:
                return (td.backend,)
            raise SchedulingError(
                f"requested backend {td.backend!r} not deployed "
                f"(available: {self.available})")
        order = self._order_for(td, cores_per_node, gpus_per_node)
        candidates = self._filtered[order]
        if not candidates:
            raise SchedulingError(
                f"no deployed backend can run task mode={td.mode} "
                f"cores={td.resources.cores} (available: {self.available})")
        return candidates

    def route(self, td: TaskDescription, cores_per_node: int,
              gpus_per_node: int) -> str:
        """Return the backend name for ``td``.

        Raises :class:`SchedulingError` when no available backend can
        execute the task.
        """
        return self._candidates(td, cores_per_node, gpus_per_node)[0]


class DynamicRouter(Router):
    """Load-aware backend selection (the paper's future-work item,
    §6: "dynamic backend selection based on workload characteristics").

    Within a task class's capable backends, the one with the lowest
    *expected wait* wins: outstanding backlog divided by the backend's
    measured drain rate (tasks retired per second since it became
    ready).  Spilling away from the preferred backend only happens on
    *measured* rates — a backend with no history instead receives
    occasional probe tasks (one in ``probe_interval``) so its rate
    gets learned without blindly flooding a potentially slow launcher.
    A hysteresis band keeps the static preference (the best
    execution-model match) unless the alternative is clearly faster.
    """

    #: Minimum retirements before the measured rate is trusted.
    min_history = 20
    #: One in this many routing decisions probes a no-history backend.
    probe_interval = 50
    #: Preferred backend survives unless the best alternative saves
    #: more than this many seconds AND this relative factor.
    hysteresis_seconds = 1.0
    hysteresis_factor = 1.5

    def __init__(self, executors: Dict[str, object]) -> None:
        super().__init__(list(executors))
        self._executors = dict(executors)
        self._calls = 0

    def route(self, td: TaskDescription, cores_per_node: int,
              gpus_per_node: int) -> str:
        candidates = self._candidates(td, cores_per_node, gpus_per_node)
        if len(candidates) == 1:
            return candidates[0]
        self._calls += 1
        preferred = candidates[0]
        unknown = [name for name in candidates[1:]
                   if self._measured_rate(self._executors[name]) is None]
        if unknown and self._calls % self.probe_interval == 0:
            return unknown[(self._calls // self.probe_interval)
                           % len(unknown)]
        known = [name for name in candidates if name not in unknown]
        waits = {name: self._expected_wait(name) for name in known}
        best = min(known, key=lambda n: waits[n])
        if (waits[preferred] - waits[best] <= self.hysteresis_seconds
                or waits[preferred] <= self.hysteresis_factor * waits[best]):
            return preferred
        return best

    def _expected_wait(self, name: str) -> float:
        """Seconds of backlog in front of a new task on this backend."""
        ex = self._executors[name]
        outstanding = getattr(ex, "outstanding", 0)
        rate = self._measured_rate(ex)
        if rate is None:
            # Preferred backend bootstrapping: optimistic prior of one
            # task per core per second.
            rate = float(max(1, ex.allocation.total_cores))
        return outstanding / rate

    def _measured_rate(self, ex):
        """Retirements per second since readiness, or None without
        enough history."""
        env = getattr(ex, "env", None)
        ready_at = getattr(ex, "ready_at", None)
        n_retired = getattr(ex, "n_retired", 0)
        if (env is not None and ready_at is not None
                and n_retired >= self.min_history
                and env.now > ready_at):
            measured = n_retired / (env.now - ready_at)
            if measured > 0:
                return measured
        return None
