"""The Dragon executor: lightweight high-throughput launching (§3.2.2).

Tasks are serialized onto the Dragon runtime's ZeroMQ task pipe; a
watcher process consumes completion events from the return pipe and
updates task states.  A startup watchdog aborts the backend when the
runtime does not come up within ``dragon_startup_timeout`` seconds
(the paper's safeguard against stalled bootstraps), triggering
executor failover.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ...dragon import DragonRuntime, DragonTask
from ...dragon.runtime import MODE_EXEC as DRAGON_EXEC
from ...dragon.runtime import MODE_FUNC as DRAGON_FUNC
from ...platform.cluster import Allocation
from ..description import MODE_FUNCTION
from .executor_base import ExecutorBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..task import Task
    from .agent import Agent


class DragonExecutor(ExecutorBase):
    """Drives one or more concurrent Dragon runtime instances."""

    backend = "dragon"

    def __init__(self, agent: "Agent", allocation: Allocation,
                 n_instances: int = 1, fail_startup: bool = False) -> None:
        super().__init__(agent, allocation)
        partitions = allocation.partition(n_instances)
        self.runtimes: List[DragonRuntime] = [
            DragonRuntime(self.env, part, self.latencies, self.rng,
                          instance_id=f"{agent.uid}.dragon.{i:03d}",
                          profiler=self.profiler, fail_startup=fail_startup,
                          metrics=self.metrics, faults=agent.faults)
            for i, part in enumerate(partitions)
        ]
        self._task_map: Dict[str, "Task"] = {}
        self._task_runtime: Dict[str, DragonRuntime] = {}
        self._rr = 0

    @property
    def n_instances(self) -> int:
        return len(self.runtimes)

    @property
    def outstanding(self) -> int:
        return sum(rt.n_submitted - rt.n_completed - rt.n_failed
                   for rt in self.runtimes)

    def start(self):
        """Bootstrap all runtimes concurrently, each under a watchdog."""
        procs = [self.env.process(self._start_one(rt)) for rt in self.runtimes]
        yield self.env.all_of(procs)
        self.runtimes = [rt for rt in self.runtimes if rt.is_ready]
        if not self.runtimes:
            self.failed = True
            if self.profiler is not None:
                self.profiler.record(f"{self.agent.uid}.dragon",
                                     "backend_failed", kind="dragon",
                                     reason="startup timeout")
            return
        self.ready = True
        self.ready_at = self.env.now
        for rt in self.runtimes:
            rt.on_task_start = self._on_start
            self.env.process(self._watch(rt))

    def _start_one(self, runtime: DragonRuntime):
        """Start one runtime, racing it against the startup watchdog."""
        proc = self.env.process(runtime.start())
        timeout = self.env.timeout(self.latencies.dragon_startup_timeout)
        yield self.env.any_of([proc, timeout])
        if not runtime.is_ready:
            runtime.crash("startup timeout")

    def shutdown(self) -> None:
        self.ready = False
        for rt in self.runtimes:
            rt.shutdown()

    def submit(self, task: "Task") -> None:
        td = task.description
        runtime = self._pick_runtime()
        dragon_mode = DRAGON_FUNC if td.mode == MODE_FUNCTION else DRAGON_EXEC
        self.n_submitted += 1
        self._task_map[task.uid] = task
        self._task_runtime[task.uid] = runtime
        runtime.submit(DragonTask(
            task_id=task.uid, mode=dragon_mode,
            duration=td.duration, fail=td.fail))

    def cancel(self, task: "Task") -> bool:
        """Cancel the task inside its Dragon runtime."""
        runtime = self._task_runtime.get(task.uid)
        if runtime is None:
            return False
        return runtime.cancel(task.uid, reason="canceled by RP")

    def _pick_runtime(self) -> DragonRuntime:
        """Least-loaded runtime; round-robin breaks ties."""
        loads = [rt.n_submitted - rt.n_completed - rt.n_failed
                 for rt in self.runtimes]
        low = min(loads)
        candidates = [rt for rt, load in zip(self.runtimes, loads)
                      if load == low]
        self._rr = (self._rr + 1) % len(candidates)
        return candidates[self._rr]

    def _on_start(self, task_id: str) -> None:
        task = self._task_map.get(task_id)
        if task is not None:
            self.n_active += 1
            self._task_started(task)

    def _watch(self, runtime: DragonRuntime):
        """Consume one runtime's completion pipe."""
        while True:
            completion = yield runtime.completion_pipe.recv()
            task = self._task_map.pop(completion.task_id, None)
            self._task_runtime.pop(completion.task_id, None)
            if task is None:
                continue
            if task.exec_start is not None and task.exec_stop is None:
                self.n_active -= 1
            if completion.ok:
                # Backdate to the true payload end: the completion
                # message crossed the zmq pipe after the fact.
                task.mark_exec_stop(when=completion.stop_time)
                self.agent.attempt_finished(task, ok=True)
            else:
                self.agent.attempt_finished(
                    task, ok=False,
                    reason=completion.error or "dragon task failed",
                    infra=completion.infra)

    # -- fault hooks ---------------------------------------------------------

    def on_node_failure(self, node) -> None:
        """Forward the failure to the runtime whose partition owns the
        node; its worker pool shrinks and tasks there are killed."""
        for rt in self.runtimes:
            if node.index in rt.allocation._by_index:
                rt.fail_node(node)
                return

    def on_node_recover(self, node) -> None:
        for rt in self.runtimes:
            if node.index in rt.allocation._by_index:
                rt.recover_node(node)
                return
