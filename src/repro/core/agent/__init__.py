"""The agent subsystem: scheduler, stagers, router, backend executors."""

from .agent import Agent
from .executor_base import ExecutorBase
from .executor_dragon import DragonExecutor
from .executor_flux import FluxExecutor
from .executor_srun import SrunExecutor
from .router import DynamicRouter, Router
from .scheduler import PartitionScheduler
from .staging import Stager

__all__ = [
    "Agent",
    "DragonExecutor",
    "DynamicRouter",
    "ExecutorBase",
    "FluxExecutor",
    "PartitionScheduler",
    "Router",
    "SrunExecutor",
    "Stager",
]
