"""Persistent services inside a pilot (Fig. 1's Service path).

The paper's emerging use cases need "persistent services (e.g.,
learners, replay buffers)" co-located with the workload (§2).  A
service is a long-lived task that holds resources for the pilot's
lifetime and exposes a callable endpoint to other components of the
simulation (tasks, campaign logic, user code):

* the agent launches the service through the normal executor path, so
  it benefits from the same placement, tracing and fault handling as
  tasks;
* after the payload starts, the service performs its own bootstrap
  (``startup_time``) and then signals readiness;
* clients interact through :class:`ServiceEndpoint` — a concurrency-
  limited request/response channel with a per-call service latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..exceptions import ConfigurationError
from ..platform.spec import ResourceSpec
from ..sim import Event, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment, RngStreams
    from .task import Task


@dataclass(frozen=True)
class ServiceDescription:
    """What a persistent service needs.

    Parameters
    ----------
    name:
        Service identifier (informational; shows up in traces).
    resources:
        Cores/GPUs the service occupies for its whole lifetime.
    startup_time:
        Service-internal bootstrap after the payload launches [s]
        (model loading, buffer allocation, ...).
    service_latency:
        Mean per-request handling time of the endpoint [s].
    concurrency:
        How many requests the endpoint handles simultaneously.
    backend:
        Optional backend hint (defaults to routed like an executable).
    """

    name: str = "service"
    resources: ResourceSpec = field(default_factory=ResourceSpec)
    startup_time: float = 5.0
    service_latency: float = 10e-3
    concurrency: int = 1
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.startup_time < 0:
            raise ConfigurationError(
                f"negative startup_time {self.startup_time}")
        if self.service_latency < 0:
            raise ConfigurationError(
                f"negative service_latency {self.service_latency}")
        if self.concurrency < 1:
            raise ConfigurationError(
                f"concurrency must be >= 1, got {self.concurrency}")


class ServiceEndpoint:
    """Request/response interface of a running service."""

    def __init__(self, env: "Environment", rng: "RngStreams",
                 description: ServiceDescription,
                 ready_event: Event) -> None:
        self.env = env
        self.rng = rng
        self.description = description
        self._ready = ready_event
        self._workers = Resource(env, capacity=description.concurrency)
        self._handler: Optional[Callable[[Any], Any]] = None
        self.n_calls = 0
        self.n_completed = 0

    def set_handler(self, handler: Callable[[Any], Any]) -> None:
        """Install an application-side request handler.

        Without one, calls echo their payload back — sufficient for
        timing studies.
        """
        self._handler = handler

    def call(self, payload: Any = None) -> Event:
        """Issue one request; the returned event fires with the reply.

        Calls queue FIFO behind the endpoint's concurrency limit and
        wait for service readiness first.
        """
        self.n_calls += 1
        done = Event(self.env)
        self.env.process(self._serve(payload, done))
        return done

    def _serve(self, payload: Any, done: Event):
        if not self._ready.processed:
            yield self._ready
        with self._workers.request() as worker:
            yield worker
            latency = self.rng.lognormal_latency(
                "service.call", self.description.service_latency, cv=0.3)
            if latency > 0:
                yield self.env.timeout(latency)
        reply = self._handler(payload) if self._handler else payload
        self.n_completed += 1
        if not done.triggered:
            done.succeed(reply)


class Service:
    """A running (or starting) service instance."""

    def __init__(self, env: "Environment", rng: "RngStreams", uid: str,
                 description: ServiceDescription, task: "Task") -> None:
        self.env = env
        self.uid = uid
        self.description = description
        self.task = task
        self._ready = Event(env)
        self.endpoint = ServiceEndpoint(env, rng, description, self._ready)
        env.process(self._watch_startup())

    def _watch_startup(self):
        yield self.task.exec_started_event()
        if self.description.startup_time > 0:
            yield self.env.timeout(self.description.startup_time)
        if not self.task.is_final and not self._ready.triggered:
            self._ready.succeed()

    @property
    def is_ready(self) -> bool:
        return self._ready.triggered and not self.task.is_final

    @property
    def is_final(self) -> bool:
        return self.task.is_final

    def ready_event(self) -> Event:
        """Fires once the service finished its internal bootstrap."""
        return self._ready

    def stop(self) -> None:
        """Tear the service down (cancels the underlying task)."""
        if not self.task.is_final:
            agent = getattr(self, "_agent", None)
            if agent is not None:
                agent.cancel_task(self.task)
            else:  # pragma: no cover - defensive
                self.task.cancel()

    def __repr__(self) -> str:
        state = ("ready" if self.is_ready
                 else "stopped" if self.is_final else "starting")
        return f"<Service {self.uid} {self.description.name} {state}>"
