"""The session: root object tying the stack together.

A :class:`Session` owns the simulation environment, the machine, the
latency calibration, the RNG streams, the shared profiler, the Slurm
controller and srun facility, and the id registry.  Managers
(:class:`~repro.core.pilot_manager.PilotManager`,
:class:`~repro.core.task_manager.TaskManager`) are created from a
session, mirroring RP's API::

    session = Session(cluster=frontier(64), seed=1)
    pmgr = session.pilot_manager()
    tmgr = session.task_manager()
"""

from __future__ import annotations

from typing import Optional

from ..analytics.profiler import Profiler
from ..ids import IdRegistry
from ..platform.cluster import Cluster
from ..platform.latency import FRONTIER_LATENCIES, LatencyModel
from ..platform.profiles import frontier
from ..rjms.slurm import SlurmController
from ..rjms.srun import SrunLauncher
from ..sim import Environment, RngStreams


class Session:
    """One run of the middleware stack on one (simulated) machine."""

    def __init__(self, cluster: Optional[Cluster] = None,
                 latencies: LatencyModel = FRONTIER_LATENCIES,
                 seed: int = 0,
                 env: Optional[Environment] = None,
                 trace: bool = True,
                 observe: bool = False,
                 faults=None,
                 lean: bool = False,
                 spill_dir=None,
                 shards=None,
                 shard_window: float = 0.25,
                 shard_inline: bool = False,
                 resilience=None) -> None:
        self.env = env if env is not None else Environment()
        self.cluster = cluster if cluster is not None else frontier()
        self.latencies = latencies
        self.seed = seed
        self.rng = RngStreams(seed)
        self.ids = IdRegistry()
        self.uid = self.ids.next("session")
        #: Memory-lean mode for full-machine sweeps: components drop
        #: retention that only post-hoc inspection reads (retired Flux
        #: jobs, event-stream history).  Simulated behaviour — and the
        #: trace — is identical either way.
        self.lean = lean
        #: ``spill_dir`` bounds profiler RSS by streaming trace events
        #: to chunked JSONL files instead of holding them all in
        #: memory; see :class:`~repro.analytics.profiler.Profiler`.
        self.profiler = Profiler(self.env, enabled=trace,
                                 spill_dir=spill_dir)
        from ..observability import Observability

        self.obs = Observability(self.env, enabled=observe)
        if observe:
            self.obs.attach_kernel(self.env)
        #: Live telemetry plumbing for this run, when progress
        #: streaming is on (see
        #: :class:`~repro.observability.telemetry.RunTelemetry`).  The
        #: harness attaches it; the kernel probe and the shard
        #: engine's window loop reach it here.  ``None`` = off.
        self.telemetry = None
        from ..platform.filesystem import SharedFilesystem

        self.filesystem = SharedFilesystem(self.env)
        self.slurm = SlurmController(self.env, self.cluster, latencies,
                                     self.rng, profiler=self.profiler)
        self.srun = SrunLauncher(self.env, self.slurm, latencies, self.rng,
                                 metrics=self.obs.registry)
        #: Fault model, built from an optional
        #: :class:`~repro.faults.FaultSpec`.  ``None`` (the default)
        #: keeps every fault-instrumented code path inert: no fault
        #: randomness is drawn and traces are identical to a faultless
        #: build.  A spec with all-zero rates still activates the
        #: retry policy (recovery from payload-only failures).
        self.faults = None
        if faults is not None:
            from ..faults import FaultModel

            self.faults = FaultModel(self.env, self.rng, faults,
                                     profiler=self.profiler,
                                     metrics=self.obs.registry)
        #: Partition-sharded execution (multi-core single-run DES).
        #: ``shards=None`` keeps the sequential code path *exactly* —
        #: no engine object, ``run`` delegates straight to the kernel,
        #: traces are bit-identical to pre-shard builds.  ``"auto"``/0
        #: means one shard per core; the engine clamps to the Flux
        #: instance count and stays dormant for non-Flux launchers.
        self.engine = None
        self.shards = 0
        if shards is not None:
            from ..shard import ShardEngine, resolve_shards

            n_shards = resolve_shards(shards)
            if n_shards >= 2:
                self.engine = ShardEngine(self, n_shards,
                                          window=shard_window,
                                          inline=shard_inline,
                                          resilience=resilience)
                self.shards = n_shards
        self._closed = False

    def pilot_manager(self):
        """Create a :class:`~repro.core.pilot_manager.PilotManager`."""
        from .pilot_manager import PilotManager

        return PilotManager(self)

    def task_manager(self):
        """Create a :class:`~repro.core.task_manager.TaskManager`."""
        from .task_manager import TaskManager

        return TaskManager(self)

    def run(self, until=None):
        """Advance the simulation.

        Delegates to the environment, or — when sharding is active —
        to the :class:`~repro.shard.coordinator.ShardEngine`'s window
        loop, which mirrors ``Environment.run`` semantics exactly.
        """
        if self.engine is not None:
            return self.engine.run(until)
        return self.env.run(until)

    @property
    def now(self) -> float:
        return self.env.now

    def close(self) -> None:
        """Mark the session closed and release machine nodes."""
        if not self._closed:
            self._closed = True
            if self.engine is not None:
                self.engine.close()
            self.cluster.release_all()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
