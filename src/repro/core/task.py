"""The runtime task object: state machine + trace integration."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..analytics import events as tev
from ..exceptions import StateTransitionError
from .description import TaskDescription
from .states import TaskState, check_transition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analytics.profiler import Profiler
    from ..sim import Environment, Event

#: Map of states to canonical trace-event names emitted on entry.
_STATE_EVENTS = {
    TaskState.NEW: tev.TASK_CREATED,
    TaskState.AGENT_SCHEDULING: tev.TASK_SCHEDULED,
    TaskState.AGENT_EXECUTING: tev.TASK_EXEC_START,
    TaskState.DONE: tev.TASK_DONE,
    TaskState.FAILED: tev.TASK_FAILED,
    TaskState.CANCELED: tev.TASK_CANCELED,
}


class Task:
    """One unit of work flowing through the pilot runtime."""

    # Tasks are the hottest per-entity object in a run (tens of
    # thousands, several state transitions each); slots keep their
    # attribute access off the instance-dict path.
    __slots__ = (
        "env", "uid", "description", "profiler", "state", "state_history",
        "backend", "exec_start", "exec_stop", "exception", "attempts",
        "retries_left", "_final_event", "_exec_event", "_on_final",
        "_payload",
    )

    def __init__(self, env: "Environment", uid: str,
                 description: TaskDescription,
                 profiler: Optional["Profiler"] = None) -> None:
        self.env = env
        self.uid = uid
        self.description = description
        self.profiler = profiler
        self.state = TaskState.NEW
        self.state_history: List[Tuple[float, str]] = [(env.now, TaskState.NEW)]
        self.backend: Optional[str] = None
        self.exec_start: Optional[float] = None
        self.exec_stop: Optional[float] = None
        self.exception: Optional[str] = None
        self.attempts = 0
        self.retries_left = description.retries
        self._final_event: Optional["Event"] = None
        self._exec_event: Optional["Event"] = None
        #: Optional ``fn(task)`` invoked when the task reaches a final
        #: state.  Cheaper than :meth:`completion_event` for bulk
        #: waiters (no per-task Event or queue round-trip); see
        #: :meth:`TaskManager.wait_tasks`.
        self._on_final = None
        # Base trace payload, copied into every state-event record
        # (the resource request never changes over a task's life).
        resources = description.resources
        self._payload = {"cores": resources.cores, "gpus": resources.gpus}
        if profiler is not None:
            profiler.record_event(
                uid, tev.TASK_CREATED,
                {"cores": resources.cores, "gpus": resources.gpus,
                 "mode": description.mode})

    # -- state machine ------------------------------------------------------

    def advance(self, new_state: str, **meta) -> None:
        """Move to ``new_state``, enforcing legality and tracing."""
        legal = TaskState.TRANSITIONS.get(self.state)
        if legal is None or new_state not in legal:
            # Delegate to the checker for the canonical error message.
            check_transition("task", self.state, new_state,
                             TaskState.TRANSITIONS)
        self.state = new_state
        self.state_history.append((self.env._now, new_state))
        if new_state == TaskState.AGENT_EXECUTING:
            self.exec_start = self.env._now
            self.exec_stop = None
        elif self.exec_start is not None and self.exec_stop is None and (
                new_state in TaskState.FINAL
                or new_state == TaskState.AGENT_SCHEDULING):
            # A final state — or a retry going back to scheduling —
            # closes any open execution interval (failed/canceled
            # payload): record the stop so traces stay balanced.
            self.mark_exec_stop()
        if self.profiler is not None and new_state != TaskState.NEW:
            name = _STATE_EVENTS.get(new_state)
            if name is not None:
                payload = self._payload.copy()
                if self.backend is not None:
                    payload["backend"] = self.backend
                if meta:
                    payload.update(meta)
                self.profiler.record_event(self.uid, name, payload)
        if new_state == TaskState.AGENT_EXECUTING \
                and self._exec_event is not None \
                and not self._exec_event.triggered:
            self._exec_event.succeed()
        if new_state in TaskState.FINAL:
            if self._final_event is not None \
                    and not self._final_event.triggered:
                self._final_event.succeed(new_state)
            if self._on_final is not None:
                self._on_final(self)

    def mark_exec_stop(self, when: Optional[float] = None) -> None:
        """Record the payload stop time (before staging-out / DONE).

        ``when`` backdates the stop to the true payload end when the
        notification arrived later (asynchronous completion pipes).
        """
        self.exec_stop = self.env._now if when is None else when
        if self.profiler is not None:
            payload = self._payload.copy()
            payload["backend"] = self.backend or ""
            self.profiler.record_event(self.uid, tev.TASK_EXEC_STOP,
                                       payload, at=self.exec_stop)

    # -- completion ------------------------------------------------------------

    @property
    def is_final(self) -> bool:
        return self.state in TaskState.FINAL

    @property
    def succeeded(self) -> bool:
        return self.state == TaskState.DONE

    def completion_event(self) -> "Event":
        """An event that fires when the task reaches a final state."""
        if self._final_event is None:
            self._final_event = self.env.event()
            if self.is_final and not self._final_event.triggered:
                self._final_event.succeed(self.state)
        return self._final_event

    def exec_started_event(self) -> "Event":
        """An event that fires when the payload starts executing."""
        if self._exec_event is None:
            self._exec_event = self.env.event()
            if self.exec_start is not None:
                self._exec_event.succeed()
        return self._exec_event

    def fail(self, reason: str) -> None:
        """Terminal failure (retries exhausted or unrecoverable)."""
        self.exception = reason
        if not self.is_final:
            self.advance(TaskState.FAILED, reason=reason)

    def cancel(self) -> None:
        """Cancel the task unless it already finished."""
        if not self.is_final:
            self.advance(TaskState.CANCELED)

    def __repr__(self) -> str:
        return f"<Task {self.uid} {self.state} backend={self.backend}>"


def build_tasks(env: "Environment", uids: List[str],
                descriptions: List[TaskDescription],
                profiler: Optional["Profiler"] = None) -> List["Task"]:
    """Batched task construction for the bulk submission pipeline.

    Produces exactly the objects and trace records that ``n`` calls of
    ``Task(env, uid, desc, profiler)`` would, but shares the per-state
    base payload and the TASK_CREATED meta dict across every task with
    the same description (synthetic workloads repeat one frozen
    description tens of thousands of times).  Sharing is safe because
    ``advance``/``mark_exec_stop`` always ``copy()`` the payload before
    mutating, and trace meta dicts are read-only once recorded.
    """
    if len(uids) != len(descriptions):
        raise ValueError(f"{len(uids)} uids for "
                         f"{len(descriptions)} descriptions")
    now = env._now
    record = profiler.record_event if profiler is not None else None
    cache: dict = {}
    out: List[Task] = []
    for uid, desc in zip(uids, descriptions):
        entry = cache.get(id(desc))
        if entry is None:
            resources = desc.resources
            entry = (
                {"cores": resources.cores, "gpus": resources.gpus},
                {"cores": resources.cores, "gpus": resources.gpus,
                 "mode": desc.mode},
                desc.retries,
            )
            cache[id(desc)] = entry
        payload, created_meta, retries = entry
        task = Task.__new__(Task)
        task.env = env
        task.uid = uid
        task.description = desc
        task.profiler = profiler
        task.state = TaskState.NEW
        task.state_history = [(now, TaskState.NEW)]
        task.backend = None
        task.exec_start = None
        task.exec_stop = None
        task.exception = None
        task.attempts = 0
        task.retries_left = retries
        task._final_event = None
        task._exec_event = None
        task._on_final = None
        task._payload = payload
        if record is not None:
            record(uid, tev.TASK_CREATED, created_meta)
        out.append(task)
    return out
