"""Pilot and task state machines.

RADICAL-Pilot models pilots and tasks as state machines coordinated by
an event-driven engine (§3).  We implement the states the paper's
metrics observe, with an explicit legal-transition table enforced on
every advance — the property tests verify that no component can drive
an entity through an illegal sequence.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from ..exceptions import StateTransitionError


class TaskState:
    """Task lifecycle states (condensed RP model)."""

    NEW = "NEW"
    TMGR_SCHEDULING = "TMGR_SCHEDULING"        #: accepted by the task manager
    AGENT_STAGING_INPUT = "AGENT_STAGING_INPUT"
    AGENT_SCHEDULING = "AGENT_SCHEDULING"      #: waiting for resources/backend
    AGENT_EXECUTING = "AGENT_EXECUTING"        #: payload running
    AGENT_STAGING_OUTPUT = "AGENT_STAGING_OUTPUT"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELED = "CANCELED"

    FINAL: FrozenSet[str] = frozenset({DONE, FAILED, CANCELED})

    _ORDER: Tuple[str, ...] = (
        NEW, TMGR_SCHEDULING, AGENT_STAGING_INPUT, AGENT_SCHEDULING,
        AGENT_EXECUTING, AGENT_STAGING_OUTPUT, DONE,
    )

    #: state -> set of legal successor states
    TRANSITIONS: Dict[str, FrozenSet[str]] = {}


def _build_task_transitions() -> None:
    order = TaskState._ORDER
    trans: Dict[str, set] = {s: set() for s in order}
    for a, b in zip(order, order[1:]):
        trans[a].add(b)
    # Staging phases are optional: they may be skipped entirely.
    trans[TaskState.TMGR_SCHEDULING].add(TaskState.AGENT_SCHEDULING)
    trans[TaskState.AGENT_EXECUTING].add(TaskState.DONE)
    # Retry loop: a failed execution attempt re-enters scheduling while
    # retries remain (the task only reaches FAILED once retries are
    # exhausted, as in RP's fault-handling framework).
    trans[TaskState.AGENT_EXECUTING].add(TaskState.AGENT_SCHEDULING)
    # Failure / cancellation reachable from any non-final state; a failed
    # task may also be *re-scheduled* on retry.
    for s in order[:-1]:
        trans[s].update({TaskState.FAILED, TaskState.CANCELED})
    trans[TaskState.FAILED] = set()
    trans[TaskState.CANCELED] = set()
    TaskState.TRANSITIONS = {k: frozenset(v) for k, v in trans.items()}


_build_task_transitions()


class PilotState:
    """Pilot lifecycle states."""

    NEW = "NEW"
    PMGR_LAUNCHING = "PMGR_LAUNCHING"  #: batch job queued / agent bootstrapping
    ACTIVE = "ACTIVE"                  #: allocation live, backends ready
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELED = "CANCELED"

    FINAL: FrozenSet[str] = frozenset({DONE, FAILED, CANCELED})

    TRANSITIONS: Dict[str, FrozenSet[str]] = {
        NEW: frozenset({PMGR_LAUNCHING, FAILED, CANCELED}),
        PMGR_LAUNCHING: frozenset({ACTIVE, FAILED, CANCELED}),
        ACTIVE: frozenset({DONE, FAILED, CANCELED}),
        DONE: frozenset(),
        FAILED: frozenset(),
        CANCELED: frozenset(),
    }


def check_transition(kind: str, current: str, new: str,
                     table: Dict[str, FrozenSet[str]]) -> None:
    """Raise :class:`StateTransitionError` unless ``current -> new`` is legal."""
    legal = table.get(current)
    if legal is None:
        raise StateTransitionError(f"unknown {kind} state {current!r}")
    if new not in legal:
        raise StateTransitionError(
            f"illegal {kind} transition {current!r} -> {new!r}"
        )
