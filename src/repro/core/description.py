"""User-facing task and pilot descriptions (the RP API surface).

Descriptions are plain, validated value objects.  Mutable runtime
state lives in :class:`~repro.core.task.Task` and
:class:`~repro.core.pilot.Pilot`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import ConfigurationError
from ..platform.spec import ResourceSpec

#: Task modes, mirroring RP's TASK_EXECUTABLE / TASK_FUNCTION.
MODE_EXECUTABLE = "executable"
MODE_FUNCTION = "function"

#: Backend names accepted by partition specs and backend hints.
BACKEND_SRUN = "srun"
BACKEND_FLUX = "flux"
BACKEND_DRAGON = "dragon"
BACKEND_PRRTE = "prrte"
BACKENDS = (BACKEND_SRUN, BACKEND_FLUX, BACKEND_DRAGON, BACKEND_PRRTE)


@dataclass(frozen=True)
class TaskDescription:
    """What one unit of work needs.

    Parameters
    ----------
    executable:
        Command or function tag (informational).
    mode:
        ``executable`` (standalone binary / MPI app) or ``function``
        (in-memory Python function).
    resources:
        Cores / GPUs / node exclusivity.
    duration:
        Simulated payload runtime [s]; 0 models a null task.
    backend:
        Optional explicit backend (overrides the router).
    input_staging / output_staging:
        Number of staging items to move before / after execution.
    staging_item_mb:
        Size of each staging item [MiB]; transfers share the session's
        filesystem bandwidth.
    priority:
        Relative priority in [-16, 15]; higher runs earlier where the
        backend supports reordering (mapped onto Flux urgency).
    retries:
        How many times a failed execution attempt is retried before
        the task is marked FAILED.
    fail:
        Fault injection: the payload crashes at start when true.
    tags:
        Free-form metadata (workflow id, stage name, ...).
    """

    executable: str = "task"
    mode: str = MODE_EXECUTABLE
    resources: ResourceSpec = field(default_factory=ResourceSpec)
    duration: float = 0.0
    backend: Optional[str] = None
    input_staging: int = 0
    output_staging: int = 0
    staging_item_mb: float = 1.0
    priority: int = 0
    retries: int = 0
    fail: bool = False
    tags: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in (MODE_EXECUTABLE, MODE_FUNCTION):
            raise ConfigurationError(f"unknown task mode {self.mode!r}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ConfigurationError(f"unknown backend {self.backend!r}")
        if self.duration < 0:
            raise ConfigurationError(f"negative duration {self.duration}")
        if self.retries < 0:
            raise ConfigurationError(f"negative retries {self.retries}")
        if self.input_staging < 0 or self.output_staging < 0:
            raise ConfigurationError("negative staging item count")
        if self.staging_item_mb < 0:
            raise ConfigurationError("negative staging item size")
        if not -16 <= self.priority <= 15:
            raise ConfigurationError(
                f"priority must be in [-16, 15], got {self.priority}")


@dataclass(frozen=True)
class PartitionSpec:
    """One backend deployment inside a pilot.

    Parameters
    ----------
    backend:
        ``srun``, ``flux`` or ``dragon``.
    n_instances:
        Number of concurrent runtime instances for this backend
        (each gets a disjoint slice of the backend's node share).
    nodes:
        Nodes dedicated to this backend; ``None`` means an equal share
        of whatever remains after explicitly-sized partitions.
    policy:
        Scheduling policy for Flux instances (``fcfs`` or ``easy``).
    """

    backend: str
    n_instances: int = 1
    nodes: Optional[int] = None
    policy: str = "fcfs"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(f"unknown backend {self.backend!r}")
        if self.n_instances < 1:
            raise ConfigurationError(
                f"n_instances must be >= 1, got {self.n_instances}")
        if self.nodes is not None and self.nodes < self.n_instances:
            raise ConfigurationError(
                f"{self.backend}: {self.nodes} nodes cannot host "
                f"{self.n_instances} instances")


@dataclass(frozen=True)
class PilotDescription:
    """A pilot job request.

    Parameters
    ----------
    nodes:
        Allocation size in nodes.
    walltime:
        Allocation walltime [s], counted from pilot activation.  When
        it expires the agent shuts down and unfinished tasks are
        canceled (the allocation is gone).
    partitions:
        Backend deployments; defaults to a single srun partition over
        the whole allocation (RP's default executor).
    routing:
        ``static`` — fixed task-class -> backend preference (the
        paper's evaluated policy); ``dynamic`` — load-aware backend
        selection among capable backends (the paper's future-work
        extension, §6).
    """

    nodes: int = 1
    walltime: float = float("inf")
    partitions: Tuple[PartitionSpec, ...] = (PartitionSpec(BACKEND_SRUN),)
    routing: str = "static"

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError(f"nodes must be >= 1, got {self.nodes}")
        if self.walltime <= 0:
            raise ConfigurationError(f"walltime must be > 0, got {self.walltime}")
        if self.routing not in ("static", "dynamic"):
            raise ConfigurationError(f"unknown routing {self.routing!r}")
        parts = tuple(self.partitions)
        object.__setattr__(self, "partitions", parts)
        if not parts:
            raise ConfigurationError("a pilot needs at least one partition")
        fixed = sum(p.nodes or 0 for p in parts)
        if fixed > self.nodes:
            raise ConfigurationError(
                f"partitions claim {fixed} nodes; pilot has {self.nodes}")
        total_instances = sum(p.n_instances for p in parts)
        if total_instances > self.nodes:
            raise ConfigurationError(
                f"{total_instances} instances cannot be hosted on "
                f"{self.nodes} nodes")

    def node_shares(self) -> List[int]:
        """Nodes assigned to each partition, resolving ``None`` shares.

        Explicitly sized partitions get their request; the remaining
        nodes are split as evenly as possible (respecting each
        partition's instance count) among the rest.
        """
        parts = list(self.partitions)
        shares: List[Optional[int]] = [p.nodes for p in parts]
        remaining = self.nodes - sum(s for s in shares if s is not None)
        flexible = [i for i, s in enumerate(shares) if s is None]
        if flexible:
            base, extra = divmod(remaining, len(flexible))
            for rank, i in enumerate(flexible):
                share = base + (1 if rank < extra else 0)
                if share < parts[i].n_instances:
                    raise ConfigurationError(
                        f"partition {i} ({parts[i].backend}) got {share} "
                        f"nodes for {parts[i].n_instances} instances")
                shares[i] = share
        result = [s for s in shares if s is not None]
        assert sum(result) <= self.nodes
        return result
