"""The runtime pilot object: an allocation placeholder with an agent."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..analytics import events as tev
from .description import PilotDescription
from .states import PilotState, check_transition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analytics.profiler import Profiler
    from ..platform.cluster import Allocation
    from ..sim import Environment, Event
    from .agent.agent import Agent


class Pilot:
    """A resource placeholder: batch allocation + agent + backends."""

    def __init__(self, env: "Environment", uid: str,
                 description: PilotDescription,
                 profiler: Optional["Profiler"] = None) -> None:
        self.env = env
        self.uid = uid
        self.description = description
        self.profiler = profiler
        self.state = PilotState.NEW
        self.state_history: List[Tuple[float, str]] = [(env.now, PilotState.NEW)]
        self.allocation: Optional["Allocation"] = None
        self.agent: Optional["Agent"] = None
        self._active_event: Optional["Event"] = None
        self._final_event: Optional["Event"] = None

    def advance(self, new_state: str, **meta) -> None:
        check_transition("pilot", self.state, new_state, PilotState.TRANSITIONS)
        self.state = new_state
        self.state_history.append((self.env.now, new_state))
        if self.profiler is not None:
            if new_state == PilotState.ACTIVE:
                self.profiler.record(self.uid, tev.PILOT_ACTIVE,
                                     nodes=self.description.nodes, **meta)
            elif new_state in PilotState.FINAL:
                self.profiler.record(self.uid, tev.PILOT_DONE,
                                     state=new_state, **meta)
        if new_state == PilotState.ACTIVE and self._active_event is not None:
            if not self._active_event.triggered:
                self._active_event.succeed()
        if new_state in PilotState.FINAL and self._final_event is not None:
            if not self._final_event.triggered:
                self._final_event.succeed(new_state)

    @property
    def is_active(self) -> bool:
        return self.state == PilotState.ACTIVE

    @property
    def is_final(self) -> bool:
        return self.state in PilotState.FINAL

    def active_event(self) -> "Event":
        """Fires when the pilot becomes ACTIVE."""
        if self._active_event is None:
            self._active_event = self.env.event()
            if self.is_active:
                self._active_event.succeed()
        return self._active_event

    def completion_event(self) -> "Event":
        """Fires when the pilot reaches a final state."""
        if self._final_event is None:
            self._final_event = self.env.event()
            if self.is_final:
                self._final_event.succeed(self.state)
        return self._final_event

    def start_service(self, description):
        """Launch a persistent service on this pilot (must be ACTIVE).

        Delegates to the agent; see
        :meth:`repro.core.agent.agent.Agent.start_service`.
        """
        from ..exceptions import ConfigurationError

        if not self.is_active or self.agent is None:
            raise ConfigurationError(
                f"{self.uid}: services need an ACTIVE pilot")
        return self.agent.start_service(description)

    def __repr__(self) -> str:
        return f"<Pilot {self.uid} {self.state} nodes={self.description.nodes}>"
