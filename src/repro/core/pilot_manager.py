"""The pilot manager: submits pilot jobs and brings up agents."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Union

from .agent.agent import Agent
from .description import PilotDescription
from .pilot import Pilot
from .states import PilotState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import Session


class PilotManager:
    """Submits pilots: batch allocation -> agent bootstrap -> ACTIVE."""

    def __init__(self, session: "Session") -> None:
        self.session = session
        self.env = session.env
        self.uid = session.ids.next("pmgr")
        self.pilots: List[Pilot] = []

    def submit_pilots(
        self, descriptions: Union[PilotDescription, Sequence[PilotDescription]]
    ) -> Union[Pilot, List[Pilot]]:
        """Submit one or more pilot descriptions.

        Returns a single :class:`Pilot` for a single description, a
        list otherwise.  Pilots launch asynchronously; wait on
        :meth:`Pilot.active_event`.
        """
        single = isinstance(descriptions, PilotDescription)
        descs = [descriptions] if single else list(descriptions)
        pilots = []
        for desc in descs:
            pilot = Pilot(self.env, self.session.ids.next("pilot"), desc,
                          profiler=self.session.profiler)
            pilot.agent = Agent(self.session, pilot)
            self.pilots.append(pilot)
            pilots.append(pilot)
            self.env.process(self._launch(pilot))
        return pilots[0] if single else pilots

    def _launch(self, pilot: Pilot):
        pilot.advance(PilotState.PMGR_LAUNCHING)
        try:
            allocation = yield self.env.process(
                self.session.slurm.submit_batch_job(
                    pilot.description.nodes, pilot.description.walltime))
            pilot.allocation = allocation
            self._release_on_completion(pilot)
            assert pilot.agent is not None
            yield self.env.process(pilot.agent.bootstrap())
        except Exception as exc:  # noqa: BLE001 - any bootstrap failure
            pilot.advance(PilotState.FAILED, reason=str(exc))
            return
        pilot.advance(PilotState.ACTIVE)
        if pilot.description.walltime != float("inf"):
            # Walltime counts from activation; on expiry the allocation
            # disappears: the agent shuts down and unfinished tasks are
            # canceled.
            self.env.schedule(pilot.description.walltime,
                              self._expire, pilot)

    def _expire(self, pilot: Pilot) -> None:
        if pilot.is_final:
            return
        if pilot.agent is not None:
            pilot.agent.shutdown()
        pilot.advance(PilotState.DONE, reason="walltime expired")

    def _release_on_completion(self, pilot: Pilot) -> None:
        """Recycle the pilot's nodes back into the batch system once it
        reaches a final state (late binding: other queued pilots can
        then start)."""

        def _release(_event) -> None:
            if pilot.allocation is not None:
                self.session.slurm.release_job(pilot.allocation)

        ev = pilot.completion_event()
        if ev.processed:  # pragma: no cover - defensive
            _release(ev)
        else:
            assert ev.callbacks is not None
            ev.callbacks.append(_release)

    def cancel_pilots(self) -> None:
        """Shut down all pilots managed by this manager."""
        for pilot in self.pilots:
            if pilot.agent is not None:
                pilot.agent.shutdown()
            if not pilot.is_final:
                pilot.advance(PilotState.CANCELED)
