"""Crash-safe execution: durable checkpoints and supervised workers.

The machinery in this package extends the robustness story from the
*modeled* machine (``repro.faults``: simulated node crashes inside the
DES clock) to the *host* that runs the simulator: a SIGKILL'd process,
an OOM'd pool worker, a Ctrl-C mid-sweep.  It has three pillars:

``atomic``
    Torn-write-proof artifact persistence (tmp + fsync + rename) used
    by profiles, bundles, benchmark numbers, and the checkpoints
    themselves.
``checkpoint``
    Durable run checkpoints (versioned header, config/seed/code
    digests, kernel/RNG/profile watermarks) and deterministic
    resume-by-replay, plus a sweep ledger that lets ``run_many`` /
    ``run_repetitions`` skip already-finished points after an
    interruption.
``supervisor`` (+ hooks in :mod:`repro.shard`)
    Wall-clock heartbeats, a watchdog for crashed/hung shard workers,
    and journal-based replay recovery that keeps recovered-run traces
    byte-identical to uninterrupted ones.

Everything here is wall-clock-side instrumentation: with checkpointing
off and no host failures, no code path in this package touches the
simulation, so same-seed traces stay byte-identical to a build without
it (see ``docs/RESILIENCE.md``).
"""

from .atomic import atomic_write_bytes, atomic_write_json, atomic_write_text
from .checkpoint import (
    CheckpointError,
    RunCheckpointer,
    SweepLedger,
    load_checkpoint,
)
from .crash import crash_point, crash_value
from .spec import ResilienceSpec, parse_resilience
from .supervisor import HostRecoveryReport, RecoveryIncident, SupervisorPolicy

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "CheckpointError",
    "RunCheckpointer",
    "SweepLedger",
    "load_checkpoint",
    "crash_point",
    "crash_value",
    "ResilienceSpec",
    "parse_resilience",
    "HostRecoveryReport",
    "RecoveryIncident",
    "SupervisorPolicy",
]
