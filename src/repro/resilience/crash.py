"""Crash-injection test hook (``REPRO_CRASH_AT``).

Tests and CI jobs need to kill the simulator at a precise,
reproducible point — mid-window in a shard worker, mid-sweep in a
pool worker, at a given sim time in a plain run — and then assert
that recovery reproduces the uninterrupted trace byte-for-byte.

``REPRO_CRASH_AT`` holds a ``kind:value`` spec:

``sim:<t>``
    die at the first checkpoint tick whose sim time is ``>= t``
    (plain/sharded coordinator runs with checkpointing armed);
``events:<n>``
    die at the first checkpoint tick with ``>= n`` trace events;
``shard:<t>``
    a *process* shard worker dies on receiving a window whose
    boundary is ``>= t`` (set ``REPRO_CRASH_SHARD`` to pick which
    shard, default 0);
``pool:<seed>``
    a parallel-rep / ensemble pool worker dies when it picks up the
    unit with that seed.

``REPRO_CRASH_ONCE=<marker-path>`` makes the crash one-shot: the
marker file is created just before dying, and any process that sees
an existing marker skips the crash.  This is what lets a recovered /
resumed run sail past the original crash point.

Death is ``os._exit(137)`` — no cleanup handlers, no atexit, no
flushes — the closest in-process stand-in for SIGKILL, which is
exactly the failure mode the resilience layer must survive.
"""

from __future__ import annotations

import os
from typing import Optional

ENV_CRASH_AT = "REPRO_CRASH_AT"
ENV_CRASH_ONCE = "REPRO_CRASH_ONCE"
ENV_CRASH_SHARD = "REPRO_CRASH_SHARD"

#: Exit status of an injected crash (mirrors a SIGKILL'd process).
CRASH_STATUS = 137


def crash_value(kind: str) -> Optional[float]:
    """The threshold configured for ``kind``, or ``None`` if the hook
    is not armed for it."""
    spec = os.environ.get(ENV_CRASH_AT)
    if not spec:
        return None
    want, sep, raw = spec.partition(":")
    if not sep or want != kind:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def crash_shard_index() -> int:
    """Which shard the ``shard:`` spec targets (default 0)."""
    try:
        return int(os.environ.get(ENV_CRASH_SHARD, "0"))
    except ValueError:
        return 0


def _fire() -> None:
    marker = os.environ.get(ENV_CRASH_ONCE)
    if marker:
        if os.path.exists(marker):
            return  # already crashed once; let the retry live
        try:
            with open(marker, "x", encoding="utf-8") as fh:
                fh.write("crashed\n")
        except FileExistsError:
            return
    os._exit(CRASH_STATUS)


def crash_point(kind: str, value: float) -> None:
    """Die (hard) if the hook is armed for ``kind`` and ``value`` has
    reached the configured threshold.  No-op otherwise."""
    threshold = crash_value(kind)
    if threshold is not None and value >= threshold:
        _fire()
