"""Shard-worker supervision: watchdog policy and recovery reporting.

The mechanics of heartbeats, journaling and respawn live next to the
process plumbing in :mod:`repro.shard.coordinator`; this module holds
the *policy* (deadlines, budgets) and the *record* of what happened
(:class:`HostRecoveryReport`), which flows into experiment results,
manifests and telemetry.

Host recovery is deliberately invisible to the simulation: a replayed
worker reconstructs its pre-crash state from the journaled inbound
messages, so the trace a recovered run produces is byte-identical to
an uninterrupted one.  The report is therefore pure wall-clock
metadata — evidence that recovery happened and what it cost, never an
input to the model.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional


@dataclasses.dataclass(frozen=True)
class SupervisorPolicy:
    """Watchdog knobs for process shard workers (see
    :class:`repro.resilience.spec.ResilienceSpec` for semantics)."""

    supervise: bool = False
    heartbeat_interval: float = 1.0
    hang_deadline: float = 120.0
    max_respawns: int = 3
    respawn_backoff: float = 0.5


@dataclasses.dataclass(frozen=True)
class RecoveryIncident:
    """One crashed-or-hung worker that was (or failed to be) recovered.

    ``kind`` is ``"crash"`` (pid died) or ``"hang"`` (heartbeats
    stalled past the deadline); ``windows_replayed`` counts the
    completed windows re-executed from the journal to rebuild state;
    ``recovery_seconds`` is wall-clock from detection to the replayed
    worker being current again.
    """

    shard: int
    kind: str
    boundary: Optional[float]
    windows_replayed: int
    recovery_seconds: float
    respawn_count: int

    def to_doc(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class HostRecoveryReport:
    """Accumulates recovery incidents for one run."""

    def __init__(self) -> None:
        self.incidents: List[RecoveryIncident] = []

    def record(self, incident: RecoveryIncident) -> None:
        self.incidents.append(incident)

    def __len__(self) -> int:
        return len(self.incidents)

    def __bool__(self) -> bool:
        return bool(self.incidents)

    @property
    def n_crashes(self) -> int:
        return sum(1 for i in self.incidents if i.kind == "crash")

    @property
    def n_hangs(self) -> int:
        return sum(1 for i in self.incidents if i.kind == "hang")

    @property
    def total_recovery_seconds(self) -> float:
        return sum(i.recovery_seconds for i in self.incidents)

    @property
    def windows_replayed(self) -> int:
        return sum(i.windows_replayed for i in self.incidents)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "n_incidents": len(self.incidents),
            "n_crashes": self.n_crashes,
            "n_hangs": self.n_hangs,
            "windows_replayed": self.windows_replayed,
            "total_recovery_seconds": self.total_recovery_seconds,
            "incidents": [i.to_doc() for i in self.incidents],
        }

    def to_text(self) -> str:
        lines = [
            "host recovery: "
            f"{len(self.incidents)} incident(s) "
            f"({self.n_crashes} crash, {self.n_hangs} hang), "
            f"{self.windows_replayed} window(s) replayed, "
            f"{self.total_recovery_seconds:.2f}s recovering"
        ]
        for inc in self.incidents:
            where = ("window %.1f" % inc.boundary
                     if inc.boundary is not None else "between windows")
            lines.append(
                f"  shard {inc.shard}: {inc.kind} at {where}, "
                f"replayed {inc.windows_replayed}, "
                f"{inc.recovery_seconds:.2f}s "
                f"(respawn #{inc.respawn_count})")
        return "\n".join(lines)
