"""Resilience policy: one frozen spec threaded from CLI to engine.

Mirrors :class:`repro.faults.spec.FaultSpec` in spirit — a single
hashable value object that travels from the command line through
``run_experiment`` into :class:`repro.core.session.Session` and the
shard engine — but describes *host*-side robustness (checkpoints,
heartbeats, watchdog deadlines) rather than modeled machine faults.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional


@dataclasses.dataclass(frozen=True)
class ResilienceSpec:
    """Host-fault tolerance policy for one run.

    Attributes
    ----------
    checkpoint_dir:
        Directory for durable run checkpoints; ``None`` disables
        checkpointing entirely (the default — checkpointing off means
        zero instrumentation in the run).
    checkpoint_sim_interval:
        Sim-seconds between checkpoint ticks.  Ticks are scheduled in
        *sim* time so a resumed replay revisits the exact same
        checkpoint points, which is what makes drift verification
        possible.
    checkpoint_wall_interval:
        Wall-seconds that must elapse between checkpoint *writes*;
        ``0`` writes at every tick.  Rate-limits the fsync cost when
        sim time runs much faster than wall time — a crash loses at
        most this much wall-clock progress, so the default of one
        wall-second keeps overhead negligible without weakening the
        durability story.
    supervise:
        Respawn-and-replay crashed or hung shard workers instead of
        failing the run.  Detection (dead pid / stalled heartbeat) is
        always on; this flag controls *recovery*.
    heartbeat_interval:
        Wall-seconds between worker heartbeats on the window pipe.
    hang_deadline:
        Wall-seconds of heartbeat silence after which a live worker
        is declared hung and recovered.
    max_respawns:
        Per-shard respawn budget; exceeding it fails the run.
    respawn_backoff:
        Wall-seconds to wait before a respawn (doubled per incident
        on the same shard).
    """

    checkpoint_dir: Optional[str] = None
    checkpoint_sim_interval: float = 60.0
    checkpoint_wall_interval: float = 1.0
    supervise: bool = False
    heartbeat_interval: float = 1.0
    hang_deadline: float = 120.0
    max_respawns: int = 3
    respawn_backoff: float = 0.5

    def __post_init__(self) -> None:
        from ..exceptions import ConfigurationError

        if self.checkpoint_sim_interval <= 0:
            raise ConfigurationError("checkpoint_sim_interval must be > 0")
        if self.checkpoint_wall_interval < 0:
            raise ConfigurationError("checkpoint_wall_interval must be >= 0")
        if self.heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be > 0")
        if self.hang_deadline <= 0:
            raise ConfigurationError("hang_deadline must be > 0")
        if self.max_respawns < 0:
            raise ConfigurationError("max_respawns must be >= 0")
        if self.respawn_backoff < 0:
            raise ConfigurationError("respawn_backoff must be >= 0")

    @property
    def checkpointing(self) -> bool:
        return self.checkpoint_dir is not None

    def to_doc(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ResilienceSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in known})


def parse_resilience(checkpoint: Optional[str] = None,
                     checkpoint_every: Optional[float] = None,
                     checkpoint_wall: Optional[float] = None,
                     supervise: bool = False) -> Optional[ResilienceSpec]:
    """Build a spec from CLI flags; ``None`` when nothing was asked
    for (so default runs carry no resilience object at all)."""
    if checkpoint is None and not supervise:
        return None
    kwargs: Dict[str, Any] = {"supervise": bool(supervise)}
    if checkpoint is not None:
        kwargs["checkpoint_dir"] = str(checkpoint)
    if checkpoint_every is not None:
        kwargs["checkpoint_sim_interval"] = float(checkpoint_every)
    if checkpoint_wall is not None:
        kwargs["checkpoint_wall_interval"] = float(checkpoint_wall)
    return ResilienceSpec(**kwargs)
