"""Atomic file writes: a crash never leaves a torn artifact.

Every durable artifact the simulator emits — profiles, bundle files,
``BENCH_*.json`` numbers, checkpoints — goes through one of these
helpers.  The recipe is the classic one:

1. write the full content to a temporary file *in the target
   directory* (same filesystem, so the final rename cannot cross a
   device boundary),
2. flush and ``fsync`` the temporary file so the bytes are on disk,
   not just in the page cache,
3. ``os.replace`` it over the destination — atomic on POSIX and on
   modern Windows.

A reader therefore sees either the complete previous version or the
complete new version, never a prefix; a SIGKILL between any two steps
leaves at worst a stray ``*.tmp`` file next to the target.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, TextIO, Union

PathLike = Union[str, Path]


@contextlib.contextmanager
def atomic_writer(path: PathLike, mode: str = "w",
                  encoding: str = "utf-8") -> Iterator[TextIO]:
    """Context manager yielding a file handle whose contents replace
    ``path`` atomically on clean exit.

    On an exception inside the block the temporary file is removed and
    the destination is left untouched.  ``mode`` must be a write mode
    (``"w"`` or ``"wb"``).
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_writer requires 'w' or 'wb', got {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, mode,
                       encoding=(None if "b" in mode else encoding)) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``."""
    path = Path(path)
    with atomic_writer(path, "wb") as fh:
        fh.write(data)
    return path


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> Path:
    """Atomically replace ``path`` with ``text``."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: PathLike, doc: Any, *,
                      indent: int = 2, sort_keys: bool = True) -> Path:
    """Atomically replace ``path`` with ``doc`` serialized as JSON."""
    text = json.dumps(doc, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text)
