"""Durable run checkpoints and deterministic resume-by-replay.

Why replay, not frame serialization
-----------------------------------
A DES run's live state is a web of Python generator frames (every
simulated process) threaded through the kernel's event heap — none of
it picklable.  What *is* durable is the determinism contract the whole
repo is built on: a run is a pure function of ``(config, seed, code
version)``.  A checkpoint therefore stores the run's **identity** plus
verifiable **watermarks** of its progress:

* a versioned header with the full config document, its sha256
  digest, the seed, and the package/code versions that produced it;
* the kernel snapshot at the checkpoint tick (clock, sequence
  counter, a structural digest of the pending-event heap);
* the RNG families' state digest and the profiler high-water mark
  (event count + a running sha256 over the event prefix's
  ``(time, entity, name)`` stream).

``resume`` re-executes the run deterministically from its config and,
when the replayed clock crosses the checkpoint's watermark, compares
the live kernel/RNG/profile state against the stored snapshot — so
code drift or nondeterminism is *detected* rather than silently
producing a different "continuation".  A verified replay then runs to
completion and yields a profile byte-identical to the uninterrupted
run (pinned by ``tests/resilience``).

Checkpoint ticks are scheduled in **sim time** (every
``checkpoint_sim_interval``), with ``checkpoint_wall_interval``
rate-limiting the actual writes in wall time; ticks land at identical
sim times in the original and the replay, which is what makes the
snapshots comparable.  The tick callback touches no RNG and records
no trace events, so checkpointed and checkpoint-free runs of the same
seed still produce byte-identical profiles.

Sweep ledger
------------
For multi-unit work (``run_repetitions``, ``run_many``) the win is
not mid-run state but *not redoing finished units*: a
:class:`SweepLedger` durably records each completed unit's metrics
document (atomic rewrite per unit), and a restarted sweep skips every
unit already in the ledger.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from ..exceptions import CheckpointError
from .atomic import atomic_write_json
from .crash import crash_point
from .spec import ResilienceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.session import Session
    from ..experiments.configs import ExperimentConfig

PathLike = Union[str, Path]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1
CHECKPOINT_NAME = "checkpoint.json"


# ---------------------------------------------------------------------------
# Config identity
# ---------------------------------------------------------------------------


def config_to_doc(cfg: "ExperimentConfig") -> Dict[str, Any]:
    """The config as a plain document (nested dataclasses included)."""
    return dataclasses.asdict(cfg)


def config_from_doc(doc: Dict[str, Any]) -> "ExperimentConfig":
    """Rebuild an :class:`ExperimentConfig` from its document form."""
    from ..experiments.configs import ExperimentConfig
    from ..faults import FaultSpec, RetryPolicy

    doc = dict(doc)
    faults = doc.get("faults")
    if faults is not None:
        faults = dict(faults)
        retry = faults.pop("retry", None)
        if retry is not None:
            faults["retry"] = RetryPolicy(**retry)
        doc["faults"] = FaultSpec(**faults)
    known = {f.name for f in dataclasses.fields(ExperimentConfig)}
    return ExperimentConfig(**{k: v for k, v in doc.items() if k in known})


def config_digest(cfg: "ExperimentConfig") -> str:
    """Canonical sha256 of the config document."""
    payload = json.dumps(config_to_doc(cfg), sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The run checkpointer
# ---------------------------------------------------------------------------


class RunCheckpointer:
    """Periodic durable snapshots of one run's progress watermarks.

    Built by ``run_experiment`` when the resilience spec names a
    checkpoint directory; :meth:`attach` schedules the first sim-time
    tick before the run starts, and each tick reschedules the next, so
    tick times are an identical arithmetic sequence in the original
    run and any replay.

    ``verify`` carries the ``state`` document of a checkpoint being
    resumed: when the replayed clock reaches its watermark the live
    state must match, otherwise :class:`CheckpointError` is raised —
    replay divergence must never masquerade as a successful resume.
    """

    def __init__(self, directory: PathLike, cfg: "ExperimentConfig",
                 spec: ResilienceSpec,
                 verify: Optional[Dict[str, Any]] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.cfg = cfg
        self.spec = spec
        self.session: Optional["Session"] = None
        self.n_written = 0
        self.verified = verify is None
        self._verify = verify
        self._closed = False
        self._last_write_wall: Optional[float] = None
        # Profile-prefix hashing (in-memory profilers only: spilled
        # chunks are already durable files, and re-reading them at
        # every tick would be O(trace) per checkpoint).
        self._hasher = hashlib.sha256()
        self._cursor: Optional[int] = 0
        self._header: Optional[Dict[str, Any]] = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self, session: "Session") -> None:
        self.session = session
        session.env.schedule_callback(
            self.spec.checkpoint_sim_interval, self._tick)

    def close(self, complete: bool = False) -> None:
        """Stop ticking; optionally record the run as complete."""
        if self._closed:
            return
        self._closed = True
        if self._verify is not None and not self.verified:
            if self._verify.get("complete") and self.session is not None:
                # Resuming a checkpoint of a run that *finished*: the
                # watermark is the end-of-run state (not a tick time),
                # so it is only reachable here, at close.
                self._check_drift(self._state())
            else:
                raise CheckpointError(
                    "resumed run finished before reaching the checkpoint "
                    f"watermark (sim time {self._verify.get('sim_time')}); "
                    "the checkpoint does not belong to this run")
        if complete and self.session is not None:
            self._write(self._state(), complete=True)

    # -- the tick ----------------------------------------------------------

    def _tick(self) -> None:
        if self._closed or self.session is None:
            return
        env = self.session.env
        now = env.now
        # Crash-injection hooks (tests only; inert without the env var).
        crash_point("sim", now)
        crash_point("events", float(len(self.session.profiler)))
        # Reschedule *before* snapshotting so the pending next tick is
        # part of the captured heap in original and replay alike.
        env.schedule_callback(self.spec.checkpoint_sim_interval, self._tick)
        # State capture is lazy: a tick that neither verifies nor
        # writes (wall-interval rate limiting) costs nothing, and the
        # incremental profile hasher catches up at the next capture.
        if self._verify is not None and not self.verified:
            watermark = float(self._verify.get("sim_time", -1.0))
            if now == watermark:
                self._check_drift(self._state())
            elif now > watermark:
                raise CheckpointError(
                    f"replay tick at sim time {now} skipped the "
                    f"checkpoint watermark {watermark}; the checkpoint "
                    "was written with a different tick interval")
        if self._due():
            self._write(self._state())

    def _due(self) -> bool:
        if self.spec.checkpoint_wall_interval <= 0:
            return True
        if self._last_write_wall is None:
            return True
        elapsed = time.monotonic() - self._last_write_wall
        return elapsed >= self.spec.checkpoint_wall_interval

    # -- state capture -----------------------------------------------------

    def _state(self) -> Dict[str, Any]:
        assert self.session is not None
        session = self.session
        profiler = session.profiler
        n_events = len(profiler)
        profile_digest = None
        if getattr(profiler, "spilling", False):
            self._cursor = None
        if self._cursor is not None:
            # Running digest over the event prefix's (time, entity,
            # name) triples — incremental, so the whole run pays one
            # pass total.  Deliberately *not* the JSON wire format:
            # serializing every meta dict would double the cost of the
            # run, and the triple stream (with full-precision times)
            # already pins the event sequence; byte-level profile
            # equality is enforced end-to-end by the resume tests.
            events = profiler._events
            update = self._hasher.update
            for ev in events[self._cursor:]:
                update(f"{ev.time!r}|{ev.entity}|{ev.name}\n".encode())
            self._cursor = len(events)
            profile_digest = self._hasher.hexdigest()
        return {
            "sim_time": session.env.now,
            "kernel": session.env.snapshot(),
            "rng_digest": session.rng.state_digest(),
            "n_events": n_events,
            "profile_digest": profile_digest,
        }

    def _check_drift(self, state: Dict[str, Any]) -> None:
        assert self._verify is not None
        expected = self._verify
        mismatches: List[str] = []
        for key in ("kernel", "rng_digest", "n_events"):
            if state.get(key) != expected.get(key):
                mismatches.append(
                    f"{key}: {state.get(key)!r} != {expected.get(key)!r}")
        if (state.get("profile_digest") and expected.get("profile_digest")
                and state["profile_digest"] != expected["profile_digest"]):
            mismatches.append("profile_digest: trace prefix diverged")
        if mismatches:
            raise CheckpointError(
                "replay diverged from checkpoint at sim time "
                f"{expected.get('sim_time')}: " + "; ".join(mismatches)
                + " (code drift or nondeterminism)")
        self.verified = True

    # -- persistence -------------------------------------------------------

    def _write(self, state: Dict[str, Any], complete: bool = False) -> None:
        if self._header is None:
            # Identity fields are invariant for the run's lifetime;
            # resolving them (git revision included) once instead of
            # per write keeps the tick cheap.
            from ..observability.manifest import package_versions

            self._header = {
                "config": config_to_doc(self.cfg),
                "config_digest": config_digest(self.cfg),
                "code": package_versions(),
                "spec": self.spec.to_doc(),
            }
        doc = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "config": self._header["config"],
            "config_digest": self._header["config_digest"],
            "seed": self.cfg.seed,
            "code": self._header["code"],
            "spec": self._header["spec"],
            "state": dict(state, complete=complete),
            "n_checkpoints": self.n_written + 1,
            "wall_clock": time.time(),
        }
        atomic_write_json(self.directory / CHECKPOINT_NAME, doc)
        self.n_written += 1
        self._last_write_wall = time.monotonic()


# ---------------------------------------------------------------------------
# Loading / resuming
# ---------------------------------------------------------------------------


def load_checkpoint(directory: PathLike) -> Dict[str, Any]:
    """Load and validate a checkpoint header document."""
    path = Path(directory) / CHECKPOINT_NAME
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if doc.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path}: not a repro checkpoint")
    version = doc.get("version")
    if not isinstance(version, int) or version > CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {version!r}")
    cfg = config_from_doc(doc.get("config", {}))
    if config_digest(cfg) != doc.get("config_digest"):
        raise CheckpointError(
            f"{path}: config digest mismatch (corrupt checkpoint)")
    return doc


def code_drift(doc: Dict[str, Any]) -> List[str]:
    """Human-readable package/code version differences between the
    checkpoint and the current process (empty = same code)."""
    from ..observability.manifest import package_versions

    then = doc.get("code", {})
    now = package_versions()
    drift = []
    for key in sorted(set(then) | set(now)):
        if then.get(key) != now.get(key):
            drift.append(f"{key}: {then.get(key)!r} -> {now.get(key)!r}")
    return drift


# ---------------------------------------------------------------------------
# Sweep ledger
# ---------------------------------------------------------------------------

LEDGER_NAME = "sweep.json"


def unit_key(cfg: "ExperimentConfig") -> str:
    """Stable identity of one sweep unit (config + seed)."""
    return f"{cfg.exp_id}-seed{cfg.seed}-{config_digest(cfg)[:16]}"


def result_to_doc(result) -> Dict[str, Any]:
    """Persistable metrics document for one finished unit.

    Carries everything aggregation needs (throughput, utilization,
    makespan, counts); per-task objects and live sessions do not
    survive — exactly the contract parallel repetitions already have.
    """
    return {
        "n_tasks": result.n_tasks,
        "n_done": result.n_done,
        "n_failed": result.n_failed,
        "throughput": dataclasses.asdict(result.throughput),
        "utilization_cores": result.utilization_cores,
        "utilization_gpus": result.utilization_gpus,
        "makespan": result.makespan,
        "startup_overheads": [list(pair) for pair in
                              result.startup_overheads],
        "wall_seconds": result.wall_seconds,
        "n_shards": result.n_shards,
    }


def result_from_doc(cfg: "ExperimentConfig", doc: Dict[str, Any]):
    """Rebuild a (task-free) :class:`ExperimentResult` from its
    ledger document."""
    from ..analytics.metrics import ThroughputStats
    from ..experiments.harness import ExperimentResult

    return ExperimentResult(
        config=cfg,
        n_tasks=int(doc["n_tasks"]),
        n_done=int(doc["n_done"]),
        n_failed=int(doc["n_failed"]),
        throughput=ThroughputStats(**doc["throughput"]),
        utilization_cores=float(doc["utilization_cores"]),
        utilization_gpus=float(doc["utilization_gpus"]),
        makespan=float(doc["makespan"]),
        startup_overheads=[(str(n), float(v)) for n, v in
                           doc.get("startup_overheads", [])],
        wall_seconds=float(doc.get("wall_seconds", 0.0)),
        n_shards=int(doc.get("n_shards", 0)),
    )


class SweepLedger:
    """Durable completed-unit record for multi-run sweeps.

    Each :meth:`record` call atomically rewrites the ledger file, so a
    sweep killed at any instant leaves a readable ledger listing every
    unit that *finished*; :meth:`completed` lets the restarted sweep
    skip them.  The ledger is keyed by config+seed digest, so a
    changed config silently invalidates old entries instead of
    serving stale results.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / LEDGER_NAME
        self._units: Dict[str, Dict[str, Any]] = {}
        if self.path.exists():
            try:
                doc = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                raise CheckpointError(
                    f"unreadable sweep ledger {self.path}: {exc}") from exc
            if doc.get("format") != "repro-sweep-ledger":
                raise CheckpointError(
                    f"{self.path}: not a sweep ledger")
            self._units = dict(doc.get("units", {}))

    def __len__(self) -> int:
        return len(self._units)

    def completed(self, cfg: "ExperimentConfig") -> Optional[Dict[str, Any]]:
        """The stored result document for ``cfg``, if it finished."""
        return self._units.get(unit_key(cfg))

    def record(self, cfg: "ExperimentConfig", result) -> None:
        """Durably mark ``cfg`` finished with ``result``'s metrics."""
        self._units[unit_key(cfg)] = result_to_doc(result)
        self._flush()

    def _flush(self) -> None:
        atomic_write_json(self.path, {
            "format": "repro-sweep-ledger",
            "version": 1,
            "units": self._units,
        })
