"""Deterministic fault injection and recovery.

This package adds a seeded failure model to the simulated stack:

- :class:`FaultSpec` / :class:`RetryPolicy` — frozen configuration,
  parseable from the CLI's ``key=value,...`` syntax.
- :class:`FaultModel` — schedules node crashes, transient launch
  failures, and backend crashes on dedicated ``faults.*`` RNG streams;
  keeps the recovery ledger.
- :class:`FaultReport` — per-run goodput / waste / recovery summary.

With no spec configured the instrumented code paths are inert: a
healthy run draws no fault randomness, schedules no fault events, and
produces byte-identical traces to a build without this package.
"""

from .model import FaultModel, LaunchFault
from .report import FaultReport
from .spec import FaultSpec, RetryPolicy

__all__ = [
    "FaultModel",
    "FaultReport",
    "FaultSpec",
    "LaunchFault",
    "RetryPolicy",
]
