"""Characterization report for a faulted run.

Summarizes what the :class:`~repro.faults.model.FaultModel` injected
and what the recovery machinery delivered: goodput, the resource cost
of failures (wasted core-seconds of killed attempts, node-seconds of
downtime), and recovery latency.  Built once per experiment by the
harness and rendered by the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.task import Task
    from .model import FaultModel


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (no numpy: keeps the report trivially
    serializable and exact on tiny samples)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class FaultReport:
    """Goodput / waste / recovery summary of one faulted run."""

    n_tasks: int
    n_done: int
    n_failed: int
    makespan: float
    #: Successfully finished tasks per second of makespan.
    goodput: float
    #: Execution attempts that were retried.
    n_retries: int
    #: Core-seconds of execution killed mid-attempt.
    wasted_core_seconds: float
    #: Node-seconds of capacity lost to node downtime.
    lost_node_seconds: float
    #: Tasks that hit an infra failure and later finished: latency from
    #: the first failure to the successful completion.
    recovery_mean: float
    recovery_p95: float
    recovery_max: float
    n_recovered: int
    #: Tasks that hit an infra failure and never finished.
    n_unrecovered: int
    #: Injection counters by kind (node_crash, launch_fail, ...).
    injected: Dict[str, int] = field(default_factory=dict)
    #: The deterministic fault schedule: (time, kind, target).
    schedule: Tuple[Tuple[float, str, str], ...] = ()

    @classmethod
    def collect(cls, model: "FaultModel", tasks: Sequence["Task"],
                makespan: float) -> "FaultReport":
        """Build the report from a finished run."""
        from ..core.states import TaskState

        n_done = sum(1 for t in tasks if t.state is TaskState.DONE)
        n_failed = sum(1 for t in tasks if t.state is TaskState.FAILED)
        lat = model.recovery_latencies
        now = model.env.now
        return cls(
            n_tasks=len(tasks),
            n_done=n_done,
            n_failed=n_failed,
            makespan=makespan,
            goodput=n_done / makespan if makespan > 0 else 0.0,
            n_retries=model.n_retries,
            wasted_core_seconds=model.wasted_core_seconds,
            lost_node_seconds=(model.lost_node_seconds
                               + model.open_downtime(now)),
            recovery_mean=sum(lat) / len(lat) if lat else 0.0,
            recovery_p95=_percentile(lat, 0.95),
            recovery_max=max(lat) if lat else 0.0,
            n_recovered=len(lat),
            n_unrecovered=model.n_unrecovered,
            injected=dict(model.injected),
            schedule=tuple(model.schedule_log),
        )

    def to_text(self) -> str:
        """Human-readable block for the experiments CLI."""
        inj = ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items())
                        if v) or "none"
        lines = [
            "fault report",
            f"  injected        : {inj}",
            f"  tasks           : {self.n_done}/{self.n_tasks} done, "
            f"{self.n_failed} failed",
            f"  goodput         : {self.goodput:.2f} tasks/s over "
            f"{self.makespan:.1f} s",
            f"  retries         : {self.n_retries}",
            f"  wasted          : {self.wasted_core_seconds:.1f} core-s "
            f"(killed attempts)",
            f"  lost capacity   : {self.lost_node_seconds:.1f} node-s "
            f"(downtime)",
            f"  recovery latency: mean {self.recovery_mean:.2f} s, "
            f"p95 {self.recovery_p95:.2f} s, max {self.recovery_max:.2f} s "
            f"({self.n_recovered} recovered, {self.n_unrecovered} not)",
        ]
        return "\n".join(lines)
