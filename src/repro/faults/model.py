"""Seeded, deterministic fault injection for one session.

The :class:`FaultModel` owns every stochastic decision about failures.
All draws come from dedicated ``faults.*`` RNG streams
(:class:`~repro.sim.random.RngStreams` gives each name an independent
substream), and every injected event is scheduled through the
simulation kernel — so for a fixed seed the fault schedule is
byte-identical across runs, and enabling the model never perturbs the
draws of healthy components.

The model injects three fault classes:

node crashes
    Each node of the pilot allocation gets a time-to-failure drawn from
    the ``faults.node`` stream (exponential or Weibull around the
    configured MTBF).  On expiry the node goes DOWN
    (:meth:`~repro.platform.node.Node.fail`), the executor owning it is
    told to kill and requeue the affected tasks, and — when an MTTR is
    configured — a repair is scheduled from the ``faults.repair``
    stream.

transient launch failures
    Executors consult :meth:`launch_outcome` once per execution attempt
    (one ``faults.launch`` uniform draw); the attempt then fails
    immediately or hangs for the configured timeout before failing.

backend crashes
    Each runtime instance (Flux broker, Dragon pool) gets a
    time-to-crash from the ``faults.backend`` stream.  Crashed Flux
    instances can restart after a fresh cold-start delay; Dragon pools
    stay down (matching the paper's single-shot Dragon deployment).

The model also keeps the recovery ledger the characterization report
(:mod:`repro.faults.report`) is built from: injection counters, wasted
core-seconds of killed attempts, lost node-seconds of downtime, and
per-task recovery latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, NamedTuple, Optional, Tuple

from ..analytics.events import (
    BACKEND_RESTART,
    FAULT_INJECTED,
    NODE_FAILED,
    NODE_RECOVERED,
)
from .spec import FaultSpec, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analytics.profiler import Profiler
    from ..core.agent.agent import Agent
    from ..core.task import Task
    from ..platform.node import Node
    from ..sim.kernel import Environment
    from ..sim.random import RngStreams


class LaunchFault(NamedTuple):
    """Outcome of one injected launch fault."""

    kind: str     #: ``"launch_fail"`` or ``"launch_timeout"``
    delay: float  #: seconds the attempt hangs before failing
    reason: str   #: failure reason handed to ``attempt_finished``


class FaultModel:
    """Injects faults into one session and accounts for recovery."""

    def __init__(self, env: "Environment", rng: "RngStreams",
                 spec: FaultSpec,
                 profiler: Optional["Profiler"] = None,
                 metrics: Any = None) -> None:
        self.env = env
        self.rng = rng
        self.spec = spec
        self.retry: RetryPolicy = spec.retry
        self.profiler = profiler
        self._stopped = False
        #: Injection counters by kind, for the report and the tests.
        self.injected: Dict[str, int] = {
            "node_crash": 0, "node_repair": 0, "launch_fail": 0,
            "launch_timeout": 0, "backend_crash": 0, "backend_restart": 0,
            "blacklist": 0,
        }
        #: Chronological (time, kind, target) log — the byte-identical
        #: fault schedule that the determinism tests pin.
        self.schedule_log: List[Tuple[float, str, str]] = []
        # -- recovery ledger ------------------------------------------------
        #: Core-seconds of execution killed mid-attempt by faults.
        self.wasted_core_seconds = 0.0
        #: Node-seconds of capacity lost to downtime (accumulated on
        #: repair; nodes still down at report time are closed by the
        #: report against the final clock).
        self.lost_node_seconds = 0.0
        #: node index -> (down-since time, n_cores) for open downtime.
        self._down_since: Dict[int, Tuple[float, int]] = {}
        #: task uid -> time of its first infra failure, until recovered.
        self._pending_recovery: Dict[str, float] = {}
        #: Recovery latencies (first infra failure -> successful start).
        self.recovery_latencies: List[float] = []
        self.n_retries = 0
        self._n_node_failures = 0
        self._m_injections = None
        self._m_retries = None
        self._m_recovery = None
        if metrics is not None:
            self._m_injections = metrics.counter(
                "repro_fault_injections_total",
                "Faults injected by the fault model", labels=("kind",))
            self._m_retries = metrics.counter(
                "repro_task_retries_total",
                "Task execution attempts retried after a failure")
            self._m_recovery = metrics.histogram(
                "repro_fault_recovery_seconds",
                "Latency from first infra failure to successful restart",
                buckets=(1.0, 5.0, 15.0, 60.0, 300.0, 1800.0))

    # -- bookkeeping helpers ---------------------------------------------------

    def _log(self, kind: str, target: str) -> None:
        self.injected[kind] += 1
        self.schedule_log.append((self.env.now, kind, target))
        if self._m_injections is not None:
            self._m_injections.labels(kind=kind).inc()
        if self.profiler is not None:
            self.profiler.record(target, FAULT_INJECTED, kind=kind)

    def stop(self) -> None:
        """Disarm the model (agent shutdown): pending callbacks no-op."""
        self._stopped = True

    # -- arming ----------------------------------------------------------------

    def on_agent_ready(self, agent: "Agent") -> None:
        """Arm the fault clocks once the agent finished bootstrapping.

        Called at the end of :meth:`Agent.bootstrap`; iteration orders
        (allocation nodes by position, executors by name) are fixed so
        the draw sequence — and therefore the schedule — is a pure
        function of the seed.
        """
        if self.spec.mtbf > 0.0 and agent.pilot.allocation is not None:
            for node in agent.pilot.allocation.nodes:
                self._arm_node(agent, node)
        if self.spec.backend_mtbf > 0.0:
            for name in sorted(agent.executors):
                executor = agent.executors[name]
                for target in self._backend_targets(name, executor):
                    self._arm_backend(agent, name, executor, target)

    @staticmethod
    def _backend_targets(name: str, executor: Any) -> list:
        """The crashable runtime instances behind one executor."""
        if name == "flux":
            return list(executor.hierarchy.instances)
        if name == "dragon":
            return list(executor.runtimes)
        return []

    def _ttf(self) -> float:
        if self.spec.dist == "weibull":
            return self.rng.weibull("faults.node", self.spec.mtbf,
                                    self.spec.weibull_shape)
        return self.rng.exponential("faults.node", self.spec.mtbf)

    def _arm_node(self, agent: "Agent", node: "Node") -> None:
        if self.spec.mtbf <= 0.0:
            # Scripted-injection sessions have no MTBF process: a
            # repair must not re-arm (exp(0) would re-crash at once).
            return
        if self.spec.max_node_failures \
                and self._n_node_failures >= self.spec.max_node_failures:
            return
        self.env.schedule_callback(self._ttf(), self._node_crash_cb,
                                   agent, node)

    def _arm_backend(self, agent: "Agent", name: str, executor: Any,
                     target: Any) -> None:
        ttf = self.rng.exponential("faults.backend", self.spec.backend_mtbf)
        self.env.schedule_callback(ttf, self._backend_crash_cb,
                                   agent, name, executor, target)

    # -- node crashes ----------------------------------------------------------

    def _node_crash_cb(self, agent: "Agent", node: "Node") -> None:
        if self._stopped or not agent._alive or not node.is_up:
            return
        if self.spec.max_node_failures \
                and self._n_node_failures >= self.spec.max_node_failures:
            return
        self._n_node_failures += 1
        self._fail_node(agent, node)
        if self.spec.mttr > 0.0:
            mttr = self.rng.exponential("faults.repair", self.spec.mttr)
            self.env.schedule_callback(mttr, self._node_repair_cb, agent, node)

    def _fail_node(self, agent: "Agent", node: "Node") -> None:
        """Take ``node`` DOWN and tell every executor to react."""
        node.fail()
        self._log("node_crash", node.name)
        self._down_since[node.index] = (self.env.now, node.n_cores)
        if self.profiler is not None:
            self.profiler.record(node.name, NODE_FAILED, index=node.index)
        for name in sorted(agent.executors):
            agent.executors[name].on_node_failure(node)

    def _node_repair_cb(self, agent: "Agent", node: "Node") -> None:
        if self._stopped or not agent._alive or node.is_up:
            return
        node.recover()
        self._log("node_repair", node.name)
        entry = self._down_since.pop(node.index, None)
        if entry is not None:
            self.lost_node_seconds += self.env.now - entry[0]
        if self.profiler is not None:
            self.profiler.record(node.name, NODE_RECOVERED, index=node.index)
        for name in sorted(agent.executors):
            agent.executors[name].on_node_recover(node)
        # The repaired node lives under the same MTBF process again.
        self._arm_node(agent, node)

    def inject_node_failure(self, agent: "Agent", node: "Node") -> None:
        """Scripted injection (tests): fail ``node`` right now, without
        consuming any RNG draws and without scheduling a repair."""
        if node.is_up:
            self._n_node_failures += 1
            self._fail_node(agent, node)

    def repair_node(self, agent: "Agent", node: "Node") -> None:
        """Scripted repair counterpart of :meth:`inject_node_failure`."""
        if not node.is_up:
            self._node_repair_cb(agent, node)

    # -- backend crashes -------------------------------------------------------

    def _backend_crash_cb(self, agent: "Agent", name: str, executor: Any,
                          target: Any) -> None:
        if self._stopped or not agent._alive:
            return
        self._crash_backend(agent, name, executor, target)

    def _crash_backend(self, agent: "Agent", name: str, executor: Any,
                       target: Any) -> None:
        if name == "flux":
            if not target.is_ready:
                return
            target.crash("broker died (injected)")
            self._log("backend_crash", target.instance_id)
            if not any(inst.is_ready for inst in executor.hierarchy.instances):
                executor.ready = False
            agent.notify_backend_change()
            if self.retry.backend_restart:
                self.env.process(self._restart_flux(agent, executor, target))
        elif name == "dragon":
            if not target.is_ready:
                return
            target.crash("pool teardown (injected)")
            self._log("backend_crash", target.instance_id)
            if not any(rt.is_ready for rt in executor.runtimes):
                executor.ready = False
            # Dragon pools are not restarted: the paper's deployment
            # brings Dragon up once per pilot, so a dead pool means
            # failover to the surviving backends.
            agent.notify_backend_change()

    def _restart_flux(self, agent: "Agent", executor: Any, instance: Any):
        """Process: bring a crashed Flux instance back with a cold start."""
        try:
            yield from instance.restart()
        except Exception:  # pragma: no cover - restart refused
            return
        if self._stopped or not agent._alive:
            return
        self._log("backend_restart", instance.instance_id)
        if self.profiler is not None:
            self.profiler.record(instance.instance_id, BACKEND_RESTART)
        executor.ready = True
        agent.backend_restored("flux")
        if self.spec.backend_mtbf > 0.0:
            self._arm_backend(agent, "flux", executor, instance)

    def inject_backend_crash(self, agent: "Agent", name: str,
                             target: Any) -> None:
        """Scripted injection (tests): crash one runtime instance now."""
        self._crash_backend(agent, name, agent.executors[name], target)

    # -- launch faults ---------------------------------------------------------

    def launch_outcome(self, backend: str) -> Optional[LaunchFault]:
        """One per-attempt launch-fault decision for ``backend``.

        Draws exactly one uniform from the ``faults.launch`` stream
        when either launch probability is non-zero; returns ``None``
        for a clean launch.
        """
        p_fail = self.spec.p_launch_fail
        p_timeout = self.spec.p_launch_timeout
        if p_fail <= 0.0 and p_timeout <= 0.0:
            return None
        u = self.rng.uniform("faults.launch", 0.0, 1.0)
        if u < p_fail:
            self._log("launch_fail", backend)
            return LaunchFault("launch_fail", 0.0,
                               f"{backend}: launch failed (injected)")
        if u < p_fail + p_timeout:
            self._log("launch_timeout", backend)
            return LaunchFault("launch_timeout", self.spec.launch_timeout,
                               f"{backend}: launch timed out (injected)")
        return None

    # -- recovery accounting ---------------------------------------------------

    def retry_delay(self, attempts: int) -> float:
        """Backoff before resubmitting a task with ``attempts`` failures."""
        self.n_retries += 1
        if self._m_retries is not None:
            self._m_retries.inc()
        return self.retry.delay(attempts, self.rng)

    def note_attempt_failed(self, task: "Task", infra: bool,
                            cores: int) -> None:
        """Account one failed attempt (called from the agent)."""
        if task.exec_start is not None and task.exec_stop is None:
            self.wasted_core_seconds += (self.env.now - task.exec_start) * cores
        if infra and task.uid not in self._pending_recovery:
            self._pending_recovery[task.uid] = self.env.now

    def note_recovered(self, task: "Task") -> None:
        """A task with a pending infra failure completed successfully."""
        t0 = self._pending_recovery.pop(task.uid, None)
        if t0 is None:
            return
        latency = self.env.now - t0
        self.recovery_latencies.append(latency)
        if self._m_recovery is not None:
            self._m_recovery.observe(latency)

    def note_blacklisted(self, backend: str) -> None:
        """The agent stopped routing to ``backend``."""
        self._log("blacklist", backend)

    @property
    def n_unrecovered(self) -> int:
        """Tasks that hit an infra failure and never completed."""
        return len(self._pending_recovery)

    def open_downtime(self, now: float) -> float:
        """Node-seconds of downtime still open at time ``now``."""
        return sum(now - t0 for (t0, _c) in self._down_since.values())
