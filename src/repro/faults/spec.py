"""Declarative fault-injection and retry-policy configuration.

A :class:`FaultSpec` describes *what goes wrong* (node crashes on an
MTBF process, transient launch failures, whole-backend crashes) and a
nested :class:`RetryPolicy` describes *how the stack recovers* (backoff
schedule, attempt budget, backend blacklisting, restart).  Both are
frozen: a spec can be shared between repetitions and hashed into run
manifests without defensive copies.

Specs parse from the compact ``key=value,key=value`` syntax used by the
experiments CLI (``--faults mtbf=1800,p_launch_fail=0.01``), mirroring
how sbatch-style tools accept constraint strings.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.random import RngStreams


@dataclass(frozen=True)
class RetryPolicy:
    """How failed attempts are retried and failing backends handled.

    Parameters
    ----------
    max_attempts:
        Total execution attempts per task (first try included) granted
        for *infrastructure* failures.  Per-task ``retries`` from the
        task description are honored on top of (before) this budget.
    backoff_base / backoff_factor / backoff_max:
        Exponential backoff: attempt ``k`` (1-based count of finished
        attempts) waits ``min(base * factor**(k-1), backoff_max)``
        seconds before resubmission.
    jitter:
        Relative jitter applied to each backoff delay, drawn from the
        seeded ``faults.backoff`` stream: the delay is scaled by a
        uniform factor in ``[1 - jitter, 1 + jitter]``.
    deadline:
        Give up retrying once the simulation clock passes this time.
    blacklist_after:
        Consecutive infrastructure failures on one backend before the
        agent stops routing new tasks to it (0 disables blacklisting).
    backend_restart:
        Whether crashed Flux instances are restarted (with a fresh
        cold-start delay from the latency calibration).
    """

    max_attempts: int = 4
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_max: float = 60.0
    jitter: float = 0.1
    deadline: float = float("inf")
    blacklist_after: int = 3
    backend_restart: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_factor < 0:
            raise ConfigurationError("backoff parameters must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}")
        if self.blacklist_after < 0:
            raise ConfigurationError(
                f"blacklist_after must be >= 0, got {self.blacklist_after}")

    def allows(self, attempts: int, now: float = 0.0) -> bool:
        """May a task with ``attempts`` finished attempts try again?"""
        return attempts < self.max_attempts and now < self.deadline

    def delay(self, attempts: int, rng: "RngStreams") -> float:
        """Backoff before the attempt following ``attempts`` failures.

        Deterministic given the seed: the jitter factor is one uniform
        draw from the dedicated ``faults.backoff`` stream.
        """
        base = min(self.backoff_base * self.backoff_factor ** (attempts - 1),
                   self.backoff_max)
        if base <= 0.0:
            return 0.0
        if self.jitter > 0.0:
            base *= rng.uniform("faults.backoff",
                                1.0 - self.jitter, 1.0 + self.jitter)
        return base


#: RetryPolicy field names, for routing parse() keys into the nested policy.
_RETRY_FIELDS = frozenset(f.name for f in dataclasses.fields(RetryPolicy))


@dataclass(frozen=True)
class FaultSpec:
    """What the fault model injects, all rates per simulated second.

    Every rate defaults to zero, so ``FaultSpec()`` injects nothing but
    still activates the :class:`RetryPolicy` — useful for exercising
    recovery against payload failures alone.

    Parameters
    ----------
    mtbf:
        Per-node mean time between failures [s]; 0 disables node
        crashes.  Times are drawn per node from the ``faults.node``
        stream using ``dist``.
    dist:
        Failure-time distribution: ``"exponential"`` or ``"weibull"``
        (the latter with ``weibull_shape``, matching HPC failure
        studies where infant mortality/wear-out skew the hazard).
    mttr:
        Mean time to repair a DOWN node [s]; 0 means nodes stay down.
    max_node_failures:
        Cap on injected node crashes (0 = unbounded).
    p_launch_fail / p_launch_timeout:
        Per-attempt probability that a launch fails immediately or
        hangs for ``launch_timeout`` seconds before failing (srun step
        errors, Flux exec errors, Dragon worker death).
    backend_mtbf:
        Mean time between whole-backend crashes (Flux broker death,
        Dragon pool teardown) per runtime instance; 0 disables.
    retry:
        The recovery policy; see :class:`RetryPolicy`.
    """

    mtbf: float = 0.0
    dist: str = "exponential"
    weibull_shape: float = 1.5
    mttr: float = 120.0
    max_node_failures: int = 0
    p_launch_fail: float = 0.0
    p_launch_timeout: float = 0.0
    launch_timeout: float = 30.0
    backend_mtbf: float = 0.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.mtbf < 0 or self.mttr < 0 or self.backend_mtbf < 0:
            raise ConfigurationError("MTBF/MTTR values must be >= 0")
        if self.dist not in ("exponential", "weibull"):
            raise ConfigurationError(
                f"unknown failure distribution {self.dist!r} "
                "(expected 'exponential' or 'weibull')")
        if self.weibull_shape <= 0:
            raise ConfigurationError(
                f"weibull_shape must be > 0, got {self.weibull_shape}")
        if not 0.0 <= self.p_launch_fail <= 1.0 \
                or not 0.0 <= self.p_launch_timeout <= 1.0:
            raise ConfigurationError("launch-fault probabilities must be in [0, 1]")
        if self.p_launch_fail + self.p_launch_timeout > 1.0:
            raise ConfigurationError(
                "p_launch_fail + p_launch_timeout must not exceed 1")
        if self.launch_timeout < 0:
            raise ConfigurationError("launch_timeout must be >= 0")
        if self.max_node_failures < 0:
            raise ConfigurationError("max_node_failures must be >= 0")

    @property
    def enabled(self) -> bool:
        """Does this spec inject anything at all?"""
        return (self.mtbf > 0.0 or self.backend_mtbf > 0.0
                or self.p_launch_fail > 0.0 or self.p_launch_timeout > 0.0)

    @classmethod
    def parse(cls, text: str,
              base: "Optional[FaultSpec]" = None) -> "FaultSpec":
        """Parse ``"mtbf=1800,p_launch_fail=0.01,max_attempts=5"``.

        Keys belonging to :class:`RetryPolicy` are routed into the
        nested policy; unknown keys raise
        :class:`~repro.exceptions.ConfigurationError`.  With ``base``,
        unnamed keys keep the base spec's values instead of the class
        defaults (the CLI layers ``--faults`` over a config's spec).
        """
        spec_fields = {f.name: f.type for f in dataclasses.fields(cls)
                       if f.name != "retry"}
        spec_kw: dict = {}
        retry_kw: dict = {}
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise ConfigurationError(
                    f"malformed fault option {chunk!r} (expected key=value)")
            key, _, raw = chunk.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key in spec_fields:
                spec_kw[key] = _coerce(key, raw)
            elif key in _RETRY_FIELDS:
                retry_kw[key] = _coerce(key, raw)
            else:
                raise ConfigurationError(f"unknown fault option {key!r}")
        if base is not None:
            if retry_kw:
                spec_kw["retry"] = dataclasses.replace(base.retry, **retry_kw)
            return dataclasses.replace(base, **spec_kw)
        if retry_kw:
            spec_kw["retry"] = RetryPolicy(**retry_kw)
        return cls(**spec_kw)


_INT_KEYS = frozenset({"max_node_failures", "max_attempts", "blacklist_after"})
_STR_KEYS = frozenset({"dist"})
_BOOL_KEYS = frozenset({"backend_restart"})


def _coerce(key: str, raw: str):
    if key in _STR_KEYS:
        return raw
    if key in _BOOL_KEYS:
        if raw.lower() in ("1", "true", "yes", "on"):
            return True
        if raw.lower() in ("0", "false", "no", "off"):
            return False
        raise ConfigurationError(f"{key} expects a boolean, got {raw!r}")
    try:
        return int(raw) if key in _INT_KEYS else float(raw)
    except ValueError:
        raise ConfigurationError(f"{key} expects a number, got {raw!r}") from None
