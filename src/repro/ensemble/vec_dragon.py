"""Vectorized dragon ensembles: serialized GS dispatch, lock-step.

A single-partition dragon pilot is FIFO in task order end to end —
like srun, and unlike flux there is no cycle structure — so the cohort
advances over the shared task index:

* ``agent.dispatch`` — serialized agent stage (no flux coordination
  surcharge), cumulative chain ``D``;
* ZMQ submission hop — constant ``D + ZMQ_HOP_LATENCY`` (the pipe is
  FIFO with per-message latency, no queueing between dispatches);
* ``dragon.gs`` — serialized global-services bookkeeping, the dragon
  analogue of srun's slurmctld stage:
  ``gs_done = max(arrival, gs_done) + gs[i]``, with the mean from
  :meth:`DragonRuntime.gs_exec_mean`;
* worker-pool slot — pop-min over ``min(cores, tasks)`` free times;
  executable tasks always pay the cold fork+exec cost
  (:data:`~repro.dragon.pool.COLD_START_COST`), so
  ``start = max(gs_done, slot_free) + COLD``.

The one representational twist is the completion record: the runtime
stamps ``exec_stop`` at payload finish ``F`` but the executor only
*emits* it after the ZMQ completion hop, together with ``done`` at
``F + ZMQ``.  Profile rows are ordered by emission while carrying the
backdated timestamp, so the synthesis passes separate emission-time
and record-time stacks (see
:func:`~repro.ensemble.vectorized.synthesize_profiler`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..dragon.channels import ZMQ_HOP_LATENCY
from ..dragon.pool import COLD_START_COST
from ..dragon.runtime import DragonRuntime
from ..platform.latency import FRONTIER_LATENCIES, LatencyModel
from ..platform.profiles import frontier
from .vectorized import (
    _PROGRESS_STEP,
    _workload,
    assemble_results,
    capture_preamble,
    dispatch_chain,
    dispatch_mean,
)


def run_dragon_vectorized(cfg, seeds: Sequence[int],
                          latencies: LatencyModel = FRONTIER_LATENCIES,
                          keep_profiles: bool = False, progress=None):
    """All member seeds of a single-partition dragon config, lock-step.

    Same contract as the srun engine: per-seed metrics float-identical
    and profiles byte-identical to independent sequential runs.
    """
    from ..sim.random import RngStreams

    descriptions = _workload(cfg)
    description = descriptions[0]
    n_tasks = len(descriptions)
    duration = float(description.duration)
    n_members = len(seeds)
    n_cores = cfg.n_nodes * frontier(1).cores_per_node

    # The dragon bootstrap draws its startup time per seed, so the
    # preamble capture runs once per member.
    preambles = []
    for seed in seeds:
        preamble = capture_preamble(cfg, latencies, seed=seed)
        if preamble is None:
            raise ValueError("dragon bootstrap consumed unexpected "
                             "randomness; vectorized engine unavailable")
        preambles.append(preamble)

    disp_mean = dispatch_mean(cfg, latencies)
    gs_mean = DragonRuntime.gs_exec_mean(latencies, cfg.n_nodes)
    disp = np.empty((n_members, n_tasks))
    gs = np.empty_like(disp)
    for m, seed in enumerate(seeds):
        rng = RngStreams(seed)
        disp[m] = rng.lognormal_latency_batch(
            "agent.dispatch", disp_mean, cv=latencies.agent_cv, n=n_tasks)
        gs[m] = rng.lognormal_latency_batch(
            "dragon.gs", gs_mean, cv=latencies.dragon_cv, n=n_tasks)

    t_ready = np.array([p.t_ready for p in preambles])
    D = dispatch_chain(disp, t_ready)

    S = np.empty_like(D)
    F = np.empty_like(D)
    rows = np.arange(n_members)
    pool_free = np.full((n_members, min(n_cores, n_tasks)), -np.inf)
    gs_done = np.full(n_members, -np.inf)
    for i in range(n_tasks):
        if progress is not None and i % _PROGRESS_STEP == 0:
            progress(i * n_members, n_tasks * n_members)
        arrival = D[:, i] + ZMQ_HOP_LATENCY
        gs_done = np.maximum(arrival, gs_done) + gs[:, i]
        slot = np.argmin(pool_free, axis=1)
        waited = np.maximum(gs_done, pool_free[rows, slot])
        started = waited + COLD_START_COST
        finished = started + duration if duration > 0 else started
        pool_free[rows, slot] = finished
        S[:, i] = started
        F[:, i] = finished
    if progress is not None:
        progress(n_tasks * n_members, n_tasks * n_members)

    FZ = F + ZMQ_HOP_LATENCY

    def emit_times(m):
        return np.concatenate([D[m], S[m], FZ[m], FZ[m]])

    def record_times(m):
        return np.concatenate([D[m], S[m], F[m], FZ[m]])

    return assemble_results(cfg, seeds, preambles, D, S, F, description,
                            keep_profiles, backend="dragon",
                            emit_times=emit_times,
                            record_times=record_times)
