"""Seed-list parsing for ensemble sweeps and the experiments CLI.

The CLI exposes explicit seed lists (``run --seeds 1,2,5-20``) next to
the older ``--reps`` form (which derives ``cfg.seed + rep``).  Parsing
lives in its own dependency-free module so both the harness and the
ensemble engine can import it without a circular import.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from ..exceptions import ConfigurationError

#: Accepted by every ``seeds=`` parameter: an explicit sequence of
#: ints or a spec string like ``"1,2,5-20"``.
SeedsLike = Union[str, Sequence[int], Iterable[int]]


def parse_seed_list(spec: str) -> List[int]:
    """Parse ``"1,2,5-20"`` into an explicit seed list.

    Comma-separated entries; each entry is one non-negative integer or
    an inclusive ``lo-hi`` range.  Order is preserved and duplicates
    are kept (running one seed twice is a deterministic no-op worth
    allowing for A/B timing), so ``"3,1-2"`` yields ``[3, 1, 2]``.
    """
    out: List[int] = []
    for raw in spec.split(","):
        entry = raw.strip()
        if not entry:
            raise ConfigurationError(f"empty entry in seed list {spec!r}")
        lo, sep, hi = entry.partition("-")
        try:
            if sep:
                start, stop = int(lo), int(hi)
                if start > stop:
                    raise ConfigurationError(
                        f"descending seed range {entry!r} in {spec!r}")
                out.extend(range(start, stop + 1))
            else:
                out.append(int(entry))
        except ValueError:
            raise ConfigurationError(
                f"bad seed entry {entry!r} in {spec!r}")
    if not out:
        raise ConfigurationError(f"empty seed list {spec!r}")
    if any(s < 0 for s in out):
        raise ConfigurationError(f"negative seed in {spec!r}")
    return out


def resolve_seeds(seeds: SeedsLike) -> List[int]:
    """Normalize any ``seeds=`` argument into a non-empty int list."""
    if isinstance(seeds, str):
        return parse_seed_list(seeds)
    out = [int(s) for s in seeds]
    if not out:
        raise ConfigurationError("seed list is empty")
    if any(s < 0 for s in out):
        raise ConfigurationError(f"negative seed in {out!r}")
    return out
