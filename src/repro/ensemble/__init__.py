"""Ensemble execution: batched multi-seed sweeps and a fast surrogate.

The paper's characterization methodology is sweep-shaped — every
reported number is a distribution over repeated seeded runs — which
makes per-seed cost the dominant term in reproduction cost.  This
package attacks it at three price points:

* :func:`run_ensemble` — many seeds of one config in one process.
  Configs on the vectorized fast path
  (:mod:`repro.ensemble.vectorized`: single-partition srun, flux and
  dragon) advance all members in lock-stepped structure-of-arrays
  cohorts through the launch pipeline's exact queueing recurrence —
  srun/dragon over the task index, flux over scheduler-cycle
  boundaries; everything else replays the real stack per seed with the
  per-sweep setup hoisted (auto-sharded over the process pool for
  sweeps of four seeds or more).  Either way, per-seed results and
  exported profiles are byte-identical to independent sequential runs.
* :class:`FluidSurrogate` — a calibrated mean-value model answering
  throughput/utilization what-ifs in microseconds, within the
  EXPERIMENTS.md error bands.
* ``parallel=`` — batch-of-seeds fan-out over worker processes,
  composing with :mod:`repro.experiments.parallel`.
"""

from .engine import (
    ENGINE_REPLAY,
    ENGINE_VECTORIZED,
    EnsembleMember,
    EnsembleResult,
    run_ensemble,
    write_ensemble_bundle,
)
from .seeds import SeedsLike, parse_seed_list, resolve_seeds
from .surrogate import FluidSurrogate, SurrogatePrediction
from .vectorized import run_vectorized, supports_vectorized

__all__ = [
    "ENGINE_REPLAY",
    "ENGINE_VECTORIZED",
    "EnsembleMember",
    "EnsembleResult",
    "FluidSurrogate",
    "SeedsLike",
    "SurrogatePrediction",
    "parse_seed_list",
    "resolve_seeds",
    "run_ensemble",
    "run_vectorized",
    "supports_vectorized",
    "write_ensemble_bundle",
]
