"""Vectorized flux_1 ensembles: the scheduler-cycle cohort recurrence.

Unlike srun's pipeline, flux does not grant in task order — the
scheduler wakes in duty *cycles* separated by heavy-tailed gap draws
and grants a whole FCFS prefix per cycle.  The cohort therefore cannot
advance over a shared task index; it advances over **cycle
boundaries**: every iteration of the lock-step loop is "each still
-active member runs its next scheduler cycle", and members fall out of
lock-step in *cycle count* (one member may need 40 cycles, another 60)
while staying fully vectorized per iteration.

Per member the single-instance flux timeline is an exact recurrence in
four named streams (the instance is the only consumer of each, so
batch pre-draws are bitwise-identical to the kernel's interleaved
draws — flux_n breaks exactly this property, see
:attr:`FluxHierarchy.is_trivial`):

* ``agent.dispatch`` — serialized agent stage, cumulative chain ``D``;
* ``flux.ingest`` — serialized job-manager ingest:
  ``I[j] = max(D[j], prev) + ing[j]`` (``I`` is sorted by
  construction, which is what makes the per-cycle eligible set a
  binary-searchable prefix);
* ``flux.cycle`` — one gap draw per scheduler wake-up.  The cycle
  count is data-dependent (parked cycles draw too), so the draws come
  from a lazily-extended :class:`~repro.sim.random.StreamCursor`
  rather than a fixed pre-draw;
* ``flux.spawn`` — per-lane job-shell spawn, drawn in grant order
  (= job order, because FCFS grants are queue prefixes).

One scheduler cycle at wake time ``T`` with gap ``g`` (match instant
``M = T + g``):

1. eligible = ingest-order prefix arrived by ``M`` minus already
   granted; free = cores with free-time <= ``M``; the grant size is
   :meth:`FcfsPolicy.grant_count` — ``min(eligible, free)``.
2. ``k == 0`` — park: next wake is the earlier of the next ingest
   append and the next core release after ``M`` (both event sources
   re-kick the scheduler, and both must be considered — a core can
   free before the next arrival).
3. ``k > 0`` — grant jobs ``ms .. ms+k`` in order: each pops the
   earliest-free TBON lane (``start = max(M, lane_free) + spawn``),
   runs for the payload duration, and pushes its finish onto the
   earliest-free core slot.
4. next wake: ``M`` itself while eligible jobs remain pending (the
   scheduler re-arms immediately), else the next ingest append.

Task records then sit at fixed offsets: ``scheduled`` at ``D``,
``exec_start``/``exec_stop``/``done`` at start/finish plus the event
-stream delivery delay.  Byte-identity with sequential runs is pinned
by the determinism suite and the reference digests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..flux.events import DELIVERY_DELAY
from ..flux.instance import FluxInstance
from ..platform.latency import FRONTIER_LATENCIES, LatencyModel
from ..platform.profiles import frontier
from .vectorized import (
    _PROGRESS_STEP,
    _workload,
    assemble_results,
    capture_preamble,
    dispatch_chain,
    dispatch_mean,
)

#: Lock-step iteration ceiling per member-cycle loop.  Every iteration
#: consumes one cycle draw per active member and either grants >= 1 job
#: or parks to a strictly later wake event (arrival or core release),
#: so real cycle counts are O(tasks); the guard only trips on a logic
#: regression, turning a hang into a loud failure.
_MAX_CYCLES_PER_TASK = 64
_MAX_CYCLES_BASE = 4096


def _serialized_chain(base: np.ndarray, draws: np.ndarray) -> np.ndarray:
    """``out[:, j] = max(base[:, j], out[:, j-1]) + draws[:, j]`` —
    a single-server FIFO stage, in kernel float order."""
    out = np.empty_like(draws)
    prev = np.full(draws.shape[0], -np.inf)
    for j in range(draws.shape[1]):
        prev = np.maximum(base[:, j], prev) + draws[:, j]
        out[:, j] = prev
    return out


def run_flux_vectorized(cfg, seeds: Sequence[int],
                        latencies: LatencyModel = FRONTIER_LATENCIES,
                        keep_profiles: bool = False, progress=None):
    """All member seeds of a single-instance flux config, lock-step.

    Same contract as the srun engine: per-seed metrics float-identical
    and profiles byte-identical to independent sequential runs.
    """
    from ..sim.random import RngStreams, StreamCursor

    descriptions = _workload(cfg)
    description = descriptions[0]
    n_tasks = len(descriptions)
    duration = float(description.duration)
    n_members = len(seeds)
    n_lanes = FluxInstance.lane_count(cfg.n_nodes, latencies)
    n_cores = cfg.n_nodes * frontier(1).cores_per_node

    # Flux bootstraps draw per-seed randomness (startup + background
    # load), so the preamble capture runs once per member; the drawn
    # load factor parameterizes that member's spawn-time stream.
    preambles = []
    for seed in seeds:
        preamble = capture_preamble(cfg, latencies, seed=seed)
        if preamble is None:
            raise ValueError("flux bootstrap consumed unexpected "
                             "randomness; vectorized engine unavailable")
        assert preamble.backend_meta.get("lanes") == n_lanes
        preambles.append(preamble)

    disp_mean = dispatch_mean(cfg, latencies)
    disp = np.empty((n_members, n_tasks))
    ing = np.empty_like(disp)
    spw = np.empty_like(disp)
    cursors = []
    for m, seed in enumerate(seeds):
        rng = RngStreams(seed)
        disp[m] = rng.lognormal_latency_batch(
            "agent.dispatch", disp_mean, cv=latencies.agent_cv, n=n_tasks)
        ing[m] = rng.lognormal_latency_batch(
            "flux.ingest", latencies.flux_ingest_cost,
            cv=latencies.flux_spawn_cv, n=n_tasks)
        spw[m] = rng.lognormal_latency_batch(
            "flux.spawn",
            FluxInstance.spawn_mean(
                latencies, preambles[m].backend_meta["load_factor"]),
            cv=latencies.flux_spawn_cv, n=n_tasks)
        cursors.append(StreamCursor(rng, "flux.cycle",
                                    latencies.flux_sched_cycle,
                                    cv=latencies.flux_cycle_cv))

    t_ready = np.array([p.t_ready for p in preambles])
    D = dispatch_chain(disp, t_ready)
    I = _serialized_chain(D, ing)

    S = np.empty_like(D)
    F = np.empty_like(D)
    core_free = np.full((n_members, min(n_cores, n_tasks)), -np.inf)
    lane_free = np.full((n_members, min(n_lanes, n_tasks)), -np.inf)
    ms = np.zeros(n_members, dtype=np.int64)   # jobs granted so far
    T = I[:, 0].copy()   # first wake: job 0's ingest append
    active = np.ones(n_members, dtype=bool)
    max_iters = _MAX_CYCLES_PER_TASK * n_tasks + _MAX_CYCLES_BASE
    iteration = 0
    while active.any():
        iteration += 1
        if iteration > max_iters:
            raise RuntimeError("flux cycle recurrence failed to "
                               f"converge within {max_iters} cycles")
        if progress is not None and iteration % _PROGRESS_STEP == 1:
            progress(int(ms.sum()), n_tasks * n_members)
        a = np.nonzero(active)[0]
        gaps = np.array([cursors[m].next() for m in a])
        Mt = T[a] + gaps
        counts = (I[a] <= Mt[:, None]).sum(axis=1)
        navail = counts - ms[a]
        nfree = (core_free[a] <= Mt[:, None]).sum(axis=1)
        k = np.minimum(navail, nfree)

        parked = k == 0
        if parked.any():
            p = a[parked]
            # Wake at the earlier of next ingest append and next core
            # release strictly after M — both, always (the park fix).
            idx_arr = ms[p] + navail[parked]
            nxt_arrival = np.where(
                idx_arr < n_tasks,
                I[p, np.minimum(idx_arr, n_tasks - 1)], np.inf)
            cf = core_free[p]
            release = np.where(cf > Mt[parked][:, None], cf,
                               np.inf).min(axis=1)
            T[p] = np.minimum(nxt_arrival, release)

        granting = k > 0
        if granting.any():
            g_all = a[granting]
            kg = k[granting]
            Mg = Mt[granting]
            # Grants happen job-by-job inside a cycle (lane and core
            # pop-mins are sequential per member); step s of every
            # granting member is vectorized together, and state
            # written at step s is visible at step s + 1.
            for step in range(int(kg.max())):
                sel = kg > step
                g = g_all[sel]
                j = ms[g] + step
                li = np.argmin(lane_free[g], axis=1)
                started = np.maximum(Mg[sel], lane_free[g, li]) + spw[g, j]
                lane_free[g, li] = started
                finished = started + duration if duration > 0 else started
                S[g, j] = started
                F[g, j] = finished
                ci = np.argmin(core_free[g], axis=1)
                core_free[g, ci] = finished
            ms[g_all] = ms[g_all] + kg
            done = ms[g_all] >= n_tasks
            still = ~done
            if still.any():
                sg = g_all[still]
                # Pending jobs left at M -> the scheduler re-arms at M;
                # queue drained -> sleep until the next ingest append.
                pending = counts[granting][still] - ms[sg]
                T[sg] = np.where(pending > 0, Mg[still],
                                 I[sg, np.minimum(ms[sg], n_tasks - 1)])
            active[g_all[done]] = False
    if progress is not None:
        progress(n_tasks * n_members, n_tasks * n_members)

    # Executor-visible times trail the job event stream by its RPC
    # delivery delay; ``scheduled`` is stamped at agent dispatch.
    exec_start = S + DELIVERY_DELAY
    exec_stop = F + DELIVERY_DELAY
    return assemble_results(cfg, seeds, preambles, D, exec_start,
                            exec_stop, description, keep_profiles,
                            backend="flux")
