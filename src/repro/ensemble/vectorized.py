"""Vectorized multi-seed execution of the srun launch pipeline.

The srun synthetic experiments (null/dummy single-core workloads) put
every task through the same FIFO queueing network:

    serial agent dispatch -> partition scheduler (``nodes * cpn``
    core slots) -> srun concurrency ceiling (112 slots) -> serialized
    slurmctld launch pipeline -> step setup -> payload execution

Every stage grants strictly in task-submission order, so the event
timestamps of a whole run are an exact recurrence in the task index —
no discrete-event kernel needed.  This module evaluates that
recurrence for *all ensemble members at once* (structure-of-arrays:
``(members,)`` vectors per pipeline stage, ``(members, slots)``
free-time tables for the two semaphores), advancing the member cohort
in lock-step over the task index.

Exactness is the contract, not an approximation: the per-stage
latency draws come from the same named RNG streams via
:meth:`~repro.sim.random.RngStreams.lognormal_latency_batch` (bitwise
identical to the kernel's sequential draws), the float arithmetic
reproduces the kernel's one-addition-per-event order, and the
bootstrap preamble (allocation grant, agent + backend bring-up) is
not modelled at all — it is *captured* by running the real session
machinery once per config (it consumes no randomness, so it is
identical across members).  Synthesized per-seed profiles are
byte-identical to independent sequential runs; the determinism tests
pin this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analytics.events import (
    TASK_CREATED,
    TASK_DONE,
    TASK_EXEC_START,
    TASK_EXEC_STOP,
    TASK_SCHEDULED,
    TraceEvent,
)
from ..analytics.metrics import (
    startup_overheads,
    throughput,
    utilization_from_intervals,
)
from ..analytics.profiler import Profiler
from ..core.description import MODE_EXECUTABLE
from ..core.session import Session
from ..platform.latency import FRONTIER_LATENCIES, LatencyModel
from ..platform.profiles import frontier

#: Launcher handled by this fast path (the other runtimes interleave
#: non-FIFO stages — scheduler cycles, TBON lanes — and go through the
#: generic per-member replay engine instead).
_SRUN = "srun"
_SYNTHETIC = ("null", "dummy")


def supports_vectorized(cfg, latencies: LatencyModel = FRONTIER_LATENCIES
                        ) -> bool:
    """Whether ``cfg`` qualifies for the vectorized srun engine.

    The recurrence is exact only for the FIFO pipeline above: srun
    launcher, uniform single-core no-staging null/dummy tasks, no
    fault injection and no partition sharding.  Everything else falls
    back to the generic engine (same results, per-member replay).
    """
    if cfg.launcher != _SRUN or cfg.workload not in _SYNTHETIC:
        return False
    if cfg.faults is not None or cfg.shards is not None:
        return False
    descriptions = _workload(cfg)
    first = descriptions[0]
    if any(d is not first and d != first for d in descriptions):
        return False
    res = first.resources
    return (first.mode == MODE_EXECUTABLE
            and first.backend in (None, _SRUN)
            and res.cores == 1 and res.gpus == 0
            and first.input_staging == 0 and first.output_staging == 0
            and first.retries == 0)


def _workload(cfg):
    from ..experiments.harness import build_workload  # circular-safe

    return build_workload(cfg)


@dataclass(frozen=True)
class _Preamble:
    """Seed-independent run prefix captured from the real stack."""

    records: Tuple[TraceEvent, ...]   #: alloc grant + agent/backend events
    t_ready: float                    #: dispatch-loop start time
    overheads: List[Tuple[str, float]]  #: startup_overheads() rows


def capture_preamble(cfg, latencies: LatencyModel = FRONTIER_LATENCIES
                     ) -> Optional[_Preamble]:
    """Run the real bootstrap (no tasks) and capture its trace.

    With an empty intake the simulation runs allocation grant, agent
    bootstrap and backend bring-up, then the dispatch loop blocks and
    the event queue drains.  None of that consumes randomness for the
    srun backend, so the captured records and the agent-ready time are
    identical for every member seed; the capture is reused across the
    whole ensemble.  Returns ``None`` (caller falls back to the
    generic engine) if the preamble unexpectedly drew from any RNG
    stream — a guard against future backends violating the
    assumption, not a path any current config takes.
    """
    from ..experiments.harness import build_pilot_description

    session = Session(cluster=frontier(max(cfg.n_nodes, 1)),
                      latencies=latencies, seed=cfg.seed)
    try:
        pmgr = session.pilot_manager()
        tmgr = session.task_manager()
        pilot = pmgr.submit_pilots(build_pilot_description(cfg))
        tmgr.add_pilot(pilot)
        session.env.run()
        if session.rng._streams:
            return None
        return _Preamble(records=tuple(session.profiler),
                         t_ready=session.env.now,
                         overheads=startup_overheads(session.profiler))
    finally:
        session.close()


def _stage_means(cfg, latencies: LatencyModel) -> Tuple[float, float, float]:
    """Exact mean service times of the three stochastic stages.

    Mirrors :meth:`Agent._dispatch_mean` (zero Flux instances on a
    pure-srun pilot) and :meth:`SlurmController.launch_service_time`
    term by term so the cached lognormal parameters match bitwise.
    """
    n = cfg.n_nodes
    dispatch = (latencies.agent_dispatch_base
                + latencies.agent_dispatch_per_node * n)
    dispatch = dispatch * (1.0 + latencies.agent_coord_per_instance * 0)
    ctl = (latencies.srun_ctl_base
           + latencies.srun_ctl_per_node * n
           + latencies.srun_ctl_per_node15 * n ** 1.5)
    return dispatch, ctl, latencies.srun_step_setup


def _member_draws(seeds: Sequence[int], cfg, latencies: LatencyModel,
                  n_tasks: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Whole-run latency draws for every member, ``(M, n_tasks)`` each.

    Per member this extends PR 4's per-wave ``lognormal_batch`` idiom
    to the full run: all three streams are pre-drawn in one batch,
    which is bitwise-identical to the kernel's interleaved sequential
    draws because each stage owns its stream and every stage serves
    strictly in task order.
    """
    from ..sim.random import RngStreams

    dispatch_mean, ctl_mean, setup_mean = _stage_means(cfg, latencies)
    dispatch = np.empty((len(seeds), n_tasks))
    ctl = np.empty_like(dispatch)
    setup = np.empty_like(dispatch)
    for m, seed in enumerate(seeds):
        rng = RngStreams(seed)
        dispatch[m] = rng.lognormal_latency_batch(
            "agent.dispatch", dispatch_mean, cv=latencies.agent_cv,
            n=n_tasks)
        ctl[m] = rng.lognormal_latency_batch(
            "slurm.ctl", ctl_mean, cv=latencies.srun_cv, n=n_tasks)
        setup[m] = rng.lognormal_latency_batch(
            "srun.setup", setup_mean, cv=latencies.srun_cv, n=n_tasks)
    return dispatch, ctl, setup


#: Cohort steps between progress-callback firings; the callback is
#: wall-clock rate-limited downstream, this just bounds call overhead.
_PROGRESS_STEP = 1024


def _cohort_recurrence(dispatch: np.ndarray, ctl: np.ndarray,
                       setup: np.ndarray, t_ready: float, duration: float,
                       core_slots: int, ceiling_slots: int,
                       progress=None
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lock-step evaluation of the srun pipeline across all members.

    Returns ``(scheduled, exec_start, exec_stop)`` arrays of shape
    ``(members, tasks)``.  Per task index ``i`` (the cohort step),
    vectorized over members ``m``:

    * dispatch: ``D[i] = D[i-1] + dispatch[i]`` — the serialized agent
      stage, accumulated in the kernel's one-addition-per-task order;
    * core slot: pop the earliest of ``core_slots`` free times
      (``P = max(D, free)``) — a counted FIFO semaphore is exactly a
      pop-min/push-completion recurrence;
    * ceiling slot: same over ``ceiling_slots``;
    * controller: ``E[i] = max(G, E[i-1]) + ctl[i]`` — the serialized
      launch pipeline (single-server FIFO queue);
    * setup/payload: ``X = E + setup[i]``; ``stop = X + duration``,
      which releases both semaphore slots.

    Both semaphores are capped at the task count: extra slots beyond
    that can never make anyone wait, and the ``(M, slots)`` free-time
    tables stay small on large allocations.

    ``progress(i, n_tasks)``, when given, is called every
    :data:`_PROGRESS_STEP` cohort steps — a read-only hook for the
    telemetry bus; the recurrence itself is pure arithmetic and
    unaffected by it.
    """
    n_members, n_tasks = dispatch.shape
    rows = np.arange(n_members)
    free_cores = np.zeros((n_members, min(core_slots, n_tasks)))
    free_ceiling = np.zeros((n_members, min(ceiling_slots, n_tasks)))
    scheduled = np.empty_like(dispatch)
    exec_start = np.empty_like(dispatch)
    dispatch_at = np.full(n_members, t_ready)
    pipeline_free = np.full(n_members, -np.inf)
    for i in range(n_tasks):
        if progress is not None and i % _PROGRESS_STEP == 0:
            progress(i, n_tasks)
        dispatch_at = dispatch_at + dispatch[:, i]
        slot = np.argmin(free_cores, axis=1)
        placed = np.maximum(dispatch_at, free_cores[rows, slot])
        ceil = np.argmin(free_ceiling, axis=1)
        granted = np.maximum(placed, free_ceiling[rows, ceil])
        launched = np.maximum(granted, pipeline_free) + ctl[:, i]
        started = launched + setup[:, i]
        stopped = started + duration
        free_cores[rows, slot] = stopped
        free_ceiling[rows, ceil] = stopped
        pipeline_free = launched
        scheduled[:, i] = dispatch_at
        exec_start[:, i] = started
    return scheduled, exec_start, exec_start + duration


def synthesize_profiler(preamble: _Preamble, scheduled: np.ndarray,
                        exec_start: np.ndarray, exec_stop: np.ndarray,
                        description) -> Profiler:
    """One member's full trace, in the kernel's emission order.

    Record streams are chronological; the only coincident-timestamp
    records the pipeline produces are one task's own exec-start /
    exec-stop / done cascade (zero-duration payloads), ordered by a
    per-record subkey under the stable merge sort.  Meta dicts are
    shared across records exactly like the kernel's bulk path shares
    them — they are read-only once recorded.
    """
    n_tasks = scheduled.shape[0]
    res = description.resources
    meta_created = {"cores": res.cores, "gpus": res.gpus,
                    "mode": description.mode}
    meta_sched = {"cores": res.cores, "gpus": res.gpus}
    meta_exec = {"cores": res.cores, "gpus": res.gpus, "backend": _SRUN}
    uids = [f"task.{i:06d}" for i in range(n_tasks)]
    events = [TraceEvent(0.0, uid, TASK_CREATED, meta_created)
              for uid in uids]
    events.extend(preamble.records)
    times = np.concatenate([scheduled, exec_start, exec_stop, exec_stop])
    cascade = np.repeat(np.arange(4.0), n_tasks)
    names = (TASK_SCHEDULED, TASK_EXEC_START, TASK_EXEC_STOP, TASK_DONE)
    metas = (meta_sched, meta_exec, meta_exec, meta_exec)
    for flat in np.lexsort((cascade, times)):
        kind, i = divmod(int(flat), n_tasks)
        events.append(TraceEvent(times[flat], uids[i], names[kind],
                                 metas[kind]))
    profiler = Profiler(None, enabled=True)
    profiler._events = events
    return profiler


def run_vectorized(cfg, seeds: Sequence[int],
                   latencies: LatencyModel = FRONTIER_LATENCIES,
                   keep_profiles: bool = False,
                   progress=None):
    """Run all member seeds of ``cfg`` through the vectorized engine.

    Returns ``(results, profilers)``: per-seed
    :class:`~repro.experiments.harness.ExperimentResult` objects whose
    metrics are float-identical to independent
    :func:`~repro.experiments.harness.run_experiment` calls, and (when
    ``keep_profiles``) per-seed profilers whose exported traces are
    byte-identical to those runs.  Falls back by raising
    ``ValueError`` when the config does not qualify — callers check
    :func:`supports_vectorized` first.

    ``progress(tasks_done, tasks_total)`` (cohort-level counts summed
    over members) is invoked periodically during the recurrence — the
    ensemble engine wires it to the telemetry bus.
    """
    from ..experiments.harness import ExperimentResult

    if not supports_vectorized(cfg, latencies):
        raise ValueError(f"config {cfg.exp_id!r} does not qualify for "
                         "the vectorized ensemble engine")
    preamble = capture_preamble(cfg, latencies)
    if preamble is None:
        raise ValueError("bootstrap preamble consumed randomness; "
                         "vectorized engine unavailable")
    descriptions = _workload(cfg)
    description = descriptions[0]
    n_tasks = len(descriptions)
    duration = float(description.duration)
    cluster_cores = cfg.n_nodes * frontier(1).cores_per_node
    total_gpus = cfg.n_nodes * frontier(1).gpus_per_node
    dispatch, ctl, setup = _member_draws(seeds, cfg, latencies, n_tasks)
    cohort_progress = None
    if progress is not None:
        n_members = len(seeds)

        def cohort_progress(i, total):
            progress(i * n_members, total * n_members)
    scheduled, exec_start, exec_stop = _cohort_recurrence(
        dispatch, ctl, setup, preamble.t_ready, duration,
        core_slots=cluster_cores, ceiling_slots=latencies.srun_ceiling,
        progress=cohort_progress)

    results = []
    profilers: List[Optional[Profiler]] = []
    ones = np.ones(n_tasks)
    zeros = np.zeros(n_tasks)
    for m, seed in enumerate(seeds):
        starts, stops = exec_start[m], exec_stop[m]
        # Same rows, order and float ops as metrics.exec_intervals /
        # exec_start_times over the kernel's task list.
        intervals = np.stack(
            [starts, stops, ones * description.resources.cores,
             zeros + description.resources.gpus], axis=1)
        member_cfg = cfg.with_seed(seed)
        results.append(ExperimentResult(
            config=member_cfg,
            n_tasks=n_tasks,
            n_done=n_tasks,
            n_failed=0,
            throughput=throughput(np.sort(starts)),
            utilization_cores=utilization_from_intervals(
                intervals, cluster_cores),
            utilization_gpus=(utilization_from_intervals(
                intervals, total_gpus, resource="gpus")
                if total_gpus else 0.0),
            makespan=float(stops.max()) - 0.0,
            startup_overheads=list(preamble.overheads),
            tasks=[],
            session=None,
        ))
        profilers.append(
            synthesize_profiler(preamble, scheduled[m], starts, stops,
                                description)
            if keep_profiles else None)
    return results, profilers
