"""Vectorized multi-seed execution of the launch pipelines.

The synthetic experiments (null/dummy single-core workloads) put every
task through a launcher-specific queueing network whose grant structure
is *deterministic given the latency draws*:

``srun``
    serial agent dispatch -> partition scheduler (``nodes * cpn`` core
    slots) -> srun concurrency ceiling (112 slots) -> serialized
    slurmctld launch pipeline -> step setup -> payload execution.
    Every stage grants strictly in task-submission order, so the event
    timestamps are an exact recurrence in the *task index*.

``flux`` (single instance)
    serial agent dispatch -> serialized job-manager ingest ->
    scheduler duty cycles (bursts of FCFS matching separated by
    heavy-tailed gaps) -> TBON dispatch lanes -> payload execution.
    Grants happen in batched scheduler cycles, not per-task order, so
    the recurrence advances over *cycle boundaries* instead: per cycle,
    the eligible set is the ingest-order prefix that has arrived by the
    cycle instant, and the grant count is the FCFS closed form
    ``min(eligible, free cores)`` (:meth:`FcfsPolicy.grant_count`).
    :mod:`repro.ensemble.vec_flux` implements the cohort state machine.

``dragon`` (single partition)
    serial agent dispatch -> ZMQ task pipe -> serialized GS bookkeeping
    -> worker-pool slot (cold exec spawn) -> payload execution — a
    per-task recurrence like srun's, with the completion record
    *backdated* relative to its ZMQ-delayed emission
    (:mod:`repro.ensemble.vec_dragon`).

This module holds the shared machinery (eligibility, bootstrap-preamble
capture, trace synthesis, result assembly) plus the srun engine, and
dispatches qualifying configs to the launcher-specific engines.  All of
them evaluate their recurrence for *all ensemble members at once*
(structure-of-arrays: ``(members,)`` vectors per pipeline stage,
``(members, slots)`` free-time tables for the counted semaphores),
advancing the member cohort in lock-step.

Exactness is the contract, not an approximation: the per-stage latency
draws come from the same named RNG streams via
:meth:`~repro.sim.random.RngStreams.lognormal_latency_batch` (bitwise
identical to the kernel's sequential draws), the float arithmetic
reproduces the kernel's one-addition-per-event order, and the bootstrap
preamble (allocation grant, agent + backend bring-up) is not modelled
at all — it is *captured* by running the real session machinery with an
empty intake.  For srun the bootstrap consumes no randomness, so one
capture serves every member; flux and dragon bootstraps draw their
startup (and flux its background-load factor) from per-seed streams, so
the capture runs once per member.  Synthesized per-seed profiles are
byte-identical to independent sequential runs; the determinism tests
pin this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analytics.events import (
    TASK_CREATED,
    TASK_DONE,
    TASK_EXEC_START,
    TASK_EXEC_STOP,
    TASK_SCHEDULED,
    TraceEvent,
)
from ..analytics.metrics import (
    startup_overheads,
    throughput,
    utilization_from_intervals,
)
from ..analytics.profiler import Profiler
from ..core.description import MODE_EXECUTABLE
from ..core.session import Session
from ..platform.latency import FRONTIER_LATENCIES, LatencyModel
from ..platform.profiles import frontier

_SRUN = "srun"
_FLUX = "flux"
_DRAGON = "dragon"
_SYNTHETIC = ("null", "dummy")

#: RNG streams each launcher's bootstrap legitimately consumes while
#: the intake is empty.  A capture that drew from anything else is
#: rejected (the recurrence could no longer re-draw the run streams
#: from a fresh family) — a guard against future backends violating
#: the assumption, not a path any current config takes.
_BOOTSTRAP_STREAMS = {
    _SRUN: frozenset(),
    _FLUX: frozenset({"flux.startup", "flux.load"}),
    _DRAGON: frozenset({"dragon.startup"}),
}


def supports_vectorized(cfg, latencies: LatencyModel = FRONTIER_LATENCIES
                        ) -> bool:
    """Whether ``cfg`` qualifies for a vectorized ensemble engine.

    Common requirements: a uniform single-core no-staging null/dummy
    workload, no fault injection, no partition sharding.  On top of
    that, per launcher:

    * ``srun`` — always (the pipeline is FIFO in task order, ties
      cannot reorder grants);
    * ``flux`` — a single instance (sibling instances interleave
      unscoped session streams chronologically and couple through
      least-loaded routing — see
      :attr:`~repro.flux.hierarchy.FluxHierarchy.is_trivial`) and
      strictly positive dispatch/spawn/cycle noise: with degenerate
      (zero-cv) latencies, coincident events are ordered by kernel
      insertion order, which the closed-form recurrence does not model;
    * ``dragon`` — a single partition with positive dispatch/GS noise,
      for the same tie-ordering reason.

    Everything else falls back to the generic engine (same results,
    per-member replay — parallelized over seed shards by
    :func:`~repro.ensemble.run_ensemble`).
    """
    if cfg.workload not in _SYNTHETIC:
        return False
    if cfg.faults is not None or cfg.shards is not None:
        return False
    if _uniform_description(cfg) is None:
        return False
    if cfg.launcher == _SRUN:
        return True
    if cfg.n_partitions != 1 or latencies.agent_cv <= 0:
        return False
    if cfg.launcher == _FLUX:
        return (latencies.flux_cycle_cv > 0
                and latencies.flux_spawn_cv > 0)
    if cfg.launcher == _DRAGON:
        return latencies.dragon_cv > 0
    return False


def _uniform_description(cfg):
    """The shared task description when the workload is uniform
    single-core executable with no staging/retries, else ``None``."""
    descriptions = _workload(cfg)
    first = descriptions[0]
    if any(d is not first and d != first for d in descriptions):
        return None
    res = first.resources
    if (first.mode == MODE_EXECUTABLE
            and first.backend in (None, cfg.launcher)
            and res.cores == 1 and res.gpus == 0
            and first.input_staging == 0 and first.output_staging == 0
            and first.retries == 0):
        return first
    return None


def _workload(cfg):
    from ..experiments.harness import build_workload  # circular-safe

    return build_workload(cfg)


@dataclass(frozen=True)
class _Preamble:
    """A run prefix captured from the real stack (one seed's bootstrap)."""

    records: Tuple[TraceEvent, ...]   #: alloc grant + agent/backend events
    t_ready: float                    #: dispatch-loop start time
    overheads: List[Tuple[str, float]]  #: startup_overheads() rows
    #: The backend's ``backend_ready`` meta (flux: lanes + per-seed
    #: load factor; dragon: pool capacity); empty for srun.
    backend_meta: Dict = field(default_factory=dict)


def capture_preamble(cfg, latencies: LatencyModel = FRONTIER_LATENCIES,
                     seed: Optional[int] = None) -> Optional[_Preamble]:
    """Run the real bootstrap (no tasks) and capture its trace.

    With an empty intake the simulation runs allocation grant, agent
    bootstrap and backend bring-up, then the dispatch loop blocks and
    the event queue drains.  The dispatch-anchor time is the
    ``pilot_active`` record — *not* the drained clock, which a stray
    bootstrap watchdog timer (dragon's startup timeout) can leave far
    past the pilot's activation.

    For srun the capture consumes no randomness and is reused across
    the whole ensemble; flux/dragon captures draw their bootstrap
    streams and run once per member ``seed``.  Returns ``None``
    (caller falls back to the generic engine) if the preamble drew
    from any stream outside the launcher's bootstrap set.
    """
    from ..experiments.harness import build_pilot_description

    allowed = _BOOTSTRAP_STREAMS.get(cfg.launcher, frozenset())
    session = Session(cluster=frontier(max(cfg.n_nodes, 1)),
                      latencies=latencies,
                      seed=cfg.seed if seed is None else seed)
    try:
        pmgr = session.pilot_manager()
        tmgr = session.task_manager()
        pilot = pmgr.submit_pilots(build_pilot_description(cfg))
        tmgr.add_pilot(pilot)
        session.env.run()
        if not set(session.rng._streams) <= allowed:
            return None
        records = tuple(session.profiler)
        t_ready = max((r.time for r in records
                       if r.name == "pilot_active"),
                      default=session.env.now)
        backend_meta: Dict = {}
        for record in records:
            if record.name == "backend_ready":
                backend_meta = dict(record.meta)
        return _Preamble(records=records,
                         t_ready=t_ready,
                         overheads=startup_overheads(session.profiler),
                         backend_meta=backend_meta)
    finally:
        session.close()


def dispatch_mean(cfg, latencies: LatencyModel) -> float:
    """Mean of the agent's serialized task-management cost [s].

    Mirrors :meth:`Agent._dispatch_mean` term by term (the coordination
    surcharge counts *flux* instances only) so the cached lognormal
    parameters match bitwise.
    """
    mean = (latencies.agent_dispatch_base
            + latencies.agent_dispatch_per_node * cfg.n_nodes)
    n_flux = cfg.n_partitions if cfg.launcher == _FLUX else 0
    return mean * (1.0 + latencies.agent_coord_per_instance * n_flux)


def dispatch_chain(dispatch: np.ndarray, t_ready: np.ndarray) -> np.ndarray:
    """Cumulative dispatch times ``D[m, i]`` from per-task draws.

    Accumulated task-by-task (one addition per event), matching the
    kernel's serialized dispatch stage float-for-float — ``np.cumsum``
    is not guaranteed to use the same summation order.
    """
    n_members, n_tasks = dispatch.shape
    out = np.empty_like(dispatch)
    t = np.asarray(t_ready, dtype=float).copy()
    for i in range(n_tasks):
        t = t + dispatch[:, i]
        out[:, i] = t
    return out


def _stage_means(cfg, latencies: LatencyModel) -> Tuple[float, float, float]:
    """Exact mean service times of srun's three stochastic stages.

    Mirrors :func:`dispatch_mean` (zero Flux instances on a pure-srun
    pilot) and :meth:`SlurmController.launch_service_time` term by
    term.
    """
    n = cfg.n_nodes
    ctl = (latencies.srun_ctl_base
           + latencies.srun_ctl_per_node * n
           + latencies.srun_ctl_per_node15 * n ** 1.5)
    return dispatch_mean(cfg, latencies), ctl, latencies.srun_step_setup


def _member_draws(seeds: Sequence[int], cfg, latencies: LatencyModel,
                  n_tasks: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Whole-run srun latency draws for every member, ``(M, n_tasks)``.

    Per member this extends PR 4's per-wave ``lognormal_batch`` idiom
    to the full run: all three streams are pre-drawn in one batch,
    which is bitwise-identical to the kernel's interleaved sequential
    draws because each stage owns its stream and every stage serves
    strictly in task order.
    """
    from ..sim.random import RngStreams

    disp_mean, ctl_mean, setup_mean = _stage_means(cfg, latencies)
    dispatch = np.empty((len(seeds), n_tasks))
    ctl = np.empty_like(dispatch)
    setup = np.empty_like(dispatch)
    for m, seed in enumerate(seeds):
        rng = RngStreams(seed)
        dispatch[m] = rng.lognormal_latency_batch(
            "agent.dispatch", disp_mean, cv=latencies.agent_cv,
            n=n_tasks)
        ctl[m] = rng.lognormal_latency_batch(
            "slurm.ctl", ctl_mean, cv=latencies.srun_cv, n=n_tasks)
        setup[m] = rng.lognormal_latency_batch(
            "srun.setup", setup_mean, cv=latencies.srun_cv, n=n_tasks)
    return dispatch, ctl, setup


#: Cohort steps between progress-callback firings; the callback is
#: wall-clock rate-limited downstream, this just bounds call overhead.
_PROGRESS_STEP = 1024


def _cohort_recurrence(dispatch: np.ndarray, ctl: np.ndarray,
                       setup: np.ndarray, t_ready: float, duration: float,
                       core_slots: int, ceiling_slots: int,
                       progress=None
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lock-step evaluation of the srun pipeline across all members.

    Returns ``(scheduled, exec_start, exec_stop)`` arrays of shape
    ``(members, tasks)``.  Per task index ``i`` (the cohort step),
    vectorized over members ``m``:

    * dispatch: ``D[i] = D[i-1] + dispatch[i]`` — the serialized agent
      stage, accumulated in the kernel's one-addition-per-task order;
    * core slot: pop the earliest of ``core_slots`` free times
      (``P = max(D, free)``) — a counted FIFO semaphore is exactly a
      pop-min/push-completion recurrence;
    * ceiling slot: same over ``ceiling_slots``;
    * controller: ``E[i] = max(G, E[i-1]) + ctl[i]`` — the serialized
      launch pipeline (single-server FIFO queue);
    * setup/payload: ``X = E + setup[i]``; ``stop = X + duration``,
      which releases both semaphore slots.

    Both semaphores are capped at the task count: extra slots beyond
    that can never make anyone wait, and the ``(M, slots)`` free-time
    tables stay small on large allocations.

    ``progress(i, n_tasks)``, when given, is called every
    :data:`_PROGRESS_STEP` cohort steps — a read-only hook for the
    telemetry bus; the recurrence itself is pure arithmetic and
    unaffected by it.
    """
    n_members, n_tasks = dispatch.shape
    rows = np.arange(n_members)
    free_cores = np.zeros((n_members, min(core_slots, n_tasks)))
    free_ceiling = np.zeros((n_members, min(ceiling_slots, n_tasks)))
    scheduled = np.empty_like(dispatch)
    exec_start = np.empty_like(dispatch)
    dispatch_at = np.full(n_members, t_ready)
    pipeline_free = np.full(n_members, -np.inf)
    for i in range(n_tasks):
        if progress is not None and i % _PROGRESS_STEP == 0:
            progress(i, n_tasks)
        dispatch_at = dispatch_at + dispatch[:, i]
        slot = np.argmin(free_cores, axis=1)
        placed = np.maximum(dispatch_at, free_cores[rows, slot])
        ceil = np.argmin(free_ceiling, axis=1)
        granted = np.maximum(placed, free_ceiling[rows, ceil])
        launched = np.maximum(granted, pipeline_free) + ctl[:, i]
        started = launched + setup[:, i]
        stopped = started + duration
        free_cores[rows, slot] = stopped
        free_ceiling[rows, ceil] = stopped
        pipeline_free = launched
        scheduled[:, i] = dispatch_at
        exec_start[:, i] = started
    return scheduled, exec_start, exec_start + duration


def synthesize_profiler(preamble: _Preamble, scheduled: np.ndarray,
                        exec_start: np.ndarray, exec_stop: np.ndarray,
                        description, backend: str = _SRUN,
                        emit_times: Optional[np.ndarray] = None,
                        record_times: Optional[np.ndarray] = None
                        ) -> Profiler:
    """One member's full trace, in the kernel's emission order.

    Record streams are chronological in *emission* time; the only
    coincident-timestamp records the pipelines produce are one task's
    own exec-start / exec-stop / done cascade (zero-duration payloads,
    flux's synchronous finish), ordered by a per-record subkey under
    the stable merge sort.  Meta dicts are shared across records
    exactly like the kernel's bulk path shares them — they are
    read-only once recorded.

    By default the four per-task record streams are
    ``(scheduled, exec_start, exec_stop, exec_stop)`` and each record's
    ``time`` field equals its emission instant.  Backends that backdate
    a record relative to its emission (dragon stamps ``exec_stop`` at
    payload completion but *emits* it after the ZMQ completion hop)
    pass ``emit_times``/``record_times`` explicitly — both flat
    ``(4 * n_tasks,)`` stacks in (scheduled, start, stop, done) order;
    the sort runs on emission, the ``time`` field comes from the
    record stack.
    """
    n_tasks = scheduled.shape[0]
    res = description.resources
    meta_created = {"cores": res.cores, "gpus": res.gpus,
                    "mode": description.mode}
    meta_sched = {"cores": res.cores, "gpus": res.gpus}
    meta_exec = {"cores": res.cores, "gpus": res.gpus, "backend": backend}
    uids = [f"task.{i:06d}" for i in range(n_tasks)]
    events = [TraceEvent(0.0, uid, TASK_CREATED, meta_created)
              for uid in uids]
    events.extend(preamble.records)
    if emit_times is None:
        emit_times = np.concatenate(
            [scheduled, exec_start, exec_stop, exec_stop])
    if record_times is None:
        record_times = emit_times
    cascade = np.repeat(np.arange(4.0), n_tasks)
    names = (TASK_SCHEDULED, TASK_EXEC_START, TASK_EXEC_STOP, TASK_DONE)
    metas = (meta_sched, meta_exec, meta_exec, meta_exec)
    for flat in np.lexsort((cascade, emit_times)):
        kind, i = divmod(int(flat), n_tasks)
        events.append(TraceEvent(record_times[flat], uids[i], names[kind],
                                 metas[kind]))
    profiler = Profiler(None, enabled=True)
    profiler._events = events
    return profiler


def assemble_results(cfg, seeds: Sequence[int],
                     preambles: Sequence[_Preamble],
                     scheduled: np.ndarray, exec_start: np.ndarray,
                     exec_stop: np.ndarray, description,
                     keep_profiles: bool, backend: str,
                     emit_times=None, record_times=None):
    """Per-member :class:`ExperimentResult` + profiler construction.

    Shared tail of every vectorized engine: same rows, order and float
    ops as ``metrics.exec_intervals`` / ``exec_start_times`` over the
    kernel's task list.  ``emit_times``/``record_times``, when given,
    are per-member callables returning the flat stacks documented on
    :func:`synthesize_profiler`.
    """
    from ..experiments.harness import ExperimentResult

    n_tasks = scheduled.shape[1]
    cluster_cores = cfg.n_nodes * frontier(1).cores_per_node
    total_gpus = cfg.n_nodes * frontier(1).gpus_per_node
    results = []
    profilers: List[Optional[Profiler]] = []
    ones = np.ones(n_tasks)
    zeros = np.zeros(n_tasks)
    for m, seed in enumerate(seeds):
        starts, stops = exec_start[m], exec_stop[m]
        preamble = preambles[m]
        intervals = np.stack(
            [starts, stops, ones * description.resources.cores,
             zeros + description.resources.gpus], axis=1)
        results.append(ExperimentResult(
            config=cfg.with_seed(seed),
            n_tasks=n_tasks,
            n_done=n_tasks,
            n_failed=0,
            throughput=throughput(np.sort(starts)),
            utilization_cores=utilization_from_intervals(
                intervals, cluster_cores),
            utilization_gpus=(utilization_from_intervals(
                intervals, total_gpus, resource="gpus")
                if total_gpus else 0.0),
            makespan=float(stops.max()) - 0.0,
            startup_overheads=list(preamble.overheads),
            tasks=[],
            session=None,
        ))
        profilers.append(
            synthesize_profiler(
                preamble, scheduled[m], starts, stops, description,
                backend=backend,
                emit_times=emit_times(m) if emit_times is not None
                else None,
                record_times=record_times(m) if record_times is not None
                else None)
            if keep_profiles else None)
    return results, profilers


def run_vectorized(cfg, seeds: Sequence[int],
                   latencies: LatencyModel = FRONTIER_LATENCIES,
                   keep_profiles: bool = False,
                   progress=None):
    """Run all member seeds of ``cfg`` through a vectorized engine.

    Dispatches to the launcher-specific recurrence (srun here,
    :mod:`~repro.ensemble.vec_flux` / :mod:`~repro.ensemble.vec_dragon`
    otherwise).  Returns ``(results, profilers)``: per-seed
    :class:`~repro.experiments.harness.ExperimentResult` objects whose
    metrics are float-identical to independent
    :func:`~repro.experiments.harness.run_experiment` calls, and (when
    ``keep_profiles``) per-seed profilers whose exported traces are
    byte-identical to those runs.  Falls back by raising
    ``ValueError`` when the config does not qualify — callers check
    :func:`supports_vectorized` first.

    ``progress(tasks_done, tasks_total)`` (cohort-level counts summed
    over members) is invoked periodically during the recurrence — the
    ensemble engine wires it to the telemetry bus.
    """
    if not supports_vectorized(cfg, latencies):
        raise ValueError(f"config {cfg.exp_id!r} does not qualify for "
                         "the vectorized ensemble engine")
    if cfg.launcher == _FLUX:
        from .vec_flux import run_flux_vectorized

        return run_flux_vectorized(cfg, seeds, latencies,
                                   keep_profiles=keep_profiles,
                                   progress=progress)
    if cfg.launcher == _DRAGON:
        from .vec_dragon import run_dragon_vectorized

        return run_dragon_vectorized(cfg, seeds, latencies,
                                     keep_profiles=keep_profiles,
                                     progress=progress)
    return _run_srun_vectorized(cfg, seeds, latencies,
                                keep_profiles=keep_profiles,
                                progress=progress)


def _run_srun_vectorized(cfg, seeds: Sequence[int],
                         latencies: LatencyModel,
                         keep_profiles: bool, progress=None):
    """The original task-index lock-step engine for srun."""
    preamble = capture_preamble(cfg, latencies)
    if preamble is None:
        raise ValueError("bootstrap preamble consumed unexpected "
                         "randomness; vectorized engine unavailable")
    descriptions = _workload(cfg)
    description = descriptions[0]
    n_tasks = len(descriptions)
    duration = float(description.duration)
    cluster_cores = cfg.n_nodes * frontier(1).cores_per_node
    dispatch, ctl, setup = _member_draws(seeds, cfg, latencies, n_tasks)
    cohort_progress = None
    if progress is not None:
        n_members = len(seeds)

        def cohort_progress(i, total):
            progress(i * n_members, total * n_members)
    scheduled, exec_start, exec_stop = _cohort_recurrence(
        dispatch, ctl, setup, preamble.t_ready, duration,
        core_slots=cluster_cores, ceiling_slots=latencies.srun_ceiling,
        progress=cohort_progress)
    return assemble_results(cfg, seeds, [preamble] * len(seeds),
                            scheduled, exec_start, exec_stop,
                            description, keep_profiles, backend=_SRUN)
