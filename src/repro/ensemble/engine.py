"""Ensemble execution: many seeds of one config, cheaply.

:func:`run_ensemble` is the sweep-shaped entry point the paper's
methodology calls for — throughput/utilization *distributions* over
seeds, not a single run.  It picks the cheapest engine that preserves
the correctness contract:

``vectorized``
    The structure-of-arrays fast path in
    :mod:`repro.ensemble.vectorized` — all members advance in
    lock-stepped cohorts through the (exact) launcher pipeline
    recurrence (srun/dragon over the task index, single-instance flux
    over scheduler-cycle boundaries — see
    :mod:`repro.ensemble.vec_flux` / :mod:`repro.ensemble.vec_dragon`),
    sharing the captured bootstrap preamble, the workload descriptions
    and the platform topology.  Per-seed cost is an order of magnitude
    below a kernel run (gated by ``benchmarks/test_perf_ensemble.py``).

``replay``
    Generic fallback: one real :func:`run_experiment` per seed with
    the per-sweep setup (workload construction, config validation)
    hoisted out of the loop.  Used for launchers/workloads the
    recurrences do not cover (multi-partition hierarchies, staged or
    faulty workloads, degenerate zero-cv latencies).  Replay sweeps of
    :data:`_AUTO_REPLAY_MIN_SEEDS` or more seeds are sharded over the
    process pool automatically unless the caller pinned ``parallel``,
    so no launcher is left at 1x per-seed cost.

Either way the results are *identical* to N independent sequential
runs — same metric floats, byte-identical exported profiles.  The
determinism tests pin both engines against the real stack.

``parallel=`` composes with :mod:`repro.experiments.parallel` by
splitting the seed list into contiguous batches, one worker process
per batch, each running the same engine on its slice.  Profilers do
not survive pickling, so parallel ensembles return traces only via
``profile_dir`` (exported inside the worker), mirroring
``run_many``'s ``profile_paths`` contract.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analytics.profiler import Profiler
from ..exceptions import ConfigurationError
from ..platform.latency import FRONTIER_LATENCIES, LatencyModel
from .seeds import SeedsLike, resolve_seeds
from .vectorized import run_vectorized, supports_vectorized

#: Engine names accepted by ``run_ensemble(engine=...)``.
ENGINE_VECTORIZED = "vectorized"
ENGINE_REPLAY = "replay"
_ENGINES = (ENGINE_VECTORIZED, ENGINE_REPLAY)

#: Smallest replay sweep that auto-shards over the process pool when
#: the caller left ``parallel`` unset.  Below this the pool spawn
#: overhead dominates the handful of kernel runs it would hide.
_AUTO_REPLAY_MIN_SEEDS = 4


@dataclass
class EnsembleMember:
    """One seed's outcome inside an ensemble."""

    seed: int
    result: "ExperimentResult"  # noqa: F821 - forward ref, lazy import
    profiler: Optional[Profiler] = field(repr=False, default=None)
    #: Where the member's profile was exported (``profile_dir`` runs).
    profile_path: Optional[str] = None


@dataclass(frozen=True)
class EnsembleResult:
    """All members of one multi-seed sweep."""

    config: "ExperimentConfig"  # noqa: F821
    seeds: Tuple[int, ...]
    members: Tuple[EnsembleMember, ...]
    engine: str                 #: ``vectorized`` or ``replay``
    wall_seconds: float         #: whole-sweep wall time
    n_workers: int = 1          #: worker processes used

    @property
    def results(self) -> List["ExperimentResult"]:  # noqa: F821
        return [m.result for m in self.members]

    @property
    def wall_seconds_per_seed(self) -> float:
        return self.wall_seconds / max(len(self.members), 1)

    @property
    def provenance(self) -> Dict[str, int]:
        """How each member was obtained: counts by ``fresh`` /
        ``cached`` / ``resumed`` (same shape as
        :attr:`~repro.experiments.harness.AggregateResult.provenance`).
        """
        counts: Dict[str, int] = {}
        for member in self.members:
            kind = member.result.provenance
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def aggregate(self) -> "AggregateResult":  # noqa: F821
        """Across-seed aggregation, same formulas as ``run_repetitions``."""
        from ..experiments.harness import AggregateResult

        results = self.results
        n = len(results)
        return AggregateResult(
            config=self.config,
            n_reps=n,
            throughput_avg=sum(r.throughput.avg for r in results) / n,
            throughput_max=max(r.throughput.peak for r in results),
            utilization_avg=sum(r.utilization_cores for r in results) / n,
            makespan_avg=sum(r.makespan for r in results) / n,
            results=tuple(results),
        )


def _profile_path(profile_dir: str, seed: int) -> str:
    return os.path.join(profile_dir, f"profile-seed{seed}.jsonl")


def _select_engine(cfg, latencies: LatencyModel,
                   engine: Optional[str]) -> str:
    if engine is None:
        return (ENGINE_VECTORIZED
                if supports_vectorized(cfg, latencies) else ENGINE_REPLAY)
    if engine not in _ENGINES:
        raise ConfigurationError(
            f"unknown ensemble engine {engine!r}; pick from {_ENGINES}")
    if engine == ENGINE_VECTORIZED and not supports_vectorized(cfg,
                                                               latencies):
        raise ConfigurationError(
            f"config {cfg.exp_id!r} does not qualify for the vectorized "
            "ensemble engine (single-partition srun/flux/dragon with a "
            "uniform synthetic workload and stochastic latencies only)")
    return engine


def _run_members(cfg, seeds: Sequence[int], latencies: LatencyModel,
                 engine: str, keep_profiles: bool,
                 profile_dir: Optional[str],
                 telemetry=None, store=None) -> List[EnsembleMember]:
    """Run one batch of seeds in-process with the chosen engine.

    ``telemetry`` (a
    :class:`~repro.observability.telemetry.SweepTelemetry`) receives
    one ``member_done`` per completed seed — live for the replay
    engine, after the cohort recurrence (which feeds the intra-run
    :meth:`~repro.observability.telemetry.SweepTelemetry.cohort` hook
    instead) for the vectorized one.

    ``store`` (a :class:`~repro.store.RunStore`) memoizes at per-seed
    granularity: seeds already stored are delivered from the store
    (profile exports come from the cached bytes — identical by the
    determinism contract), and only the missing seeds reach the
    engine, which then populates the store with them.
    ``keep_profiles`` needs live profiler objects, so it bypasses the
    cache *read* (every seed simulates) while still populating.
    """
    need_records = keep_profiles or profile_dir is not None
    on_member = None
    if telemetry is not None:
        def on_member(result):
            telemetry.member_done(result.n_tasks, result.n_done,
                                  result.n_failed,
                                  provenance=result.provenance)
    cached_runs = {}
    digests = {}
    if store is not None:
        for seed in seeds:
            digests[seed] = store.digest_for(cfg, seed=seed)
        if not keep_profiles:
            for seed in seeds:
                hit = store.fetch(digests[seed])
                if hit is not None:
                    cached_runs[seed] = hit
    missing = [seed for seed in seeds if seed not in cached_runs]
    results, profilers = [], []
    notified = set()
    if missing:
        if engine == ENGINE_VECTORIZED:
            results, profilers = run_vectorized(
                cfg, missing, latencies,
                keep_profiles=need_records or store is not None,
                progress=telemetry.cohort if telemetry is not None
                else None)
            if store is not None:
                for seed, result, profiler in zip(missing, results,
                                                  profilers):
                    stored = store.put(digests[seed], cfg.with_seed(seed),
                                       result, profiler=profiler)
                    result.cache = {"digest": digests[seed],
                                    "hit": False, "stored": stored}
        else:
            results, profilers = _run_replay(cfg, missing, latencies,
                                             keep_profiles=need_records,
                                             on_member=on_member,
                                             store=store, digests=digests)
            # Replay members already streamed their telemetry live
            # (seed by seed, as each run lands); don't re-fire below.
            notified = set(missing)
    fresh = dict(zip(missing, zip(results, profilers)))
    members = []
    for seed in seeds:
        if seed in cached_runs:
            hit = cached_runs[seed]
            result = hit.to_result(cfg.with_seed(seed))
            path = None
            if profile_dir is not None:
                from ..resilience.atomic import atomic_write_bytes

                path = _profile_path(profile_dir, seed)
                atomic_write_bytes(path, hit.profile_bytes())
            members.append(EnsembleMember(seed=seed, result=result,
                                          profiler=None,
                                          profile_path=path))
        else:
            result, profiler = fresh[seed]
            path = None
            if profile_dir is not None:
                from ..analytics import save_profile

                path = _profile_path(profile_dir, seed)
                save_profile(profiler, path)
            members.append(EnsembleMember(
                seed=seed, result=result,
                profiler=profiler if keep_profiles else None,
                profile_path=path))
        if on_member is not None and seed not in notified:
            on_member(members[-1].result)
    return members


def _run_replay(cfg, seeds: Sequence[int], latencies: LatencyModel,
                keep_profiles: bool, on_member=None,
                store=None, digests=None):
    """Generic engine: sequential per-seed runs, setup hoisted.

    The workload descriptions are built once for the whole batch and
    handed to every :func:`run_experiment` call — description
    construction is seed-independent, and the per-run task objects are
    built *from* the shared descriptions, so sharing them is exactly
    the kernel's own bulk-submission idiom.

    ``store``/``digests`` populate the run store as each seed lands
    (the caller already established these seeds are misses, so no
    cache *read* happens here).  ``on_member`` fires the moment a
    seed's simulation returns — before the store write, so progress
    telemetry is never delayed behind a disk ``put``.
    """
    from ..experiments.harness import build_workload, run_experiment

    descriptions = (build_workload(cfg)
                    if cfg.workload != "impeccable" else None)
    need_session = keep_profiles or store is not None
    results, profilers = [], []
    for seed in seeds:
        member_cfg = cfg.with_seed(seed)
        result = run_experiment(member_cfg, latencies,
                                keep_session=need_session,
                                descriptions=descriptions)
        result.tasks = []
        results.append(result)
        if on_member is not None:
            on_member(result)
        profiler = None
        if need_session:
            # Session teardown bookkeeping only exists when a session
            # was actually kept; the plain fast path (no profiles, no
            # store) never materializes one.
            if result.session is not None:
                profiler = result.session.profiler
                result.session.close()
                result.session = None
            if store is not None:
                stored = store.put(digests[seed], member_cfg, result,
                                   profiler=profiler)
                result.cache = {"digest": digests[seed],
                                "hit": False, "stored": stored}
        profilers.append(profiler if keep_profiles else None)
    return results, profilers


def _run_batch(payload):
    """Worker entry point for parallel ensembles (module-level so the
    pool can pickle it).  Profilers cannot cross the process boundary;
    traces only come back via ``profile_dir`` exports."""
    cfg, seeds, latencies, engine, profile_dir, cache = payload
    from ..resilience.crash import crash_point, crash_value
    from ..store import RunStore

    # Crash-injection hook (tests only; inert without the env var):
    # ``REPRO_CRASH_AT=pool:<seed>`` kills the worker holding that
    # seed's batch, exercising the coordinator's salvage-and-resubmit.
    if crash_value("pool") is not None:
        for seed in seeds:
            crash_point("pool", float(seed))
    members = _run_members(cfg, seeds, latencies, engine,
                           keep_profiles=False, profile_dir=profile_dir,
                           store=RunStore.resolve(cache))
    for member in members:
        member.profiler = None
    return members


def _split_batches(seeds: Sequence[int], n_workers: int
                   ) -> List[List[int]]:
    """Contiguous near-equal batches, one per worker, order preserved."""
    n = len(seeds)
    base, extra = divmod(n, n_workers)
    batches, start = [], 0
    for w in range(n_workers):
        size = base + (1 if w < extra else 0)
        if size:
            batches.append(list(seeds[start:start + size]))
        start += size
    return batches


def write_ensemble_bundle(directory, result: EnsembleResult,
                          telemetry=None):
    """Write an ensemble run's observability bundle into ``directory``.

    The manifest carries a whole-sweep ``ensemble`` section — engine,
    worker count, seed list, wall time and one metrics row per member
    — alongside the usual config/versions/host blocks, so a sharded
    farm of sweeps stays auditable the same way single runs are.
    Per-seed profile exports already sitting inside the bundle
    directory (``profile_dir`` pointed there) are indexed in the
    manifest's ``files`` section as ``profile_seed<seed>``;
    ``telemetry`` records (when the sweep streamed progress) land in
    ``telemetry.jsonl``.  Returns ``{artifact name: path}``.
    """
    from ..observability.manifest import build_manifest, write_bundle

    rows = []
    for member in result.members:
        r = member.result
        rows.append({
            "seed": member.seed,
            "n_tasks": r.n_tasks,
            "n_done": r.n_done,
            "n_failed": r.n_failed,
            "throughput_avg": r.throughput.avg,
            "throughput_peak": r.throughput.peak,
            "utilization_cores": r.utilization_cores,
            "makespan": r.makespan,
        })
    manifest = build_manifest(config=result.config, extra={
        "ensemble": {
            "engine": result.engine,
            "n_workers": result.n_workers,
            "seeds": list(result.seeds),
            "wall_seconds": result.wall_seconds,
            "members": rows,
        }})
    bundle_dir = os.path.abspath(directory)
    extra_files = {}
    for member in result.members:
        path = member.profile_path
        if path is not None and \
                os.path.dirname(os.path.abspath(path)) == bundle_dir:
            extra_files[f"profile_seed{member.seed}"] = path
    return write_bundle(directory, manifest, telemetry=telemetry,
                        extra_files=extra_files or None)


def run_ensemble(cfg, seeds: Optional[SeedsLike] = None,
                 n_reps: Optional[int] = None,
                 latencies: LatencyModel = FRONTIER_LATENCIES,
                 keep_profiles: bool = False,
                 profile_dir: Optional[str] = None,
                 parallel=None,
                 engine: Optional[str] = None,
                 progress=None,
                 bundle=None,
                 cache=None) -> EnsembleResult:
    """Run ``cfg`` under many seeds and return all members.

    Parameters
    ----------
    seeds:
        Explicit seed list — a sequence of ints or a spec string like
        ``"1,2,5-20"``.  Defaults to ``cfg.seed + rep`` for
        ``n_reps`` repetitions (3 when neither is given), matching
        :func:`~repro.experiments.harness.run_repetitions`.
    keep_profiles:
        Attach each member's profiler to its
        :class:`EnsembleMember` (incompatible with ``parallel``;
        profilers do not pickle).
    profile_dir:
        Export each member's trace to
        ``<dir>/profile-seed<seed>.jsonl`` — byte-identical to the
        export of an independent ``run_experiment`` at that seed.
    parallel:
        Fan batches of seeds out over worker processes
        (``"auto"``/``0`` = one per core; an int = that many), via the
        same pool semantics as :mod:`repro.experiments.parallel`.
        When unset, replay sweeps of ``>= 4`` seeds without
        ``keep_profiles`` auto-shard (``"auto"``) — pass
        ``parallel=1`` to force a serial replay.
    engine:
        Force ``"vectorized"`` or ``"replay"``; default picks
        vectorized whenever the config qualifies.
    progress:
        Stream live telemetry records (``source: "ensemble"``): a
        callable sink, a pre-built
        :class:`~repro.observability.telemetry.TelemetryBus`, or any
        truthy value for buffered-only records.  One record per
        completed seed (rate-limited; the last is always emitted),
        plus intra-cohort task progress on the vectorized engine.
    bundle:
        Write an observability bundle into this directory via
        :func:`write_ensemble_bundle`.  Per-seed profiles are
        exported into it unless ``profile_dir`` redirects them.
    cache:
        A :class:`~repro.store.RunStore` (or a directory path for
        one) memoizing members at per-seed granularity: seeds with a
        stored run are delivered from the store without simulating
        (``result.provenance == "cached"``, profile exports
        byte-identical by the determinism contract); only the missing
        seeds reach the engine, which populates the store with them.
        ``keep_profiles`` needs live profilers, so it bypasses cache
        reads while still populating.
    """
    if seeds is not None and n_reps is not None:
        raise ConfigurationError("pass seeds= or n_reps=, not both")
    if seeds is None:
        reps = 3 if n_reps is None else n_reps
        if reps < 1:
            raise ConfigurationError("n_reps must be >= 1")
        seed_list = [cfg.seed + rep for rep in range(reps)]
    else:
        seed_list = resolve_seeds(seeds)
    chosen = _select_engine(cfg, latencies, engine)
    if (parallel is None and chosen == ENGINE_REPLAY
            and not keep_profiles
            and len(seed_list) >= _AUTO_REPLAY_MIN_SEEDS):
        # Cohort-sharded parallel replay: configs the recurrences
        # cannot cover still amortize — contiguous seed batches on the
        # process pool, reusing the salvage/resubmit machinery below.
        parallel = "auto"
    if bundle is not None and profile_dir is None:
        profile_dir = str(bundle)
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)
    telemetry = None
    if progress is not None or bundle is not None:
        # Bundle runs record telemetry even without a live sink, so
        # the bundle's ``telemetry.jsonl`` is never empty.
        from ..observability.telemetry import SweepTelemetry

        telemetry = SweepTelemetry.create("ensemble", len(seed_list),
                                          progress)

    wall0 = time.perf_counter()
    n_workers = 1
    if parallel is not None:
        from ..experiments.parallel import resolve_jobs

        n_workers = resolve_jobs(parallel, n_items=len(seed_list))
    if n_workers > 1 and len(seed_list) > 1:
        if keep_profiles:
            raise ConfigurationError(
                "keep_profiles does not compose with parallel ensembles; "
                "use profile_dir to export traces inside the workers")
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool

        from ..exceptions import HostFailureError
        from ..experiments.parallel import POOL_RETRIES, POOL_RETRY_BACKOFF

        payloads = [(cfg, batch, latencies, chosen, profile_dir, cache)
                    for batch in _split_batches(seed_list, n_workers)]
        # submit + as_completed (not pool.map): progress is reported
        # the moment each batch lands, while the result list is still
        # restored to input order below.  A pool worker killed by the
        # OS breaks the pool; landed batches are salvaged and only the
        # missing ones are resubmitted (each batch is an independent
        # seeded replay, so a re-run is bit-identical).
        batches: List[Optional[List[EnsembleMember]]] = [None] * len(payloads)

        def land(i, batch):
            batches[i] = batch
            if telemetry is not None:
                for member in batch:
                    r = member.result
                    telemetry.member_done(r.n_tasks, r.n_done, r.n_failed,
                                          provenance=r.provenance)

        pending = list(range(len(payloads)))
        retries = 0
        while pending:
            broken = None
            with ProcessPoolExecutor(max_workers=len(pending)) as pool:
                futures = {pool.submit(_run_batch, payloads[i]): i
                           for i in pending}
                for future in as_completed(futures):
                    try:
                        batch = future.result()
                    except BrokenProcessPool as exc:
                        broken = exc
                        continue
                    land(futures[future], batch)
            if broken is None:
                break
            pending = [i for i in pending if batches[i] is None]
            if not pending:
                break
            if retries >= POOL_RETRIES:
                raise HostFailureError(
                    f"ensemble pool lost workers {retries + 1} times; "
                    f"{len(pending)} of {len(payloads)} batches incomplete"
                ) from broken
            time.sleep(POOL_RETRY_BACKOFF * (2 ** retries))
            retries += 1
        members = [m for batch in batches for m in batch]
    else:
        n_workers = 1
        from ..store import RunStore

        members = _run_members(cfg, seed_list, latencies, chosen,
                               keep_profiles, profile_dir,
                               telemetry=telemetry,
                               store=RunStore.resolve(cache))
    wall = time.perf_counter() - wall0
    per_seed = wall / max(len(members), 1)
    for member in members:
        member.result.wall_seconds = per_seed
    result = EnsembleResult(
        config=cfg,
        seeds=tuple(seed_list),
        members=tuple(members),
        engine=chosen,
        wall_seconds=wall,
        n_workers=n_workers,
    )
    if bundle is not None:
        write_ensemble_bundle(
            bundle, result,
            telemetry=telemetry.records if telemetry is not None else None)
    return result
