"""Calibrated fluid (mean-value) surrogate of the simulated stack.

For interactive what-if queries — "what does srun throughput look
like at 32 nodes?", "does partitioning help at this scale?" — running
even the vectorized DES is overkill.  This module answers from the
*mean-value analysis* of the same queueing network the simulator
executes: every launch pipeline is a chain of stations, the sustained
task rate is the reciprocal of the slowest station's mean service
time, and utilization follows from Little's law over the payload
phase.

The station means come straight from
:class:`~repro.platform.latency.LatencyModel` — the surrogate has no
constants of its own — so it tracks ablations (``with_overrides``)
for free.  Where the DES's dynamics produce sub-bottleneck average
rates (Flux's bursty scheduler cycles leave lanes idle between
dispatch windows), a per-launcher calibration factor fitted against a
handful of cheap DES anchor runs (:meth:`FluidSurrogate.calibrate`)
absorbs the gap.

Accuracy contract (pinned by ``tests/ensemble/test_surrogate.py``
against the measured tables in EXPERIMENTS.md): srun and dragon
predictions land within the ±25 % band uncalibrated; Flux lands
within the factor-of-two band uncalibrated and within ±25 % on the
Fig. 5(b) sweep after a single-anchor calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..exceptions import ConfigurationError
from ..platform.latency import FRONTIER_LATENCIES, LatencyModel
from ..platform.profiles import FRONTIER_CORES_PER_NODE

#: Launchers the mean-value analysis covers.
_HYBRID = "flux+dragon"
_LAUNCHERS = ("srun", "flux", "dragon", _HYBRID)


def _payload_duration(cfg) -> float:
    """Effective per-task payload time: null tasks ignore ``duration``."""
    return (float(cfg.duration or 0.0)
            if cfg.workload in ("dummy", "mixed") else 0.0)


@dataclass(frozen=True)
class SurrogatePrediction:
    """Mean-value prediction for one configuration."""

    throughput: float          #: sustained launch rate [tasks/s]
    utilization_cores: float   #: payload-phase core utilization [0, 1]
    makespan: float            #: bootstrap + drain + last payload [s]
    bottleneck: str            #: name of the binding station


@dataclass
class FluidSurrogate:
    """Mean-value throughput/utilization model over a latency model.

    ``calibration`` maps launcher name to a multiplicative correction
    on the raw bottleneck rate (default 1.0).  Factors are either set
    directly or fitted from DES runs via :meth:`calibrate`.
    """

    latencies: LatencyModel = FRONTIER_LATENCIES
    calibration: Dict[str, float] = field(default_factory=dict)

    # -- per-launcher station analysis ----------------------------------

    def _agent_rate(self, n_nodes: int, n_instances: int) -> float:
        """The RP agent's dispatch ceiling [tasks/s]."""
        lat = self.latencies
        mean = (lat.agent_dispatch_base
                + lat.agent_dispatch_per_node * n_nodes)
        mean *= 1.0 + lat.agent_coord_per_instance * n_instances
        return 1.0 / mean

    def _srun_stations(self, cfg) -> Dict[str, float]:
        lat = self.latencies
        n = cfg.n_nodes
        ctl = (lat.srun_ctl_base + lat.srun_ctl_per_node * n
               + lat.srun_ctl_per_node15 * n ** 1.5)
        occupancy = lat.srun_step_setup + _payload_duration(cfg)
        return {
            "agent": self._agent_rate(n, 0),
            "slurmctld": 1.0 / ctl,
            "srun-ceiling": lat.srun_ceiling / occupancy,
        }

    def _flux_stations(self, n_nodes: int, n_instances: int
                       ) -> Dict[str, float]:
        lat = self.latencies
        per_instance = max(n_nodes // max(n_instances, 1), 1)
        lanes = math.ceil(per_instance ** lat.flux_lane_alpha)
        load_eff = 1.0 / (1.0 + lat.flux_load_degradation * per_instance)
        load_eff = min(max(load_eff, lat.flux_load_min), lat.flux_load_max)
        return {
            "agent": self._agent_rate(n_nodes, n_instances),
            "flux-ingest": n_instances / lat.flux_ingest_cost,
            "flux-lanes": n_instances * lanes * lat.flux_lane_rate
            * load_eff,
        }

    def _dragon_stations(self, n_nodes: int, n_instances: int,
                         func: bool) -> Dict[str, float]:
        lat = self.latencies
        if func:
            # Function tasks dispatch per instance (pool reuse).
            cost = (lat.dragon_func_cost
                    * (1.0 + lat.dragon_func_pernode_penalty * n_nodes))
            return {
                "agent": self._agent_rate(n_nodes, 0),
                "dragon-func": n_instances / cost,
            }
        # External-process spawns serialize through the centralized
        # global services regardless of instance count (Fig. 5c).
        cost = (lat.dragon_gs_exec_cost
                * (1.0 + lat.dragon_gs_pernode_penalty * n_nodes))
        return {
            "agent": self._agent_rate(n_nodes, 0),
            "dragon-gs": 1.0 / cost,
        }

    def _startup(self, cfg) -> float:
        """Mean bootstrap time before the first task dispatch [s]."""
        lat = self.latencies
        if cfg.launcher == "srun":
            return lat.agent_startup
        per_instance = max(cfg.n_nodes // max(cfg.n_partitions, 1), 1)
        log2n = math.log2(per_instance) if per_instance > 1 else 0.0
        flux = (lat.flux_startup_mean
                + lat.flux_startup_per_log2node * log2n)
        dragon = (lat.dragon_startup_mean
                  + lat.dragon_startup_per_log2node * log2n)
        backend = {"flux": flux, "dragon": dragon,
                   _HYBRID: max(flux, dragon)}[cfg.launcher]
        return lat.agent_startup + backend

    # -- public API -----------------------------------------------------

    def predict(self, cfg) -> SurrogatePrediction:
        """Mean-value prediction for ``cfg`` (synthetic workloads)."""
        if cfg.launcher not in _LAUNCHERS:
            raise ConfigurationError(
                f"no surrogate for launcher {cfg.launcher!r}")
        n, parts = cfg.n_nodes, cfg.n_partitions
        if cfg.launcher == "srun":
            stations = self._srun_stations(cfg)
        elif cfg.launcher == "flux":
            stations = self._flux_stations(n, parts)
        elif cfg.launcher == "dragon":
            stations = self._dragon_stations(
                n, parts, func=cfg.workload == "mixed")
        else:
            # Routed hybrid: exec tasks drain through the Flux half,
            # func tasks through the Dragon half, concurrently; the
            # slower half sets the drain time of its 50 % share.
            half = max(n // 2, 1)
            flux = self._flux_stations(half, parts)
            dragon = self._dragon_stations(half, parts, func=True)
            rate = 2.0 * min(min(flux.values()), min(dragon.values()))
            stations = {"hybrid-halves": rate,
                        "agent": self._agent_rate(n, 2 * parts)}
        bottleneck = min(stations, key=stations.get)
        rate = stations[bottleneck] * self.calibration.get(
            cfg.launcher, 1.0)

        duration = _payload_duration(cfg)
        total_cores = n * FRONTIER_CORES_PER_NODE
        # Little's law: concurrently busy cores = rate * holding time
        # (one core per synthetic task), capped by the allocation.
        utilization = (min(1.0, rate * duration / total_cores)
                       if duration > 0.0 else 0.0)
        from ..workloads.synthetic import task_count

        n_tasks = task_count(n, FRONTIER_CORES_PER_NODE, cfg.waves)
        makespan = self._startup(cfg) + n_tasks / rate + duration
        return SurrogatePrediction(
            throughput=rate,
            utilization_cores=utilization,
            makespan=makespan,
            bottleneck=bottleneck,
        )

    def calibrate(self, configs: Iterable, seeds: Tuple[int, ...] = (0, 1, 2),
                  latencies: Optional[LatencyModel] = None
                  ) -> "FluidSurrogate":
        """Fit per-launcher correction factors from cheap DES anchors.

        Runs each anchor config through the ensemble engine at the
        given seeds and sets ``calibration[launcher]`` to the mean
        ratio of measured average throughput to the raw (uncalibrated)
        prediction.  Pick *small* anchors — a single-node Fig. 5(b)
        point is enough to bring the whole Flux sweep into the ±25 %
        band.  Returns ``self`` for chaining.
        """
        from .engine import run_ensemble

        if latencies is not None:
            self.latencies = latencies
        ratios: Dict[str, list] = {}
        for cfg in configs:
            raw = FluidSurrogate(self.latencies).predict(cfg)
            measured = run_ensemble(
                cfg, seeds=seeds, latencies=self.latencies).aggregate()
            ratios.setdefault(cfg.launcher, []).append(
                measured.throughput_avg / raw.throughput)
        for launcher, values in ratios.items():
            self.calibration[launcher] = sum(values) / len(values)
        return self
