"""Communication-cost model for tightly coupled (MPI-style) tasks.

The paper's workload classes include multi-node MPI coupling (scoring,
ensemble simulation).  This module provides the standard alpha-beta
(latency-bandwidth) cost model with logarithmic collective algorithms,
parameterized for a Frontier-like Slingshot fabric:

* alpha (per-message latency): ~1 us on-node, ~2 us across nodes;
* beta (inverse bandwidth): ~25 GB/s per NIC.

Formulas follow the classic literature (binomial-tree broadcast,
Rabenseifner all-reduce, pairwise all-to-all).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class CommParams:
    """Fabric parameters of the alpha-beta model."""

    #: Per-hop latency within one node (shared memory) [s].
    intra_node_latency: float = 1.0e-6
    #: Per-hop latency across nodes (NIC + switch) [s].
    inter_node_latency: float = 2.0e-6
    #: Point-to-point bandwidth [bytes/s].
    bandwidth: float = 25.0e9

    def __post_init__(self) -> None:
        if self.intra_node_latency < 0 or self.inter_node_latency < 0:
            raise ConfigurationError("negative latency")
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")

    def alpha(self, spans_nodes: bool) -> float:
        """Per-message latency for the given locality."""
        return (self.inter_node_latency if spans_nodes
                else self.intra_node_latency)


#: Default Frontier-like fabric.
FRONTIER_FABRIC = CommParams()


def _check(p: int, nbytes: float) -> None:
    if p < 1:
        raise ConfigurationError(f"need >= 1 rank, got {p}")
    if nbytes < 0:
        raise ConfigurationError(f"negative message size {nbytes}")


def ptp_time(params: CommParams, nbytes: float,
             spans_nodes: bool = True) -> float:
    """Point-to-point send: alpha + n/B."""
    _check(1, nbytes)
    return params.alpha(spans_nodes) + nbytes / params.bandwidth


def barrier_time(params: CommParams, p: int,
                 spans_nodes: bool = True) -> float:
    """Dissemination barrier: ceil(log2 p) rounds of alpha."""
    _check(p, 0)
    if p == 1:
        return 0.0
    return math.ceil(math.log2(p)) * params.alpha(spans_nodes)


def bcast_time(params: CommParams, p: int, nbytes: float,
               spans_nodes: bool = True) -> float:
    """Binomial-tree broadcast: ceil(log2 p) * (alpha + n/B)."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * (params.alpha(spans_nodes) + nbytes / params.bandwidth)


def allreduce_time(params: CommParams, p: int, nbytes: float,
                   spans_nodes: bool = True) -> float:
    """Rabenseifner all-reduce:
    2 ceil(log2 p) alpha + 2 ((p-1)/p) n/B."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    alpha = params.alpha(spans_nodes)
    rounds = math.ceil(math.log2(p))
    return 2 * rounds * alpha + 2 * ((p - 1) / p) * nbytes / params.bandwidth


def alltoall_time(params: CommParams, p: int, nbytes: float,
                  spans_nodes: bool = True) -> float:
    """Pairwise exchange: (p-1) (alpha + (n/p)/B)."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    alpha = params.alpha(spans_nodes)
    return (p - 1) * (alpha + (nbytes / p) / params.bandwidth)
