"""Simulated MPI coupling layer for tightly coupled task models."""

from .communicator import SimComm
from .model import (
    CommParams,
    FRONTIER_FABRIC,
    allreduce_time,
    alltoall_time,
    barrier_time,
    bcast_time,
    ptp_time,
)

__all__ = [
    "CommParams",
    "FRONTIER_FABRIC",
    "SimComm",
    "allreduce_time",
    "alltoall_time",
    "barrier_time",
    "bcast_time",
    "ptp_time",
]
