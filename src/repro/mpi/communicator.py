"""A simulated MPI communicator over the DES kernel.

Two usage styles:

* **whole-job modelling** — one simulation process represents the
  entire MPI job; ``yield from comm.allreduce(nbytes)`` advances the
  clock by the collective's cost.  This is how application models
  derive realistic durations for tightly coupled tasks before
  submitting them as pilot tasks (see ``examples/mpi_ensemble.py``).
* **per-rank modelling** — each rank is its own simulation process
  and synchronizes through :meth:`SimComm.barrier_sync`, a real
  dissemination-barrier rendezvous (all ranks block until the last
  arrives, then all release after the barrier cost).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..exceptions import ConfigurationError
from ..sim import Event
from .model import (
    CommParams,
    FRONTIER_FABRIC,
    allreduce_time,
    alltoall_time,
    barrier_time,
    bcast_time,
    ptp_time,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class SimComm:
    """An MPI communicator of ``size`` ranks spanning ``n_nodes``."""

    def __init__(self, env: "Environment", size: int, n_nodes: int = 1,
                 params: CommParams = FRONTIER_FABRIC) -> None:
        if size < 1:
            raise ConfigurationError(f"communicator needs >= 1 rank")
        if n_nodes < 1 or n_nodes > size:
            raise ConfigurationError(
                f"{size} ranks cannot span {n_nodes} nodes")
        self.env = env
        self.size = size
        self.n_nodes = n_nodes
        self.params = params
        self._barrier_waiting = 0
        self._barrier_release: Optional[Event] = None
        self.n_collectives = 0

    @property
    def spans_nodes(self) -> bool:
        return self.n_nodes > 1

    # -- whole-job collectives (single-process modelling) -----------------

    def barrier(self):
        """Generator: advance the clock by one barrier."""
        self.n_collectives += 1
        cost = barrier_time(self.params, self.size, self.spans_nodes)
        if cost > 0:
            yield self.env.timeout(cost)

    def bcast(self, nbytes: float):
        """Generator: one broadcast of ``nbytes`` from the root."""
        self.n_collectives += 1
        cost = bcast_time(self.params, self.size, nbytes, self.spans_nodes)
        if cost > 0:
            yield self.env.timeout(cost)

    def allreduce(self, nbytes: float):
        """Generator: one all-reduce over ``nbytes`` per rank."""
        self.n_collectives += 1
        cost = allreduce_time(self.params, self.size, nbytes,
                              self.spans_nodes)
        if cost > 0:
            yield self.env.timeout(cost)

    def alltoall(self, nbytes: float):
        """Generator: one all-to-all with ``nbytes`` total per rank."""
        self.n_collectives += 1
        cost = alltoall_time(self.params, self.size, nbytes,
                             self.spans_nodes)
        if cost > 0:
            yield self.env.timeout(cost)

    def send(self, nbytes: float):
        """Generator: one point-to-point message."""
        cost = ptp_time(self.params, nbytes, self.spans_nodes)
        if cost > 0:
            yield self.env.timeout(cost)

    # -- per-rank synchronization -------------------------------------------

    def barrier_sync(self):
        """Generator used by *each rank process*: blocks until all
        ``size`` ranks arrived, then all release together after the
        barrier cost.  Reusable across iterations (generational)."""
        self._barrier_waiting += 1
        if self._barrier_release is None:
            self._barrier_release = Event(self.env)
        release = self._barrier_release
        if self._barrier_waiting == self.size:
            # Last rank in: schedule the collective release.
            self._barrier_waiting = 0
            self._barrier_release = None
            self.n_collectives += 1
            cost = barrier_time(self.params, self.size, self.spans_nodes)
            if cost > 0:
                self.env.schedule(cost, release.succeed)
            else:
                release.succeed()
        yield release

    def __repr__(self) -> str:
        return (f"<SimComm size={self.size} nodes={self.n_nodes} "
                f"collectives={self.n_collectives}>")
