"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause
while still distinguishing substrate-specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class ResourceError(ReproError):
    """Raised when a resource request cannot be satisfied or is invalid."""


class AllocationError(ResourceError):
    """Raised when an allocation request exceeds the cluster capacity."""


class SchedulingError(ReproError):
    """Raised when a scheduler receives an unsatisfiable or malformed task."""


class StateTransitionError(ReproError):
    """Raised on an illegal pilot/task state-machine transition."""


class JobspecError(ReproError):
    """Raised when a Flux jobspec fails validation."""


class LaunchError(ReproError):
    """Raised when a launcher fails to start a task."""


class SrunCeilingError(LaunchError):
    """Raised when the platform srun concurrency ceiling rejects a launch."""


class BackendError(LaunchError):
    """Raised when an execution backend (Flux instance, Dragon pool,
    srun partition) fails as a whole rather than for one task."""


class NodeFailureError(ResourceError):
    """Raised when a compute node fails under a running task or an
    operation touches a node that is DOWN."""


class TaskRetryExhausted(ReproError):
    """Raised (or recorded as a failure reason) when a task has burned
    through its per-task retries and the session retry policy."""


class RuntimeStartupError(ReproError):
    """Raised when a third-party runtime (Flux/Dragon) fails to bootstrap."""


class DragonError(ReproError):
    """Raised for failures inside the Dragon-like runtime."""


class ChannelError(DragonError):
    """Raised for misuse of shared-memory channels."""


class ConfigurationError(ReproError):
    """Raised for invalid experiment or component configuration."""


class WorkloadError(ReproError):
    """Raised when a workload description is malformed."""


class CheckpointError(ReproError):
    """Raised for unusable checkpoints: corrupt or version-skewed
    headers, config mismatches, or a resumed replay that diverged from
    the checkpointed state (non-deterministic code or code drift)."""


class StoreError(ReproError):
    """Raised for unusable run-store state: a root that is not a
    store, a digest-scheme mismatch, an ambiguous digest prefix, or a
    blob whose content no longer matches its recorded hash."""


class HostFailureError(SimulationError):
    """Raised when a *host-side* worker process (shard worker, pool
    worker) is lost — crashed pid or hung heartbeat — and supervision
    is off or its respawn budget is exhausted.  Distinct from
    :class:`NodeFailureError`, which models failures of the *simulated*
    machine."""
