"""The Dragon-like runtime: centralized global services + worker pool.

Architecture (paper Fig. 3): RP's Dragon executor pushes serialized
tasks into the runtime over a ZeroMQ pipe; the runtime's *global
services* (GS) process launches them onto pooled workers; completion
events are pushed back asynchronously over a second pipe, where a
watcher updates RP's registry.

The mechanisms behind the measured behaviour:

* **centralized GS** — a single serialized bookkeeping stage services
  every spawn.  Its per-task cost grows with the node count the
  instance spans (``dragon_gs_exec_cost * (1 + penalty * n_nodes)``),
  which reproduces Fig. 5(c): throughput flat at small scale
  (~343-380 tasks/s), degrading at 64 nodes (~204 tasks/s);
* **function fast path** — in-memory Python function tasks skip
  fork+exec and reuse pooled interpreters, with a much lower GS cost
  and near-zero node penalty — Dragon's "native mode" exploited by
  the hybrid flux+dragon configuration;
* **bootstrap** — ~9 s regardless of size (Fig. 7), guarded on the RP
  side by a startup-timeout watchdog.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..exceptions import (
    BackendError,
    DragonError,
    NodeFailureError,
    RuntimeStartupError,
)
from ..platform.cluster import Allocation
from ..platform.latency import LatencyModel
from ..sim import Environment, RngStreams
from .channels import ZmqPipe
from .pool import WorkerPool

#: Task modes accepted by the runtime.
MODE_EXEC = "executable"
MODE_FUNC = "function"


@dataclass(frozen=True)
class DragonTask:
    """A task message sent to the Dragon runtime."""

    task_id: str
    mode: str = MODE_EXEC
    duration: float = 0.0
    fail: bool = False
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in (MODE_EXEC, MODE_FUNC):
            raise DragonError(f"unknown task mode {self.mode!r}")
        if self.duration < 0:
            raise DragonError(f"negative duration {self.duration}")


@dataclass(frozen=True)
class DragonCompletion:
    """A completion event pushed back to the executor."""

    task_id: str
    ok: bool
    start_time: float
    stop_time: float
    error: str = ""
    #: True when the failure was infrastructural (worker/node/runtime
    #: death) rather than the task payload — infra failures qualify for
    #: policy-driven retries.
    infra: bool = False


@dataclass(frozen=True)
class DragonGroup:
    """A co-scheduled process group (Dragon's ProcessGroup API).

    All ranks acquire workers atomically (no partial group ever
    starts), launch together, and the group completes when every rank
    does.
    """

    group_id: str
    ranks: tuple

    def __post_init__(self) -> None:
        if not self.ranks:
            raise DragonError("a process group needs at least one rank")
        ids = [t.task_id for t in self.ranks]
        if len(set(ids)) != len(ids):
            raise DragonError("duplicate task ids in process group")

    @property
    def size(self) -> int:
        return len(self.ranks)


@dataclass(frozen=True)
class DragonGroupCompletion:
    """Completion record for a whole process group."""

    group_id: str
    ok: bool
    start_time: float
    stop_time: float
    errors: tuple = ()


class DragonState:
    INIT = "INIT"
    STARTING = "STARTING"
    READY = "READY"
    FAILED = "FAILED"
    STOPPED = "STOPPED"


class DragonRuntime:
    """One Dragon runtime instance spanning an allocation."""

    def __init__(self, env: Environment, allocation: Allocation,
                 latencies: LatencyModel, rng: RngStreams,
                 instance_id: str = "dragon", profiler=None,
                 fail_startup: bool = False, metrics=None,
                 faults=None) -> None:
        self.env = env
        self.allocation = allocation
        self.latencies = latencies
        self.rng = rng
        self.profiler = profiler
        self.instance_id = instance_id
        self.state = DragonState.INIT
        #: Optional :class:`~repro.faults.FaultModel` consulted once
        #: per launch for injected worker failures.
        self._faults = faults
        #: node index -> worker slots confiscated by fail_node.
        self._lost_by_node: Dict[int, int] = {}
        #: Fault injection: when true, bootstrap hangs forever so the
        #: executor-side watchdog can be exercised.
        self.fail_startup = fail_startup

        self.task_pipe = ZmqPipe(env, name=f"{instance_id}.tasks")
        self.completion_pipe = ZmqPipe(env, name=f"{instance_id}.events")
        self.pool = WorkerPool(env, allocation, metrics=metrics,
                               instance_id=instance_id)
        #: Optional hook invoked with the task id when its payload starts.
        self.on_task_start = None
        self._canceled: set = set()
        self._retired: set = set()
        self._run_procs: Dict[str, Any] = {}
        # Only one group may be mid-acquisition at a time; this keeps
        # multi-slot acquisition atomic (no deadlock between groups).
        from ..sim import Resource

        self._group_admission = Resource(env, capacity=1)
        self.n_groups = 0

        self.n_submitted = 0
        self.n_started = 0
        self.n_completed = 0
        self.n_failed = 0

    # -- properties -------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.allocation.n_nodes

    @property
    def is_ready(self) -> bool:
        return self.state == DragonState.READY

    # -- lifecycle --------------------------------------------------------

    def startup_delay(self) -> float:
        lat = self.latencies
        mean = (lat.dragon_startup_mean
                + lat.dragon_startup_per_log2node
                * math.log2(max(1, self.n_nodes)))
        return self.rng.lognormal_latency("dragon.startup", mean,
                                          cv=lat.dragon_startup_cv)

    def start(self):
        """Generator: bootstrap the runtime (hangs when
        ``fail_startup`` is set — callers must watchdog)."""
        if self.state != DragonState.INIT:
            raise RuntimeStartupError(
                f"{self.instance_id}: start() in state {self.state}")
        self.state = DragonState.STARTING
        if self.profiler is not None:
            self.profiler.record(self.instance_id, "backend_start",
                                 kind="dragon", nodes=self.n_nodes)
        if self.fail_startup:
            # Simulated hang: wait on an event that never triggers.
            yield self.env.event()
            return
        yield self.env.timeout(self.startup_delay())
        self.state = DragonState.READY
        self.env.process(self._gs_loop())
        if self.profiler is not None:
            self.profiler.record(self.instance_id, "backend_ready",
                                 kind="dragon", nodes=self.n_nodes,
                                 workers=self.pool.capacity)

    def shutdown(self) -> None:
        if self.state in (DragonState.STOPPED, DragonState.FAILED):
            return
        self.state = DragonState.STOPPED
        if self.profiler is not None:
            self.profiler.record(self.instance_id, "backend_stop",
                                 kind="dragon")

    def crash(self, reason: str = "runtime crashed") -> None:
        """Simulate a runtime crash: running processes die with it and
        queued tasks fail via completions."""
        if self.state in (DragonState.STOPPED, DragonState.FAILED):
            return
        self.state = DragonState.FAILED
        for proc in list(self._run_procs.values()):
            if getattr(proc, "is_alive", False):
                proc.interrupt(BackendError(reason))
        while len(self.task_pipe):
            msg = self.task_pipe._store.try_get()
            if msg is None:
                break
            ranks = msg.ranks if isinstance(msg, DragonGroup) else (msg,)
            for rank in ranks:
                self._complete(rank, ok=False, start=self.env.now,
                               error=reason, infra=True)
        if self.profiler is not None:
            self.profiler.record(self.instance_id, "backend_failed",
                                 kind="dragon", reason=reason)

    def fail_node(self, node) -> None:
        """A node of this allocation went DOWN (fault injection).

        The worker pool shrinks by the node's core count, and one
        running task per lost busy slot is killed.  Pool slots are
        anonymous at this level of the model (Dragon's local services
        do not expose a stable task->node mapping), so the victims are
        the oldest running tasks — a deterministic stand-in for
        whatever happened to live on the node.
        """
        if self.state in (DragonState.STOPPED, DragonState.FAILED):
            return
        if node.index in self._lost_by_node:
            return
        lost = self.pool.lose(node.n_cores)
        self._lost_by_node[node.index] = lost
        victims = list(self._run_procs.values())[:lost]
        for proc in victims:
            if getattr(proc, "is_alive", False):
                proc.interrupt(NodeFailureError(f"node failure: {node.name}"))

    def recover_node(self, node) -> None:
        """The node came back UP: restore its worker slots."""
        lost = self._lost_by_node.pop(node.index, 0)
        if lost and self.state not in (DragonState.STOPPED,
                                       DragonState.FAILED):
            self.pool.restore(lost)

    # -- submission ---------------------------------------------------------

    def submit(self, task: DragonTask) -> None:
        """Push a task over the zmq pipe (asynchronous)."""
        if self.state != DragonState.READY:
            raise RuntimeStartupError(
                f"{self.instance_id}: submit in state {self.state}")
        self.n_submitted += 1
        self.task_pipe.send(task)

    def submit_group(self, group: DragonGroup) -> None:
        """Launch a co-scheduled process group.

        The group's ranks start only once *all* of them hold a worker
        slot; a :class:`DragonGroupCompletion` follows the per-rank
        completions on the completion pipe.
        """
        if self.state != DragonState.READY:
            raise RuntimeStartupError(
                f"{self.instance_id}: submit_group in state {self.state}")
        if group.size > self.pool.capacity:
            raise DragonError(
                f"group {group.group_id} needs {group.size} workers; "
                f"runtime has {self.pool.capacity}")
        self.n_submitted += group.size
        self.n_groups += 1
        self.task_pipe.send(group)

    def cancel(self, task_id: str, reason: str = "canceled") -> bool:
        """Cancel a task: kill it if running, drop it if still queued.

        Returns True unless the task already completed.  A failed
        completion with the cancel reason is pushed back over the
        completion pipe either way the cancellation lands.
        """
        if task_id in self._retired:
            return False
        proc = self._run_procs.get(task_id)
        if proc is not None and getattr(proc, "is_alive", False):
            proc.interrupt(reason)
            return True
        self._canceled.add(task_id)
        return True

    # -- internals ----------------------------------------------------------

    @staticmethod
    def gs_exec_mean(latencies, n_nodes: int) -> float:
        """Mean global-services bookkeeping cost per executable task
        [s], with the per-node coordination penalty.

        A static shared with the vectorized ensemble engine
        (:mod:`repro.ensemble.vec_dragon`) so the recurrence draws
        from the same lognormal parameters as the DES kernel.
        """
        return (latencies.dragon_gs_exec_cost
                * (1.0 + latencies.dragon_gs_pernode_penalty * n_nodes))

    def _gs_cost(self, mode: str) -> float:
        lat = self.latencies
        if mode == MODE_EXEC:
            mean = self.gs_exec_mean(lat, self.n_nodes)
        else:
            mean = (lat.dragon_func_cost
                    * (1.0 + lat.dragon_func_pernode_penalty * self.n_nodes))
        return self.rng.lognormal_latency("dragon.gs", mean,
                                          cv=lat.dragon_cv)

    def _gs_loop(self):
        """Serialized global services: the centralized dispatch stage."""
        while self.state == DragonState.READY:
            item = yield self.task_pipe.recv()
            if isinstance(item, DragonGroup):
                yield from self._gs_handle_group(item)
                continue
            task = item
            if self.state != DragonState.READY:
                self._complete(task, ok=False, start=self.env.now,
                               error="runtime stopped")
                continue
            if task.task_id in self._canceled:
                self._complete(task, ok=False, start=self.env.now,
                               error="canceled before launch")
                continue
            yield self.env.timeout(self._gs_cost(task.mode))
            if self.state != DragonState.READY:
                # Crashed while this task was in GS bookkeeping.
                self._complete(task, ok=False, start=self.env.now,
                               error="runtime crashed", infra=True)
                continue
            self._run_procs[task.task_id] = self.env.process(
                self._run_task(task))

    def _gs_handle_group(self, group: DragonGroup):
        """GS bookkeeping for a group: per-rank cost, then co-launch."""
        if self.state != DragonState.READY:
            for rank in group.ranks:
                self._complete(rank, ok=False, start=self.env.now,
                               error="runtime stopped")
            return
        for rank in group.ranks:
            yield self.env.timeout(self._gs_cost(rank.mode))
        self.env.process(self._run_group(group))

    def _run_group(self, group: DragonGroup):
        """Acquire all slots atomically, run all ranks, then report."""
        with self._group_admission.request() as admission:
            yield admission
            slots = []
            for _ in group.ranks:
                slot = self.pool.acquire()
                yield slot
                slots.append(slot)
        start = self.env.now
        errors = []
        try:
            for rank in group.ranks:
                cost = self.pool.dispatch_cost(rank.mode)
                if cost > 0:
                    yield self.env.timeout(cost)
                if self.on_task_start is not None:
                    self.on_task_start(rank.task_id)
                self.n_started += 1
            # Ranks execute concurrently; the group runs as long as its
            # longest rank (they are co-scheduled, barrier at the end).
            longest = max(rank.duration for rank in group.ranks)
            if longest > 0:
                yield self.env.timeout(longest)
            for rank in group.ranks:
                if rank.fail:
                    errors.append(f"{rank.task_id}: task payload failed")
                    self._complete(rank, ok=False, start=start,
                                   error="task payload failed")
                else:
                    self._complete(rank, ok=True, start=start)
        finally:
            for slot in slots:
                slot.release()
        self.completion_pipe.send(DragonGroupCompletion(
            group_id=group.group_id, ok=not errors, start_time=start,
            stop_time=self.env.now, errors=tuple(errors)))

    def _run_task(self, task: DragonTask):
        from ..sim import Interrupt

        slot = self.pool.acquire()
        yield slot
        start = self.env.now
        try:
            if self._faults is not None:
                fault = self._faults.launch_outcome("dragon")
                if fault is not None:
                    if fault.delay > 0:
                        yield self.env.timeout(fault.delay)
                    self._complete(task, ok=False, start=start,
                                   error=fault.reason, infra=True)
                    return
            cost = self.pool.dispatch_cost(task.mode)
            if cost > 0:
                yield self.env.timeout(cost)
            if self.on_task_start is not None:
                self.on_task_start(task.task_id)
            start = self.env.now
            self.n_started += 1
            if task.fail:
                self._complete(task, ok=False, start=start,
                               error="task payload failed")
                return
            if task.duration > 0:
                yield self.env.timeout(task.duration)
            self._complete(task, ok=True, start=start)
        except Interrupt as interrupt:
            cause = interrupt.cause
            infra = isinstance(cause, (NodeFailureError, BackendError))
            self._complete(task, ok=False, start=start,
                           error=str(cause or "canceled"), infra=infra)
        finally:
            self._run_procs.pop(task.task_id, None)
            slot.release()

    def _complete(self, task: DragonTask, ok: bool, start: float,
                  error: str = "", infra: bool = False) -> None:
        self._retired.add(task.task_id)
        if ok:
            self.n_completed += 1
        else:
            self.n_failed += 1
        self.completion_pipe.send(DragonCompletion(
            task_id=task.task_id, ok=ok, start_time=start,
            stop_time=self.env.now, error=error, infra=infra))
