"""Dragon-like high-throughput task runtime system.

Models Dragon's centralized global services, per-node worker pools
with warm function dispatch, shared-memory channels, and the ZeroMQ
pipe pair connecting it to RP's Dragon executor.
"""

from .channels import ShmemChannel, ZmqPipe
from .pool import WorkerPool
from .runtime import (
    MODE_EXEC,
    MODE_FUNC,
    DragonCompletion,
    DragonGroup,
    DragonGroupCompletion,
    DragonRuntime,
    DragonState,
    DragonTask,
)

__all__ = [
    "DragonCompletion",
    "DragonGroup",
    "DragonGroupCompletion",
    "DragonRuntime",
    "DragonState",
    "DragonTask",
    "MODE_EXEC",
    "MODE_FUNC",
    "ShmemChannel",
    "WorkerPool",
    "ZmqPipe",
]
