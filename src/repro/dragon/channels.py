"""Communication channels of the Dragon-like runtime.

Two channel flavours appear in the paper's architecture (Fig. 3):

* :class:`ZmqPipe` — the ZeroMQ pipe pair between RP's Dragon
  executor and the Dragon runtime (task submissions one way,
  completion events the other);
* :class:`ShmemChannel` — Dragon's multi-node shared-memory queue
  used by data-coupled *application* tasks that load the Dragon
  module.

Both are FIFO with a per-hop delivery latency; the shmem hop is ~20 µs
(intra-allocation shared memory) while the zmq hop models local IPC.
Bounded shmem channels exert backpressure by blocking the producer,
matching Dragon's fixed-size channel blocks.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from ..exceptions import ChannelError
from ..sim import Environment, Event, Store

#: Default per-message latency of the executor <-> Dragon ZMQ hop [s].
ZMQ_HOP_LATENCY = 0.2e-3


class ZmqPipe:
    """Unidirectional FIFO pipe with per-message delivery latency."""

    def __init__(self, env: Environment, latency: float = ZMQ_HOP_LATENCY,
                 name: str = "pipe") -> None:
        self.env = env
        self.latency = latency
        self.name = name
        self._store = Store(env)
        self.n_sent = 0
        self.n_received = 0

    def send(self, message: Any) -> None:
        """Enqueue ``message``; it arrives ``latency`` seconds later."""
        self.n_sent += 1
        if self.latency > 0:
            self.env.schedule(self.latency, self._store.put, message)
        else:
            self._store.put(message)

    def recv(self) -> Event:
        """Event yielding the next message (blocks while empty)."""
        self.n_received += 1
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)


class ShmemChannel:
    """Bounded multi-reader/multi-writer shared-memory FIFO.

    ``put`` is a generator (yields while the channel is full);
    ``get`` returns an event.  Capacity models Dragon's fixed channel
    block count.
    """

    def __init__(self, env: Environment, capacity: int = 1024,
                 hop_latency: float = 20e-6, name: str = "shmem") -> None:
        if capacity < 1:
            raise ChannelError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.hop_latency = hop_latency
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()
        self._closed = False
        self.n_puts = 0
        self.n_gets = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the channel; pending and future gets fail."""
        self._closed = True
        while self._getters:
            self._getters.popleft().fail(ChannelError(f"{self.name} closed"))
        while self._putters:
            self._putters.popleft().fail(ChannelError(f"{self.name} closed"))

    def put(self, item: Any):
        """Generator: deposit ``item``, blocking while full."""
        if self._closed:
            raise ChannelError(f"{self.name} is closed")
        while len(self._items) >= self.capacity:
            waiter = Event(self.env)
            self._putters.append(waiter)
            yield waiter
            if self._closed:
                raise ChannelError(f"{self.name} is closed")
        if self.hop_latency > 0:
            yield self.env.timeout(self.hop_latency)
        self.n_puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event yielding the oldest item (blocks while empty)."""
        if self._closed and not self._items:
            raise ChannelError(f"{self.name} is closed")
        ev = Event(self.env)
        if self._items:
            item = self._items.popleft()
            ev.succeed(item)
            self.n_gets += 1
            if self._putters:
                self._putters.popleft().succeed()
        else:
            self._getters.append(ev)
            self.n_gets += 1
        return ev

    def __len__(self) -> int:
        return len(self._items)
