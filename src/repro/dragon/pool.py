"""Dragon worker pool: per-node local services and pooled processes.

Dragon launches tasks through per-node *local services* daemons.  For
in-memory **function** tasks it reuses pooled worker processes (warm
dispatch — no exec), while **executable** tasks always fork+exec a
fresh process.  The pool tracks warm/cold statistics so tests and
benchmarks can verify that pooling actually happens.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..exceptions import DragonError
from ..platform.cluster import Allocation
from ..sim import Environment, Resource

#: Dispatch cost of reusing a pooled worker process (no exec) [s].
WARM_START_COST = 0.5e-3
#: Dispatch cost of a fresh fork+exec — every executable task pays it [s].
COLD_START_COST = 15e-3


class WorkerPool:
    """One worker slot per core of the backing allocation."""

    def __init__(self, env: Environment, allocation: Allocation,
                 warm_start_cost: float = WARM_START_COST,
                 cold_start_cost: float = COLD_START_COST,
                 metrics=None, instance_id: str = "dragon") -> None:
        self.env = env
        self.allocation = allocation
        self.warm_start_cost = warm_start_cost
        self.cold_start_cost = cold_start_cost
        self._slots = Resource(env, capacity=max(1, allocation.total_cores))
        #: How many pooled worker processes exist already (warm).
        self._warm_workers = 0
        self.n_warm_dispatch = 0
        self.n_cold_dispatch = 0
        # Optional observability: warm/cold dispatch split + busy-slot
        # watermark, labeled by owning runtime instance.
        self._m_dispatch = self._m_busy = None
        if metrics is not None:
            fam = metrics.counter(
                "repro_dragon_dispatch_total",
                "pool dispatches by temperature",
                labels=("instance", "kind"))
            self._m_dispatch = (fam.labels(instance_id, "warm"),
                                fam.labels(instance_id, "cold"))
            self._m_busy = metrics.gauge(
                "repro_dragon_pool_busy", "busy worker slots",
                labels=("instance",)).labels(instance_id)

    @property
    def capacity(self) -> int:
        return self._slots.capacity

    @property
    def busy(self) -> int:
        return self._slots.count

    @property
    def idle(self) -> int:
        return self.capacity - self.busy

    def acquire(self):
        """Request one worker slot (an event; FIFO when contended)."""
        return self._slots.request()

    def lose(self, n_slots: int) -> int:
        """Shrink the pool by up to ``n_slots`` (a node died).

        Returns how many slots were actually removed.  Busy slots are
        not revoked here — their releases simply stop re-granting while
        the pool is over capacity (see ``Resource.set_capacity``).
        """
        take = max(0, min(n_slots, self._slots.capacity))
        if take:
            self._slots.set_capacity(self._slots.capacity - take)
        return take

    def restore(self, n_slots: int) -> None:
        """Grow the pool back by ``n_slots`` (a node recovered)."""
        if n_slots > 0:
            self._slots.set_capacity(self._slots.capacity + n_slots)

    def dispatch_cost(self, mode: str) -> float:
        """Local dispatch cost for a task of the given mode, updating
        warm/cold pool statistics.

        Function tasks reuse pooled interpreters once they exist;
        executables always pay the cold fork+exec cost.
        """
        if self._m_busy is not None:
            self._m_busy.set(self.busy)
        if mode == "function":
            if self._warm_workers > self.busy - 1:
                self.n_warm_dispatch += 1
                if self._m_dispatch is not None:
                    self._m_dispatch[0].inc()
                return self.warm_start_cost
            self._warm_workers += 1
            self.n_cold_dispatch += 1
            if self._m_dispatch is not None:
                self._m_dispatch[1].inc()
            return self.cold_start_cost
        if mode == "executable":
            self.n_cold_dispatch += 1
            if self._m_dispatch is not None:
                self._m_dispatch[1].inc()
            return self.cold_start_cost
        raise DragonError(f"unknown task mode {mode!r}")
