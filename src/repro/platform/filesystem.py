"""Shared parallel filesystem model (Lustre/Orion-like).

RP's staging subsystem moves task input/output through the site
filesystem; on a real machine concurrent transfers share aggregate
bandwidth.  The model: each transfer takes a stream slot (bounded
stream parallelism) and progresses at ``aggregate_bandwidth`` divided
by the number of streams active when it starts — a discrete
approximation of processor-sharing that preserves the property the
staging experiments need: *many concurrent stagers slow each other
down*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..exceptions import ConfigurationError
from ..sim import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Environment


class SharedFilesystem:
    """Site filesystem shared by all staging activity of a session."""

    def __init__(self, env: "Environment",
                 aggregate_bandwidth: float = 10.0e9,
                 access_latency: float = 2.0e-3,
                 max_streams: int = 64) -> None:
        if aggregate_bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if access_latency < 0:
            raise ConfigurationError("negative access latency")
        if max_streams < 1:
            raise ConfigurationError("need >= 1 stream")
        self.env = env
        self.aggregate_bandwidth = aggregate_bandwidth
        self.access_latency = access_latency
        self._streams = Resource(env, capacity=max_streams)
        self.n_transfers = 0
        self.bytes_moved = 0.0

    @property
    def active_streams(self) -> int:
        return self._streams.count

    @property
    def max_streams(self) -> int:
        return self._streams.capacity

    def transfer_time(self, nbytes: float, concurrency: int) -> float:
        """Deterministic transfer time at a given concurrency level."""
        if nbytes < 0:
            raise ConfigurationError(f"negative transfer size {nbytes}")
        share = self.aggregate_bandwidth / max(1, concurrency)
        return self.access_latency + nbytes / share

    def transfer(self, nbytes: float):
        """Generator: move ``nbytes`` through the filesystem."""
        with self._streams.request() as stream:
            yield stream
            cost = self.transfer_time(nbytes, self.active_streams)
            if cost > 0:
                yield self.env.timeout(cost)
        self.n_transfers += 1
        self.bytes_moved += nbytes
