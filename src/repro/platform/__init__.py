"""Simulated HPC platform: nodes, clusters, allocations, latency models.

This package substitutes for the paper's physical substrate (Frontier).
It models exactly what the experiments exercise — resource counting,
slot-level placement, node partitioning, and the timing behaviour of
the system software (see :mod:`repro.platform.latency` for the
calibration).
"""

from .cluster import Allocation, Cluster
from .filesystem import SharedFilesystem
from .latency import DETERMINISTIC_LATENCIES, FRONTIER_LATENCIES, LatencyModel
from .node import Node, NodeHealth, Placement
from .profiles import (
    FRONTIER_CORES_PER_NODE,
    FRONTIER_GPUS_PER_NODE,
    FRONTIER_NODES,
    frontier,
    frontier_latencies,
    generic,
)
from .spec import ResourceSpec

__all__ = [
    "Allocation",
    "Cluster",
    "DETERMINISTIC_LATENCIES",
    "FRONTIER_CORES_PER_NODE",
    "FRONTIER_GPUS_PER_NODE",
    "FRONTIER_LATENCIES",
    "FRONTIER_NODES",
    "LatencyModel",
    "Node",
    "NodeHealth",
    "Placement",
    "ResourceSpec",
    "SharedFilesystem",
    "frontier",
    "frontier_latencies",
    "generic",
]
