"""Compute-node model with explicit core and GPU slot maps.

Slot-level bookkeeping (rather than mere counters) lets the property
tests assert the strongest possible invariant: *no slot is ever held
by two placements at once*, exactly the guarantee a real node-level
resource manager provides.
"""

from __future__ import annotations

import enum
from typing import List, NamedTuple, Tuple

from ..exceptions import ResourceError


class NodeHealth(enum.Enum):
    """Health of one compute node.

    ``UP`` serves placements normally.  ``DRAINING`` accepts no new
    placements but lets running work finish (free slots are
    confiscated, held slots stay held).  ``DOWN`` additionally means
    running work on the node has been killed by the failure.
    """

    UP = "up"
    DRAINING = "draining"
    DOWN = "down"


class Placement(NamedTuple):
    """A set of slots handed out on one node.

    Placements are returned by :meth:`Node.allocate` and must be given
    back via :meth:`Node.release`.  One is created per task placement,
    so it is a named tuple (cheap construction) rather than a frozen
    dataclass.
    """

    node_index: int
    core_slots: Tuple[int, ...]
    gpu_slots: Tuple[int, ...]

    @property
    def cores(self) -> int:
        return len(self.core_slots)

    @property
    def gpus(self) -> int:
        return len(self.gpu_slots)


class Node:
    """One compute node with ``n_cores`` CPU cores and ``n_gpus`` GPUs."""

    def __init__(self, index: int, n_cores: int, n_gpus: int = 0,
                 mem_gb: float = 512.0, name: str = "") -> None:
        if n_cores < 1:
            raise ResourceError(f"node needs >=1 core, got {n_cores}")
        if n_gpus < 0:
            raise ResourceError(f"negative gpu count {n_gpus}")
        self.index = index
        self.name = name or f"node{index:05d}"
        self.n_cores = n_cores
        self.n_gpus = n_gpus
        self.mem_gb = mem_gb
        self._free_cores: List[int] = list(range(n_cores))
        self._free_gpus: List[int] = list(range(n_gpus))
        self._held_cores: set = set()
        self._held_gpus: set = set()
        self.health = NodeHealth.UP
        # Slots confiscated while unhealthy.  Keeping them out of the
        # free lists means a DOWN/DRAINING node looks fully busy to the
        # placement hot path — ``try_place`` and the allocation scan
        # hint skip it with no health check of their own.
        self._lost_cores: List[int] = []
        self._lost_gpus: List[int] = []
        #: Allocations watching this node's free counts.  Every
        #: allocate/release pushes the delta to all watchers, keeping
        #: each allocation's aggregate free-core/GPU counters exact in
        #: O(#watchers) — instead of O(n_nodes) re-summation per query.
        #: A node is typically watched by the pilot allocation plus one
        #: partition (and rarely a nested instance), so this is cheap.
        self._watchers: list = []

    # -- capacity ----------------------------------------------------------

    @property
    def free_cores(self) -> int:
        return len(self._free_cores)

    @property
    def free_gpus(self) -> int:
        return len(self._free_gpus)

    @property
    def busy_cores(self) -> int:
        return self.n_cores - self.free_cores

    @property
    def is_idle(self) -> bool:
        return self.free_cores == self.n_cores and self.free_gpus == self.n_gpus

    @property
    def is_up(self) -> bool:
        return self.health is NodeHealth.UP

    def can_fit(self, cores: int, gpus: int = 0) -> bool:
        """Could ``allocate(cores, gpus)`` succeed right now?"""
        return cores <= self.free_cores and gpus <= self.free_gpus

    # -- allocation --------------------------------------------------------

    def allocate(self, cores: int, gpus: int = 0) -> Placement:
        """Claim ``cores`` core slots and ``gpus`` GPU slots.

        Raises :class:`ResourceError` when insufficient slots are free.
        """
        if cores < 0 or gpus < 0:
            raise ResourceError("negative allocation request")
        free_cores = self._free_cores
        free_gpus = self._free_gpus
        if cores > len(free_cores) or gpus > len(free_gpus):
            raise ResourceError(
                f"{self.name}: cannot allocate {cores}c/{gpus}g "
                f"(free {self.free_cores}c/{self.free_gpus}g)"
            )
        core_slots = tuple(free_cores[:cores])
        del free_cores[:cores]
        gpu_slots = tuple(free_gpus[:gpus])
        del free_gpus[:gpus]
        self._held_cores.update(core_slots)
        self._held_gpus.update(gpu_slots)
        for watcher in self._watchers:
            watcher._on_node_delta(-cores, -gpus, self.index)
        return Placement(self.index, core_slots, gpu_slots)

    def release(self, placement: Placement) -> None:
        """Return a placement's slots.  Double-free raises."""
        if placement.node_index != self.index:
            raise ResourceError(
                f"placement for node {placement.node_index} released on "
                f"node {self.index}"
            )
        held_cores = self._held_cores
        # Slots released on an unhealthy node are confiscated rather
        # than freed: the capacity is gone until the node recovers, so
        # no positive delta reaches the watchers and the node keeps
        # reading as fully busy to the placement scan.
        free_cores = self._free_cores if self.health is NodeHealth.UP \
            else self._lost_cores
        for slot in placement.core_slots:
            try:
                held_cores.remove(slot)
            except KeyError:
                raise ResourceError(f"{self.name}: core {slot} double-freed")
            free_cores.append(slot)
        held_gpus = self._held_gpus
        free_gpus = self._free_gpus if self.health is NodeHealth.UP \
            else self._lost_gpus
        for slot in placement.gpu_slots:
            try:
                held_gpus.remove(slot)
            except KeyError:
                raise ResourceError(f"{self.name}: gpu {slot} double-freed")
            free_gpus.append(slot)
        if self.health is NodeHealth.UP:
            for watcher in self._watchers:
                watcher._on_node_delta(len(placement.core_slots),
                                       len(placement.gpu_slots), self.index)

    # -- health ------------------------------------------------------------

    def drain(self) -> bool:
        """Stop serving new placements; running work may finish.

        Confiscates the currently-free slots (pushing the negative
        delta to watchers so their free counts stay exact) and marks
        the node ``DRAINING``.  Returns ``False`` when the node was
        already unhealthy.
        """
        if self.health is not NodeHealth.UP:
            return False
        self.health = NodeHealth.DRAINING
        self._confiscate_free()
        return True

    def fail(self) -> bool:
        """Take the node ``DOWN``.

        Free slots are confiscated; held slots stay held until their
        placements are released (the owning executors are responsible
        for killing the tasks and releasing — released slots then land
        in the lost pool).  Watchers are told about the capacity loss
        via ``_on_node_down`` so aggregate *usable* capacity tracks the
        failure.  Returns ``False`` when already DOWN.
        """
        if self.health is NodeHealth.DOWN:
            return False
        was_up = self.health is NodeHealth.UP
        self.health = NodeHealth.DOWN
        if was_up:
            self._confiscate_free()
        for watcher in self._watchers:
            watcher._on_node_down(self.index, self.n_cores, self.n_gpus)
        return True

    def recover(self) -> bool:
        """Bring the node back ``UP``, restoring confiscated slots."""
        if self.health is NodeHealth.UP:
            return False
        was_down = self.health is NodeHealth.DOWN
        self.health = NodeHealth.UP
        cores = len(self._lost_cores)
        gpus = len(self._lost_gpus)
        self._free_cores.extend(sorted(self._lost_cores))
        self._free_gpus.extend(sorted(self._lost_gpus))
        self._lost_cores.clear()
        self._lost_gpus.clear()
        if was_down:
            for watcher in self._watchers:
                watcher._on_node_up(self.index, self.n_cores, self.n_gpus)
        if cores or gpus:
            for watcher in self._watchers:
                watcher._on_node_delta(cores, gpus, self.index)
        return True

    def _confiscate_free(self) -> None:
        cores = len(self._free_cores)
        gpus = len(self._free_gpus)
        self._lost_cores.extend(self._free_cores)
        self._lost_gpus.extend(self._free_gpus)
        self._free_cores.clear()
        self._free_gpus.clear()
        if cores or gpus:
            for watcher in self._watchers:
                watcher._on_node_delta(-cores, -gpus, self.index)

    def __repr__(self) -> str:
        return (
            f"<Node {self.name} cores={self.free_cores}/{self.n_cores} "
            f"gpus={self.free_gpus}/{self.n_gpus}>"
        )
