"""Calibrated latency / service-time model for the simulated substrate.

Every timing constant that makes the simulated Frontier-like stack
land in the paper's measured ranges lives here, in one frozen
dataclass, so that (a) calibration is reviewable in one place and
(b) ablation benchmarks can swap individual constants.

Calibration targets (from the paper, §4):

========================  =====================================================
srun                      152 tasks/s at 1 node, 61 tasks/s at 4 nodes,
                          degrading further with scale; hard ceiling of 112
                          concurrent sruns -> 50 % utilization on 4 nodes.
flux (single instance)    ~28 tasks/s at 1 node growing to ~300 tasks/s
                          average at 1024 nodes; peak 744 tasks/s; strong
                          run-to-run variability.
flux (n instances)        throughput grows with instance count, diminishing
                          returns at scale; max ~930 tasks/s; utilization
                          >=94.5 % up to 64 nodes, ~75 % at 1024 nodes /
                          16 instances.
dragon (exec mode)        ~343-380 tasks/s at 4-16 nodes dropping to
                          ~204 tasks/s at 64 nodes (centralized); peak 622.
flux+dragon (hybrid)      peak >1500 tasks/s (RP task-management bound),
                          utilization 99.6-100 %.
startup overhead          Flux instance ~20 s, Dragon instance ~9 s,
                          roughly independent of instance size.
========================  =====================================================

The derivations for each constant are given inline.  These model the
*mechanisms* the paper names (controller serialization, concurrency
ceilings, TBON spawn parallelism, centralized global services, agent
dispatch costs); the constants set their magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class LatencyModel:
    """All timing constants of the simulated platform + middleware."""

    # ---- Slurm / srun ----------------------------------------------------
    #: Platform-wide cap on concurrently active srun invocations
    #: (Frontier policy; the paper measures exactly 112).
    srun_ceiling: int = 112
    #: slurmctld per-launch RPC service time, fixed part [s].
    #: 1/(base + per_node*1) = 152/s at 1 node.
    srun_ctl_base: float = 3.2e-3
    #: slurmctld per-launch service time, per-allocated-node part [s].
    #: 1/(base + per_node*4) ~= 61/s at 4 nodes; throughput keeps
    #: degrading with allocation size (Fig. 5a).
    srun_ctl_per_node: float = 3.35e-3
    #: Superlinear controller-contention term [s * nodes^-1.5]: srun's
    #: credential/step bookkeeping degrades faster than linearly on very
    #: large allocations (the paper's "erratic" srun behaviour and the
    #: 44,000 s IMPECCABLE makespan at 1024 nodes).
    srun_ctl_per_node15: float = 3.0e-4
    #: Local step setup once the controller has dispatched [s].
    srun_step_setup: float = 0.10
    #: Coefficient of variation of srun service times.
    srun_cv: float = 0.30

    # ---- RADICAL-Pilot agent ----------------------------------------------
    #: Agent task-management cost per task, fixed part [s].  The
    #: reciprocal (~1600/s with per-node part at 64 nodes) is the "upper
    #: bound of RP's task management subsystem" the paper reports as the
    #: 1547 tasks/s hybrid peak.
    agent_dispatch_base: float = 0.30e-3
    #: Agent bookkeeping cost per task per allocated node [s]: state
    #: events, registry updates and scheduler bitmap scans grow with the
    #: allocation.  Yields the flux_n saturation at 1024 nodes
    #: (~230 tasks/s) seen in Fig. 6.
    agent_dispatch_per_node: float = 1.0e-6
    #: Cross-partition coordination penalty: the effective agent dispatch
    #: cost is multiplied by (1 + coord * n_flux_instances), modelling the
    #: paper's "overhead of managing many Flux instances" (§4.1.3).
    #: With 16 instances on 1024 nodes this caps the agent feed near
    #: ~370 tasks/s (Fig. 6 measures 233 tasks/s there), while still
    #: letting the 64-node hybrid configuration burst past 1,400 tasks/s
    #: (the paper's 1,547 tasks/s peak).
    agent_coord_per_instance: float = 0.05
    agent_cv: float = 0.25
    #: Agent bootstrap time before any backend starts [s].
    agent_startup: float = 2.0

    # ---- Flux ---------------------------------------------------------------
    #: Mean instance bootstrap time [s] (Fig. 7: ~20 s, flat in size).
    flux_startup_mean: float = 20.0
    flux_startup_cv: float = 0.10
    #: Weak size dependence of startup (log term), [s] per log2(nodes).
    flux_startup_per_log2node: float = 0.4
    #: Central ingest+sched service per job [s] -> single-instance hard
    #: cap ~770/s (observed peak 744).
    flux_ingest_cost: float = 1.3e-3
    #: Per-dispatch-lane spawn rate [jobs/s].  One lane corresponds to a
    #: subtree of the TBON overlay; a 1-node instance has one lane
    #: -> ~28 tasks/s.
    flux_lane_rate: float = 28.0
    #: Lane-count scaling exponent: lanes(n) = ceil(n**alpha).  0.47
    #: gives a 1024-node instance ~26 lanes -> ~730 tasks/s burst
    #: capability (observed single-instance peak: 744 tasks/s), while
    #: the agent feed rate bounds the *average* near ~300 tasks/s.
    flux_lane_alpha: float = 0.47
    #: Per-run, per-instance background-load efficiency factor applied to
    #: the lane rate — the paper's "sensitivity of Flux performance to
    #: background system load".  Drawn lognormally with mean
    #: ``1 / (1 + degradation * n_nodes)`` (contention grows with the
    #: resource footprint), coefficient of variation ``cv`` (the
    #: run-to-run variability in Fig. 5b), clipped to [min, max].
    flux_load_degradation: float = 0.0011
    flux_load_cv: float = 0.35
    flux_load_min: float = 0.10
    flux_load_max: float = 1.0
    #: Mean scheduler-loop cycle gap [s] between dispatch bursts.
    flux_sched_cycle: float = 0.15
    #: Heavy-tailed cycle jitter (cv) — source of the paper's "substantial
    #: throughput variability across repetitions".
    flux_cycle_cv: float = 1.2
    flux_spawn_cv: float = 0.35
    # ---- Dragon ----------------------------------------------------------------
    #: Mean runtime bootstrap time [s] (Fig. 7: ~9 s, flat in size).
    dragon_startup_mean: float = 9.0
    dragon_startup_cv: float = 0.10
    dragon_startup_per_log2node: float = 0.25
    #: Startup watchdog timeout [s] (RP aborts the backend beyond this).
    dragon_startup_timeout: float = 60.0
    #: Global-services cost per *external process* spawn [s] -> ~380/s
    #: for a small centralized instance.
    dragon_gs_exec_cost: float = 2.63e-3
    #: Per-node penalty factor on GS cost: cost*(1+penalty*n_nodes).
    #: 0.0135 -> ~204/s at 64 nodes (Fig. 5c).
    dragon_gs_pernode_penalty: float = 0.0135
    #: Per-instance dispatch cost for in-memory *function* tasks [s]
    #: (pool reuse, no exec) -> ~1000/s per instance.
    dragon_func_cost: float = 1.0e-3
    #: Function-path per-node penalty (much weaker than exec path).
    dragon_func_pernode_penalty: float = 0.002
    dragon_cv: float = 0.35
    #: Mean service time of a shared-memory channel hop [s].
    dragon_channel_hop: float = 20e-6

    # ---- PRRTE (DVM) -------------------------------------------------------
    #: Mean DVM bootstrap time [s] — lighter than Flux (no scheduler).
    prrte_startup_mean: float = 5.0
    prrte_startup_cv: float = 0.10
    prrte_startup_per_log2node: float = 0.2
    #: Serialized DVM-controller cost per task launch [s] -> ~140/s,
    #: between srun's launch path and a partitioned Flux deployment.
    prrte_launch_cost: float = 7.0e-3
    #: Mild controller degradation with DVM size [s/node].
    prrte_launch_per_node: float = 2.0e-5
    prrte_cv: float = 0.30

    # ---- generic task lifecycle --------------------------------------------
    #: Input/output staging cost per task with staging directives [s].
    staging_cost_per_item: float = 5e-3
    staging_cv: float = 0.5
    #: Task epilogue (rank teardown, exit collection) [s].
    task_epilogue: float = 1e-3

    def with_overrides(self, **kwargs: float) -> "LatencyModel":
        """Return a copy with individual constants replaced (ablations)."""
        return replace(self, **kwargs)


#: The default calibration, targeting the paper's Frontier measurements.
FRONTIER_LATENCIES = LatencyModel()

#: An idealized zero-noise model for unit tests that assert exact timings.
DETERMINISTIC_LATENCIES = LatencyModel(
    srun_cv=0.0, agent_cv=0.0, flux_startup_cv=0.0, flux_cycle_cv=0.0,
    flux_spawn_cv=0.0, flux_load_cv=0.0, flux_load_degradation=0.0,
    dragon_startup_cv=0.0, dragon_cv=0.0, prrte_startup_cv=0.0,
    prrte_cv=0.0, staging_cv=0.0,
)
