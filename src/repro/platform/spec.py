"""Resource requirement specifications.

A :class:`ResourceSpec` states what a single task needs from the
machine: CPU cores, GPUs, memory, and optionally whole-node
granularity for tightly coupled (MPI-like) tasks.  Specs are value
objects — hashable, comparable and validated at construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ResourceError


@dataclass(frozen=True)
class ResourceSpec:
    """Per-task resource requirement.

    Parameters
    ----------
    cores:
        Total number of CPU cores required (across all nodes).
    gpus:
        Total number of GPUs required.
    mem_gb:
        Memory requirement in GiB (0 means "don't care").
    exclusive_nodes:
        When true, the task must receive whole nodes (MPI-style
        co-scheduling); cores/gpus are then rounded up to node
        multiples by the scheduler.
    """

    cores: int = 1
    gpus: int = 0
    mem_gb: float = 0.0
    exclusive_nodes: bool = False

    def __post_init__(self) -> None:
        if self.cores < 0 or self.gpus < 0:
            raise ResourceError(
                f"negative resource request: cores={self.cores} gpus={self.gpus}"
            )
        if self.cores == 0 and self.gpus == 0:
            raise ResourceError("a task must request at least one core or gpu")
        if self.mem_gb < 0:
            raise ResourceError(f"negative memory request: {self.mem_gb}")

    def nodes_required(self, cores_per_node: int, gpus_per_node: int) -> int:
        """Minimum number of nodes that can hold this spec."""
        need = 1
        if self.cores:
            need = max(need, -(-self.cores // cores_per_node))
        if self.gpus:
            if gpus_per_node == 0:
                raise ResourceError("gpus requested on a gpu-less node type")
            need = max(need, -(-self.gpus // gpus_per_node))
        return need

    def fits_node(self, cores_per_node: int, gpus_per_node: int) -> bool:
        """True when the whole spec fits on one node."""
        return self.cores <= cores_per_node and self.gpus <= gpus_per_node
