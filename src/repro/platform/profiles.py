"""Named machine profiles.

The experiments all run on a Frontier-like profile: the paper's 4-node
srun experiment reports 224 cores at SMT=1, i.e. **56 usable cores per
node** (64 physical minus 8 reserved for the OS/low-noise cores), and
8 GPUs (GCDs) per node.
"""

from __future__ import annotations

from .cluster import Cluster
from .latency import FRONTIER_LATENCIES, LatencyModel

#: Usable cores per Frontier node at SMT=1 (224 cores / 4 nodes in §4.1.1).
FRONTIER_CORES_PER_NODE = 56
#: MI250X GCDs per Frontier node.
FRONTIER_GPUS_PER_NODE = 8
#: Frontier node count (we only ever allocate <= 1024 in the experiments).
FRONTIER_NODES = 9408


def frontier(n_nodes: int = FRONTIER_NODES) -> Cluster:
    """A Frontier-like cluster (56 usable cores + 8 GPUs per node)."""
    return Cluster(
        name="frontier",
        n_nodes=n_nodes,
        cores_per_node=FRONTIER_CORES_PER_NODE,
        gpus_per_node=FRONTIER_GPUS_PER_NODE,
        mem_gb_per_node=512.0,
    )


def generic(n_nodes: int, cores_per_node: int = 8,
            gpus_per_node: int = 0) -> Cluster:
    """A small generic cluster for unit tests and examples."""
    return Cluster(
        name="generic",
        n_nodes=n_nodes,
        cores_per_node=cores_per_node,
        gpus_per_node=gpus_per_node,
    )


def frontier_latencies() -> LatencyModel:
    """The default latency calibration for the Frontier-like profile."""
    return FRONTIER_LATENCIES
