"""Cluster and allocation models.

A :class:`Cluster` is a homogeneous set of :class:`~repro.platform.node.Node`
objects (the paper's substrate, Frontier, is homogeneous at the level
the experiments exercise).  An :class:`Allocation` is the subset of
nodes granted to one pilot job; it can be carved into disjoint
:meth:`partitions <Allocation.partition>` for multi-instance Flux /
Dragon deployments.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..exceptions import AllocationError, ResourceError
from .node import Node, Placement
from .spec import ResourceSpec


class Allocation:
    """A set of nodes granted to a pilot for a bounded walltime."""

    def __init__(self, cluster: "Cluster", nodes: Sequence[Node],
                 walltime: float = float("inf"), job_id: str = "") -> None:
        if not nodes:
            raise AllocationError("empty allocation")
        self.cluster = cluster
        self.nodes: List[Node] = list(nodes)
        self.walltime = walltime
        self.job_id = job_id
        self._by_index = {n.index: n for n in self.nodes}
        # Aggregate counters, maintained incrementally.  The node set
        # is fixed for the allocation's lifetime, so the totals are
        # computed once; the free counts are pushed by the nodes on
        # every allocate/release (see Node._watchers), which keeps them
        # exact even when several allocations share nodes (a pilot
        # allocation and its partitions, or a nested Flux instance).
        self._total_cores = sum(n.n_cores for n in self.nodes)
        self._total_gpus = sum(n.n_gpus for n in self.nodes)
        self._free_cores = sum(n.free_cores for n in self.nodes)
        self._free_gpus = sum(n.free_gpus for n in self.nodes)
        # Usable capacity: total minus the capacity of DOWN nodes.
        # Updated only by fault events (Node.fail/recover), so healthy
        # runs never touch it after construction.
        self._down_nodes = sum(1 for n in self.nodes if not n.is_up)
        self._usable_cores = self._total_cores - sum(
            n.n_cores for n in self.nodes if not n.is_up)
        self._usable_gpus = self._total_gpus - sum(
            n.n_gpus for n in self.nodes if not n.is_up)
        # First-fit scan hint: every node at a position below
        # ``_scan_hint`` is fully busy (zero free cores and GPUs), so
        # ``try_place`` can skip straight past them.  The hint advances
        # lazily during placement and is pulled back whenever a node
        # frees resources (including through *another* allocation that
        # shares the node — the delta callback carries the node index).
        self._pos = {n.index: i for i, n in enumerate(self.nodes)}
        self._scan_hint = 0
        for node in self.nodes:
            node._watchers.append(self)

    def _on_node_delta(self, d_cores: int, d_gpus: int, index: int) -> None:
        """A watched node's free counts changed by the given deltas."""
        self._free_cores += d_cores
        self._free_gpus += d_gpus
        if d_cores > 0 or d_gpus > 0:
            pos = self._pos[index]
            if pos < self._scan_hint:
                self._scan_hint = pos

    def _on_node_down(self, index: int, n_cores: int, n_gpus: int) -> None:
        """A watched node went DOWN: shrink the usable capacity."""
        self._down_nodes += 1
        self._usable_cores -= n_cores
        self._usable_gpus -= n_gpus

    def _on_node_up(self, index: int, n_cores: int, n_gpus: int) -> None:
        """A watched node recovered from DOWN."""
        self._down_nodes -= 1
        self._usable_cores += n_cores
        self._usable_gpus += n_gpus

    def detach(self) -> None:
        """Stop tracking node-level changes (allocation retired)."""
        for node in self.nodes:
            try:
                node._watchers.remove(self)
            except ValueError:  # pragma: no cover - already detached
                pass

    # -- capacity ------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        return self._total_cores

    @property
    def total_gpus(self) -> int:
        return self._total_gpus

    @property
    def free_cores(self) -> int:
        return self._free_cores

    @property
    def free_gpus(self) -> int:
        return self._free_gpus

    @property
    def busy_cores(self) -> int:
        return self._total_cores - self._free_cores

    @property
    def usable_cores(self) -> int:
        """Cores on nodes that are not DOWN (equals ``total_cores`` in
        a healthy allocation)."""
        return self._usable_cores

    @property
    def usable_gpus(self) -> int:
        return self._usable_gpus

    @property
    def n_down_nodes(self) -> int:
        return self._down_nodes

    def up_nodes(self) -> List[Node]:
        """The healthy (UP) nodes, in allocation order."""
        return [n for n in self.nodes if n.is_up]

    # -- partitioning ----------------------------------------------------------

    def partition(self, n_partitions: int) -> List["Allocation"]:
        """Split into ``n_partitions`` disjoint, contiguous sub-allocations.

        Node counts differ by at most one between partitions.  Raises
        when there are more partitions than nodes.
        """
        if n_partitions < 1:
            raise AllocationError(f"need >=1 partition, got {n_partitions}")
        if n_partitions > self.n_nodes:
            raise AllocationError(
                f"cannot split {self.n_nodes} nodes into {n_partitions} partitions"
            )
        base, extra = divmod(self.n_nodes, n_partitions)
        parts: List[Allocation] = []
        cursor = 0
        for i in range(n_partitions):
            size = base + (1 if i < extra else 0)
            parts.append(Allocation(
                self.cluster, self.nodes[cursor:cursor + size],
                walltime=self.walltime,
                job_id=f"{self.job_id}.p{i:03d}" if self.job_id else f"p{i:03d}",
            ))
            cursor += size
        return parts

    def split_nodes(self, first_n: int) -> List["Allocation"]:
        """Split into two allocations of ``first_n`` and the remainder."""
        if not 0 < first_n < self.n_nodes:
            raise AllocationError(
                f"cannot split off {first_n} of {self.n_nodes} nodes"
            )
        return [
            Allocation(self.cluster, self.nodes[:first_n],
                       walltime=self.walltime, job_id=f"{self.job_id}.a"),
            Allocation(self.cluster, self.nodes[first_n:],
                       walltime=self.walltime, job_id=f"{self.job_id}.b"),
        ]

    # -- placement --------------------------------------------------------------

    def try_place(self, spec: ResourceSpec) -> Optional[List[Placement]]:
        """First-fit placement of ``spec`` across the allocation's nodes.

        Returns the list of per-node placements, or ``None`` when the
        spec does not currently fit.  Multi-node specs are packed
        node-by-node (whole nodes when ``exclusive_nodes``).
        """
        cores_needed = spec.cores
        gpus_needed = spec.gpus
        if cores_needed > self._free_cores or gpus_needed > self._free_gpus:
            # Aggregate shortfall: no node-by-node scan can succeed.
            return None
        # Advance the scan hint past fully-busy nodes, then start the
        # first-fit scan there.  Nodes below the hint have nothing to
        # give (neither partial cores nor idle-node exclusivity), so
        # skipping them cannot change which placement is found.
        nodes = self.nodes
        n_nodes = len(nodes)
        hint = self._scan_hint
        while hint < n_nodes:
            node = nodes[hint]
            if node._free_cores or node._free_gpus:
                break
            hint += 1
        self._scan_hint = hint
        placements: List[Placement] = []
        try:
            if spec.exclusive_nodes:
                for i in range(hint, n_nodes):
                    if cores_needed <= 0 and gpus_needed <= 0:
                        break
                    node = nodes[i]
                    if not node.is_idle:
                        continue
                    placements.append(node.allocate(node.n_cores, node.n_gpus))
                    cores_needed -= node.n_cores
                    gpus_needed -= node.n_gpus
            else:
                for i in range(hint, n_nodes):
                    if cores_needed <= 0 and gpus_needed <= 0:
                        break
                    node = nodes[i]
                    take_c = min(cores_needed, len(node._free_cores))
                    take_g = min(gpus_needed, len(node._free_gpus))
                    if take_c <= 0 and take_g <= 0:
                        continue
                    placements.append(node.allocate(max(take_c, 0), max(take_g, 0)))
                    cores_needed -= take_c
                    gpus_needed -= take_g
            if cores_needed > 0 or gpus_needed > 0:
                raise ResourceError("insufficient free resources")
        except ResourceError:
            self.release(placements)
            return None
        return placements

    def release(self, placements: Iterable[Placement]) -> None:
        """Release a list of placements previously handed out."""
        by_index = self._by_index
        for pl in placements:
            by_index[pl.node_index].release(pl)

    def __repr__(self) -> str:
        return (
            f"<Allocation {self.job_id or '?'} nodes={self.n_nodes} "
            f"cores={self.free_cores}/{self.total_cores}>"
        )


class Cluster:
    """A homogeneous HPC machine."""

    def __init__(self, name: str, n_nodes: int, cores_per_node: int,
                 gpus_per_node: int = 0, mem_gb_per_node: float = 512.0) -> None:
        if n_nodes < 1:
            raise AllocationError(f"cluster needs >=1 node, got {n_nodes}")
        self.name = name
        self.cores_per_node = cores_per_node
        self.gpus_per_node = gpus_per_node
        self.mem_gb_per_node = mem_gb_per_node
        self.nodes = [
            Node(i, cores_per_node, gpus_per_node, mem_gb_per_node,
                 name=f"{name}-{i:05d}")
            for i in range(n_nodes)
        ]
        self._free_indices = set(range(n_nodes))
        self._job_seq = 0

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.cores_per_node

    @property
    def free_nodes(self) -> int:
        """Nodes not currently granted to any allocation."""
        return len(self._free_indices)

    def allocate_nodes(self, n_nodes: int,
                       walltime: float = float("inf")) -> Allocation:
        """Grant ``n_nodes`` currently-free nodes as an allocation.

        Raises :class:`AllocationError` when fewer are free; callers
        that want queueing go through
        :meth:`repro.rjms.slurm.SlurmController.submit_batch_job`.
        """
        if n_nodes < 1:
            raise AllocationError(f"need >=1 node, got {n_nodes}")
        if n_nodes > len(self._free_indices):
            raise AllocationError(
                f"{self.name}: requested {n_nodes} nodes, only "
                f"{len(self._free_indices)} free"
            )
        picked = sorted(self._free_indices)[:n_nodes]
        self._free_indices.difference_update(picked)
        nodes = [self.nodes[i] for i in picked]
        self._job_seq += 1
        return Allocation(self, nodes, walltime=walltime,
                          job_id=f"{self.name}.job.{self._job_seq:04d}")

    def release_allocation(self, allocation: Allocation) -> None:
        """Return an allocation's nodes to the free pool."""
        for node in allocation.nodes:
            if node.index in self._free_indices:
                raise AllocationError(
                    f"{self.name}: node {node.index} double-released")
            self._free_indices.add(node.index)
        allocation.detach()

    def release_all(self) -> None:
        """Return every node to the free pool (end of experiment)."""
        self._free_indices = set(range(self.n_nodes))

    def __repr__(self) -> str:
        return (
            f"<Cluster {self.name} nodes={self.n_nodes} "
            f"cpn={self.cores_per_node} gpn={self.gpus_per_node}>"
        )
