"""The ``srun`` launch path with Frontier's concurrency ceiling.

An :class:`SrunLauncher` is shared machine-wide.  Each task launch:

1. waits for one of the ``srun_ceiling`` (112 on the Frontier-like
   profile) concurrency slots — the slot is held for the *entire task
   lifetime*, because a real srun client process stays alive while its
   step runs.  This is what caps concurrency at 112 running tasks and
   pins utilization to 50 % on 4 nodes (Fig. 4);
2. passes through the serialized ``slurmctld`` launch pipeline
   (:meth:`~repro.rjms.slurm.SlurmController.process_launch_rpc`);
3. pays a local step-setup latency, then executes the task payload.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..platform.latency import LatencyModel
from ..sim import Environment, Resource, RngStreams
from .slurm import SlurmController


class SrunLauncher:
    """Machine-wide srun facility: concurrency ceiling + launch path."""

    def __init__(self, env: Environment, controller: SlurmController,
                 latencies: LatencyModel, rng: RngStreams,
                 metrics=None) -> None:
        self.env = env
        self.controller = controller
        self.latencies = latencies
        self.rng = rng
        self._ceiling = Resource(env, capacity=latencies.srun_ceiling)
        # Optional observability (a MetricsRegistry); ``None`` keeps
        # the launch path check-free beyond one identity test.
        self._m_active = self._m_waiting = self._m_launches = None
        if metrics is not None:
            self._m_active = metrics.gauge(
                "repro_srun_active",
                "live srun invocations (ceiling saturation at "
                f"{latencies.srun_ceiling})")
            self._m_waiting = metrics.gauge(
                "repro_srun_waiting",
                "launches blocked on the srun concurrency ceiling")
            self._m_launches = metrics.counter(
                "repro_srun_launches_total", "task launches through srun")

    # -- introspection ---------------------------------------------------------

    @property
    def active(self) -> int:
        """Number of srun invocations currently alive."""
        return self._ceiling.count

    @property
    def waiting(self) -> int:
        """Number of launches blocked on the concurrency ceiling."""
        return self._ceiling.queued

    @property
    def ceiling(self) -> int:
        return self._ceiling.capacity

    # -- launching ----------------------------------------------------------------

    def run_task(self, alloc_nodes: int, duration: float,
                 on_start: Optional[Callable[[], None]] = None,
                 on_stop: Optional[Callable[[], None]] = None):
        """Generator that launches and executes one task via srun.

        Parameters
        ----------
        alloc_nodes:
            Size of the surrounding allocation (drives controller cost).
        duration:
            Simulated task payload runtime [s] (0 for null tasks).
        on_start / on_stop:
            Callbacks fired when the payload starts / stops executing
            (used by the executor to record trace events and manage
            slot bookkeeping).
        """
        slot = self._ceiling.request()
        if self._m_waiting is not None:
            self._m_waiting.set(self._ceiling.queued)
        try:
            # The acquisition must sit inside the try: a step killed
            # while queued for the ceiling (cancellation, node failure)
            # would otherwise be granted its slot posthumously and
            # never release it, draining the ceiling until no launch
            # can ever proceed.  release() on an ungranted request
            # just cancels the wait.
            yield slot
            if self._m_active is not None:
                self._m_active.set(self._ceiling.count)
                self._m_launches.inc()
            yield from self.controller.process_launch_rpc(alloc_nodes)
            setup = self.rng.lognormal_latency(
                "srun.setup", self.latencies.srun_step_setup,
                cv=self.latencies.srun_cv)
            if setup > 0:
                yield self.env.timeout(setup)
            if on_start is not None:
                on_start()
            if duration > 0:
                yield self.env.timeout(duration)
            if on_stop is not None:
                on_stop()
        finally:
            slot.release()
            if self._m_active is not None:
                self._m_active.set(self._ceiling.count)
                self._m_waiting.set(self._ceiling.queued)
