"""System launch substrates: Slurm/srun and the PRRTE DVM."""

from .prrte import DvmState, PrrteDVM
from .slurm import SlurmController
from .srun import SrunLauncher

__all__ = ["DvmState", "PrrteDVM", "SlurmController", "SrunLauncher"]
