"""Slurm-like system resource and job manager (RJMS).

Two aspects of Slurm matter for the paper's experiments and are
modelled mechanistically:

1. **Batch allocation** — a pilot job asks for N nodes and receives an
   :class:`~repro.platform.cluster.Allocation` after a (configurable)
   queue wait.

2. **The launch path** — every ``srun`` invocation is serviced by a
   *serialized* controller RPC pipeline whose per-launch service time
   grows with the allocation size.  This serialization is the
   mechanism behind Fig. 5(a)'s throughput decline with node count.

The platform-wide concurrency ceiling lives in
:class:`~repro.rjms.srun.SrunLauncher` because it constrains the
number of simultaneously *active* sruns, not controller requests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..exceptions import AllocationError
from ..platform.cluster import Allocation, Cluster
from ..platform.latency import LatencyModel
from ..sim import Environment, Resource, RngStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analytics.profiler import Profiler


class _BatchJob:
    """One queued batch request."""

    __slots__ = ("n_nodes", "walltime", "grant", "submitted_at")

    def __init__(self, n_nodes: int, walltime: float, grant,
                 submitted_at: float) -> None:
        self.n_nodes = n_nodes
        self.walltime = walltime
        self.grant = grant
        self.submitted_at = submitted_at


class SlurmController:
    """The central ``slurmctld`` of the simulated machine.

    Batch jobs queue FIFO with EASY backfill: the queue head reserves
    the earliest time enough nodes free up (using running jobs'
    walltimes); later jobs may jump ahead only if they fit now *and*
    their walltime keeps them clear of that reservation.
    """

    def __init__(self, env: Environment, cluster: Cluster,
                 latencies: LatencyModel, rng: RngStreams,
                 profiler: Optional["Profiler"] = None,
                 queue_wait: float = 0.0) -> None:
        self.env = env
        self.cluster = cluster
        self.latencies = latencies
        self.rng = rng
        self.profiler = profiler
        self.queue_wait = queue_wait
        #: Serialized launch-RPC pipeline: one launch request at a time.
        self._launch_pipeline = Resource(env, capacity=1)
        self._batch_queue: list = []
        #: job_id -> (allocation, estimated end time)
        self._running: dict = {}
        self._jobs = 0

    # -- batch jobs -----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Batch jobs waiting for nodes."""
        return len(self._batch_queue)

    def submit_batch_job(self, n_nodes: int,
                         walltime: float = float("inf")):
        """Request an allocation; generator yielding until granted.

        Returns the :class:`Allocation` as the process value.  Requests
        beyond the whole machine are rejected immediately; requests
        beyond the *currently free* nodes queue until running jobs end.
        """
        if n_nodes > self.cluster.n_nodes:
            raise AllocationError(
                f"requested {n_nodes} nodes; machine has {self.cluster.n_nodes}"
            )
        if self.queue_wait > 0:
            yield self.env.timeout(
                self.rng.exponential("slurm.queue", self.queue_wait))
        grant = self.env.event()
        self._batch_queue.append(_BatchJob(n_nodes, walltime, grant,
                                           self.env.now))
        self._schedule_batch()
        allocation = yield grant
        return allocation

    def release_job(self, allocation) -> None:
        """A batch job ended: recycle its nodes and run the scheduler."""
        if allocation.job_id not in self._running:
            return
        del self._running[allocation.job_id]
        self.cluster.release_allocation(allocation)
        if self.profiler is not None:
            self.profiler.record(allocation.job_id, "slurm_alloc_released",
                                 nodes=allocation.n_nodes)
        self._schedule_batch()

    def _grant(self, job: _BatchJob) -> None:
        allocation = self.cluster.allocate_nodes(job.n_nodes, job.walltime)
        self._jobs += 1
        end = (self.env.now + job.walltime
               if job.walltime != float("inf") else float("inf"))
        self._running[allocation.job_id] = (allocation, end)
        if self.profiler is not None:
            self.profiler.record(allocation.job_id, "slurm_alloc_granted",
                                 nodes=job.n_nodes,
                                 queued=self.env.now - job.submitted_at)
        job.grant.succeed(allocation)

    def _schedule_batch(self) -> None:
        """FIFO + EASY backfill over the batch queue."""
        # Grant from the head while it fits.
        while self._batch_queue:
            head = self._batch_queue[0]
            if head.n_nodes > self.cluster.free_nodes:
                break
            self._batch_queue.pop(0)
            self._grant(head)
        if not self._batch_queue:
            return
        # Head blocked: compute its shadow time from running jobs'
        # estimated ends, then backfill later jobs that fit now and
        # end before the reservation.
        head = self._batch_queue[0]
        shadow = self._shadow_time(head.n_nodes)
        for job in list(self._batch_queue[1:]):
            if job.n_nodes > self.cluster.free_nodes:
                continue
            est_end = (self.env.now + job.walltime
                       if job.walltime != float("inf") else float("inf"))
            if est_end <= shadow:
                self._batch_queue.remove(job)
                self._grant(job)

    def _shadow_time(self, need_nodes: int) -> float:
        """Earliest time ``need_nodes`` could be free, assuming running
        jobs end at their walltime estimates."""
        free = self.cluster.free_nodes
        if free >= need_nodes:
            return self.env.now
        ends = sorted((end, alloc.n_nodes)
                      for alloc, end in self._running.values())
        for end, n in ends:
            free += n
            if free >= need_nodes:
                return end
        return float("inf")

    # -- launch RPC -----------------------------------------------------------

    def launch_service_time(self, alloc_nodes: int) -> float:
        """One draw of the controller's per-launch service time [s]."""
        mean = (self.latencies.srun_ctl_base
                + self.latencies.srun_ctl_per_node * alloc_nodes
                + self.latencies.srun_ctl_per_node15 * alloc_nodes ** 1.5)
        return self.rng.lognormal_latency("slurm.ctl", mean,
                                          cv=self.latencies.srun_cv)

    def process_launch_rpc(self, alloc_nodes: int):
        """Generator: wait for the pipeline, then pay the service time.

        Every srun task launch funnels through this single pipeline —
        the controller serialization the paper identifies.
        """
        with self._launch_pipeline.request() as req:
            yield req
            yield self.env.timeout(self.launch_service_time(alloc_nodes))

    @property
    def pipeline_depth(self) -> int:
        """Number of launch RPCs currently queued at the controller."""
        return self._launch_pipeline.queued
