"""PRRTE-like distributed virtual machine (DVM) launch substrate.

The paper's related work (§5) describes PRRTE as a third design point
RP has integrated: *"a lightweight, open-source runtime for scalable
task launching ... PRRTE does not include an internal scheduler but
instead delegates coordination and scheduling to external systems.
Its distributed virtual machine (DVM) model enables rapid task launch
with minimal per-task overhead, provided task coordination is managed
externally."*

Model consequences:

* **fast bootstrap** — the DVM's per-node daemons start in ~5 s,
  quicker than a Flux instance (no scheduler/broker stack);
* **no ceiling, no scheduler** — unlike srun there is no platform
  concurrency cap, and unlike Flux there is no internal queue: RP owns
  placement (exactly the division of labour the paper describes);
* **serialized DVM head node** — launch requests funnel through the
  DVM controller at a low per-task cost that grows mildly with DVM
  size, landing PRRTE's throughput between srun's and a partitioned
  Flux deployment's.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..exceptions import RuntimeStartupError
from ..platform.cluster import Allocation
from ..platform.latency import LatencyModel
from ..sim import Environment, Resource, RngStreams


class DvmState:
    INIT = "INIT"
    STARTING = "STARTING"
    READY = "READY"
    STOPPED = "STOPPED"


class PrrteDVM:
    """One PRRTE distributed virtual machine over an allocation."""

    def __init__(self, env: Environment, allocation: Allocation,
                 latencies: LatencyModel, rng: RngStreams,
                 dvm_id: str = "prrte", profiler=None) -> None:
        self.env = env
        self.allocation = allocation
        self.latencies = latencies
        self.rng = rng
        self.profiler = profiler
        self.dvm_id = dvm_id
        self.state = DvmState.INIT
        #: Serialized DVM controller: one launch RPC at a time.
        self._controller = Resource(env, capacity=1)
        self.n_launched = 0
        self.n_completed = 0

    @property
    def n_nodes(self) -> int:
        return self.allocation.n_nodes

    @property
    def is_ready(self) -> bool:
        return self.state == DvmState.READY

    def startup_delay(self) -> float:
        lat = self.latencies
        mean = (lat.prrte_startup_mean
                + lat.prrte_startup_per_log2node
                * math.log2(max(1, self.n_nodes)))
        return self.rng.lognormal_latency("prrte.startup", mean,
                                          cv=lat.prrte_startup_cv)

    def start(self):
        """Generator: bring the per-node daemons up."""
        if self.state != DvmState.INIT:
            raise RuntimeStartupError(
                f"{self.dvm_id}: start() in state {self.state}")
        self.state = DvmState.STARTING
        if self.profiler is not None:
            self.profiler.record(self.dvm_id, "backend_start",
                                 kind="prrte", nodes=self.n_nodes)
        yield self.env.timeout(self.startup_delay())
        self.state = DvmState.READY
        if self.profiler is not None:
            self.profiler.record(self.dvm_id, "backend_ready",
                                 kind="prrte", nodes=self.n_nodes)

    def shutdown(self) -> None:
        if self.state == DvmState.READY:
            self.state = DvmState.STOPPED
            if self.profiler is not None:
                self.profiler.record(self.dvm_id, "backend_stop",
                                     kind="prrte")

    def launch_cost(self) -> float:
        """One draw of the controller's per-task launch cost [s]."""
        lat = self.latencies
        mean = (lat.prrte_launch_cost
                + lat.prrte_launch_per_node * self.n_nodes)
        return self.rng.lognormal_latency("prrte.launch", mean,
                                          cv=lat.prrte_cv)

    def run_task(self, duration: float,
                 on_start: Optional[Callable[[], None]] = None,
                 on_stop: Optional[Callable[[], None]] = None):
        """Generator: launch through the DVM controller, then execute.

        Unlike srun, the launching client releases the controller as
        soon as the task is spawned — no per-task resource is held for
        the payload's lifetime, which is exactly why the DVM has no
        concurrency ceiling.
        """
        if self.state != DvmState.READY:
            raise RuntimeStartupError(
                f"{self.dvm_id}: run_task in state {self.state}")
        with self._controller.request() as ctl:
            yield ctl
            yield self.env.timeout(self.launch_cost())
        self.n_launched += 1
        if on_start is not None:
            on_start()
        if duration > 0:
            yield self.env.timeout(duration)
        if on_stop is not None:
            on_stop()
        self.n_completed += 1
