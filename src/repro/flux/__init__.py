"""Flux-like hierarchical task runtime system.

Models a Flux deployment inside a pilot allocation: per-instance
brokers with serialized ingest, policy-driven scheduling (FCFS / EASY
backfill) over real slot-level placement, TBON-style dispatch lanes,
an asynchronous job event stream, and hierarchical / partitioned
multi-instance operation.
"""

from .events import (
    EV_ALLOC,
    EV_EXCEPTION,
    EV_FINISH,
    EV_RELEASE,
    EV_START,
    EV_SUBMIT,
    EventStream,
    JobEvent,
)
from .hierarchy import FluxHierarchy
from .instance import FluxInstance, InstanceState
from .jobspec import FluxJob, FluxJobState, Jobspec
from .scheduler import EasyBackfillPolicy, FcfsPolicy, make_policy

__all__ = [
    "EV_ALLOC",
    "EV_EXCEPTION",
    "EV_FINISH",
    "EV_RELEASE",
    "EV_START",
    "EV_SUBMIT",
    "EasyBackfillPolicy",
    "EventStream",
    "FcfsPolicy",
    "FluxHierarchy",
    "FluxInstance",
    "FluxJob",
    "FluxJobState",
    "InstanceState",
    "JobEvent",
    "Jobspec",
    "make_policy",
]
