"""Hierarchical / partitioned Flux deployments.

The *flux_n* experiment runs many concurrent Flux instances, each on a
disjoint node partition of the pilot allocation, all bootstrapped
concurrently (so startup overhead is not additive — Fig. 7).  Nested
instances (an instance spawning a child on a subset of its nodes) are
also supported, mirroring Flux's recursive design.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..exceptions import RuntimeStartupError
from ..platform.cluster import Allocation
from ..platform.latency import LatencyModel
from ..sim import Environment, RngStreams
from .instance import FluxInstance, InstanceState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analytics.profiler import Profiler


class FluxHierarchy:
    """A set of sibling Flux instances over disjoint partitions."""

    def __init__(self, env: Environment, allocation: Allocation,
                 latencies: LatencyModel, rng: RngStreams,
                 n_instances: int = 1, policy: str = "fcfs",
                 name: str = "flux", profiler: Optional["Profiler"] = None,
                 metrics=None, faults=None, lean: bool = False,
                 tracer=None) -> None:
        self.env = env
        self.allocation = allocation
        self.name = name
        partitions = allocation.partition(n_instances)
        self.instances: List[FluxInstance] = [
            FluxInstance(env, part, latencies, rng,
                         instance_id=f"{name}.{i:03d}", policy=policy,
                         profiler=profiler, metrics=metrics, faults=faults,
                         lean=lean, tracer=tracer)
            for i, part in enumerate(partitions)
        ]
        self._rr = 0

    @property
    def n_instances(self) -> int:
        return len(self.instances)

    @property
    def is_trivial(self) -> bool:
        """Whether the hierarchy is a single instance.

        Only trivial hierarchies are closed-form-predictable: sibling
        instances draw from the *session-scoped* latency streams in
        chronological interleaving order, and least-loaded routing
        couples each submission to every sibling's outstanding count —
        both make per-instance timelines depend on the global event
        order, which the vectorized ensemble recurrence does not model.
        """
        return len(self.instances) == 1

    @property
    def all_ready(self) -> bool:
        return all(inst.is_ready for inst in self.instances)

    def start_all(self):
        """Generator: bootstrap every instance *concurrently*; returns
        when all are ready (total overhead ~= max, not sum)."""
        procs = [self.env.process(inst.start()) for inst in self.instances]
        yield self.env.all_of(procs)
        if not self.all_ready:
            raise RuntimeStartupError(f"{self.name}: not all instances ready")

    def shutdown_all(self) -> None:
        for inst in self.instances:
            inst.shutdown()

    def least_loaded(self, min_cores: int = 0,
                     min_gpus: int = 0) -> FluxInstance:
        """The ready instance with the fewest outstanding jobs.

        "Outstanding" counts everything submitted but not yet retired
        (including jobs still in the ingest pipeline), so the balance
        is accurate even while submission outpaces ingest.  Round-robin
        breaks ties, spreading load evenly for homogeneous workloads.

        ``min_cores`` / ``min_gpus`` restrict the choice to instances
        whose partition can ever host the job (wide jobs must go to a
        wide-enough instance).
        """
        # Single pass over plain attributes (no property indirection),
        # computing each instance's outstanding count once — this runs
        # per task submission.
        ready = InstanceState.READY
        low = None
        candidates = []
        for inst in self.instances:
            if inst.state != ready:
                continue
            alloc = inst.allocation
            # Usable (not total) capacity: an instance that lost nodes
            # to failures must not receive jobs it can no longer host.
            # Equal to the totals in a healthy run.
            if alloc._usable_cores < min_cores or alloc._usable_gpus < min_gpus:
                continue
            outstanding = (inst.n_submitted - inst.n_completed
                           - inst.n_failed)
            if low is None or outstanding < low:
                low = outstanding
                candidates = [inst]
            elif outstanding == low:
                candidates.append(inst)
        if not candidates:
            raise RuntimeStartupError(
                f"{self.name}: no ready instance can host "
                f"{min_cores}c/{min_gpus}g")
        self._rr = (self._rr + 1) % len(candidates)
        return candidates[self._rr]

    def spawn_nested(self, parent: FluxInstance, n_nodes: int,
                     policy: str = "fcfs") -> FluxInstance:
        """Create a child instance on ``n_nodes`` of the parent's
        partition (nested hierarchical scheduling).

        The child manages the *same* node objects; resource safety is
        preserved because the parent should not schedule onto nodes it
        delegates (the caller's responsibility, as in real Flux).
        """
        if parent.state != InstanceState.READY:
            raise RuntimeStartupError("parent instance not ready")
        if n_nodes >= parent.allocation.n_nodes:
            raise RuntimeStartupError(
                "child must be strictly smaller than its parent")
        sub_nodes = parent.allocation.nodes[:n_nodes]
        sub_alloc = Allocation(parent.allocation.cluster, sub_nodes,
                               job_id=f"{parent.instance_id}.nested")
        child = FluxInstance(self.env, sub_alloc, parent.latencies,
                             parent.rng,
                             instance_id=f"{parent.instance_id}.child",
                             policy=policy, profiler=parent.profiler,
                             lean=parent._lean, tracer=parent.tracer)
        self.instances.append(child)
        return child
