"""Scheduling policies of a Flux instance (fluxion analogue).

Two policies cover the paper's configurations:

* :class:`FcfsPolicy` — strict first-come-first-served: matching stops
  at the first queued job that cannot be placed.  This is the default
  used in the synthetic throughput experiments (homogeneous jobs).
* :class:`EasyBackfillPolicy` — EASY backfill: when the queue head
  does not fit, a *shadow time* (earliest time the head could start,
  derived from running jobs' walltime estimates) is computed and later
  jobs may jump ahead if their walltime keeps them clear of the
  head's reservation.  Used for heterogeneous IMPECCABLE mixes.

Both policies perform real slot-level placement through
:meth:`repro.platform.cluster.Allocation.try_place`, so the
no-oversubscription invariant holds by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from ..platform.cluster import Allocation
from .jobspec import FluxJob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..platform.node import Placement

Match = Tuple[FluxJob, List["Placement"]]

def order_key(job: FluxJob) -> Tuple[int, int]:
    """Scheduling order: higher urgency first, ingest order breaks ties.

    ``ingest_seq`` is assigned by the instance's ingest pipeline, so
    the key is total and independent of the queue's current layout.
    """
    return (-job.spec.urgency, job.ingest_seq)


def _order_queue(queue: Iterable[FluxJob],
                 presorted: bool = False) -> List[FluxJob]:
    """Higher urgency first; submit order breaks ties (stable sort).

    ``presorted`` callers (the instance scheduling loop, which keeps
    its pending queue ordered incrementally) skip the sort — and with
    it one key-lambda evaluation per queued job per scheduling cycle,
    by far the hottest path of the whole Flux model at scale.
    """
    if presorted:
        return queue if isinstance(queue, list) else list(queue)
    return sorted(queue, key=lambda j: -j.spec.urgency)


class FcfsPolicy:
    """Strict first-come-first-served matching."""

    name = "fcfs"

    @staticmethod
    def grant_count(n_eligible: int, n_free_slots: int) -> int:
        """Closed form of one FCFS matching pass over uniform
        single-core jobs: the grant is the queue-order prefix bounded
        by free capacity, so its size is ``min(eligible, free)``.

        This is what makes single-instance flux ensembles vectorizable
        (see :mod:`repro.ensemble.vec_flux`): per scheduler cycle the
        whole grant set is determined by two counts, no per-job
        placement search needed.  Kept on the policy so the ensemble
        engine and the DES share one definition of FCFS semantics.
        """
        return min(n_eligible, n_free_slots)

    def match(self, queue: List[FluxJob], allocation: Allocation,
              running: List[FluxJob], now: float,
              limit: Optional[int] = None,
              presorted: bool = False) -> List[Match]:
        matches: List[Match] = []
        for job in _order_queue(queue, presorted):
            if limit is not None and len(matches) >= limit:
                break
            placements = allocation.try_place(job.spec.resources)
            if placements is None:
                break  # strict FCFS: nothing may overtake the head
            matches.append((job, placements))
        return matches


class EasyBackfillPolicy:
    """EASY backfill: later jobs may start if they respect the head's
    earliest-start reservation."""

    name = "easy"

    def match(self, queue: List[FluxJob], allocation: Allocation,
              running: List[FluxJob], now: float,
              limit: Optional[int] = None,
              presorted: bool = False) -> List[Match]:
        matches: List[Match] = []
        ordered = _order_queue(queue, presorted)
        blocked_head: Optional[FluxJob] = None
        shadow_time = float("inf")
        for job in ordered:
            if limit is not None and len(matches) >= limit:
                break
            if blocked_head is None:
                placements = allocation.try_place(job.spec.resources)
                if placements is not None:
                    matches.append((job, placements))
                    continue
                blocked_head = job
                shadow_time = self._shadow_time(job, allocation, running, now)
                continue
            # Backfill phase: only jobs that finish before the head's
            # reservation may start.
            est_end = now + job.spec.duration
            if est_end > shadow_time:
                continue
            placements = allocation.try_place(job.spec.resources)
            if placements is not None:
                matches.append((job, placements))
        return matches

    @staticmethod
    def _shadow_time(head: FluxJob, allocation: Allocation,
                     running: List[FluxJob], now: float) -> float:
        """Earliest time the head job could start, assuming running jobs
        end exactly at their walltime estimates."""
        need_cores = head.spec.resources.cores
        need_gpus = head.spec.resources.gpus
        free_cores = allocation.free_cores
        free_gpus = allocation.free_gpus
        if free_cores >= need_cores and free_gpus >= need_gpus:
            return now
        # Sort running jobs by estimated completion and accumulate
        # released resources until the head fits.
        ends = sorted(
            (j for j in running if j.start_time is not None),
            key=lambda j: (j.start_time or 0.0) + j.spec.duration,
        )
        for job in ends:
            free_cores += job.spec.resources.cores
            free_gpus += job.spec.resources.gpus
            if free_cores >= need_cores and free_gpus >= need_gpus:
                return (job.start_time or 0.0) + job.spec.duration
        return float("inf")


POLICIES = {
    FcfsPolicy.name: FcfsPolicy,
    EasyBackfillPolicy.name: EasyBackfillPolicy,
}


def make_policy(name: str):
    """Instantiate a policy by name (``fcfs`` or ``easy``)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
