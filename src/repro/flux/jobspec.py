"""Flux jobspec model and validation.

A jobspec is the canonical serialized job description submitted to a
Flux instance over RPC (the real system uses the canonical jobspec
V1 YAML/JSON).  We model the fields the scheduler and launcher
consume: the resource request, an optional walltime estimate (used by
the backfill policy), and launch attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..exceptions import JobspecError
from ..platform.spec import ResourceSpec


@dataclass(frozen=True)
class Jobspec:
    """A validated Flux job description.

    Parameters
    ----------
    command:
        The executable (or an opaque task tag); informational.
    resources:
        Cores / GPUs / node-exclusivity requested.
    duration:
        Simulated payload runtime [s]; also serves as the walltime
        estimate consumed by the EASY-backfill policy.
    urgency:
        0-31 priority (16 = default), higher runs earlier within policy.
    attributes:
        Free-form launch attributes (environment, cwd, ...).
    """

    command: str
    resources: ResourceSpec = field(default_factory=ResourceSpec)
    duration: float = 0.0
    urgency: int = 16
    attributes: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.command:
            raise JobspecError("jobspec needs a command")
        if self.duration < 0:
            raise JobspecError(f"negative duration {self.duration}")
        if not 0 <= self.urgency <= 31:
            raise JobspecError(f"urgency must be in [0, 31], got {self.urgency}")

    def validate_against(self, total_cores: int, total_gpus: int) -> None:
        """Raise :class:`JobspecError` if this job can never fit the
        instance's resource pool (unsatisfiable request)."""
        if self.resources.cores > total_cores:
            raise JobspecError(
                f"job needs {self.resources.cores} cores; instance has "
                f"{total_cores}"
            )
        if self.resources.gpus > total_gpus:
            raise JobspecError(
                f"job needs {self.resources.gpus} gpus; instance has "
                f"{total_gpus}"
            )


class FluxJobState:
    """Flux job lifecycle states (subset of the real event model)."""

    DEPEND = "DEPEND"     #: accepted, dependencies (none here) pending
    SCHED = "SCHED"       #: waiting for resources
    RUN = "RUN"           #: payload executing
    CLEANUP = "CLEANUP"   #: payload done, resources being released
    INACTIVE = "INACTIVE" #: fully retired

    ORDER = (DEPEND, SCHED, RUN, CLEANUP, INACTIVE)


@dataclass(slots=True)
class FluxJob:
    """Mutable per-job record kept inside a Flux instance."""

    job_id: str
    spec: Jobspec
    state: str = FluxJobState.DEPEND
    submit_time: float = 0.0
    alloc_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    exception: Optional[str] = None
    placements: Optional[list] = None
    #: Position in the instance's ingest order; the scheduling-order
    #: tie-breaker (see :func:`repro.flux.scheduler.order_key`).
    ingest_seq: int = 0

    @property
    def done(self) -> bool:
        return self.state == FluxJobState.INACTIVE

    @property
    def failed(self) -> bool:
        return self.exception is not None
