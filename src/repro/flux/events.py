"""Flux job event stream (pub/sub).

RP's Flux executor never polls: it subscribes to the instance's job
event stream and consumes lifecycle events asynchronously (§3.2.1).
We model the stream as a fan-out of FIFO stores with a small RPC
delivery delay per event.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple

from ..sim import Environment, Store

#: Default per-event RPC delivery delay of the job event stream [s].
DELIVERY_DELAY = 0.3e-3

#: Canonical job event names (mirrors flux job-manager events).
EV_SUBMIT = "submit"
EV_ALLOC = "alloc"
EV_START = "start"
EV_FINISH = "finish"
EV_RELEASE = "release"
EV_EXCEPTION = "exception"


class JobEvent(NamedTuple):
    """One job lifecycle event as delivered to subscribers.

    A named tuple rather than a (frozen) dataclass: instances are
    created once per lifecycle transition of every job, and tuple
    construction is several times cheaper than the ``object.__setattr__``
    dance a frozen dataclass performs per field.
    """

    job_id: str
    name: str
    time: float
    meta: Dict[str, Any] = {}


class EventStream:
    """Fan-out event bus: each subscriber gets every event it asked
    for, in publication order."""

    def __init__(self, env: Environment,
                 delivery_delay: float = DELIVERY_DELAY,
                 keep_history: bool = True) -> None:
        self.env = env
        self.delivery_delay = delivery_delay
        #: ``keep_history=False`` (memory-lean full-machine runs) stops
        #: recording published events; only post-hoc debugging reads
        #: :attr:`history`, delivery itself never does.  At ~6 events
        #: per job this is the largest per-task retention in the stack.
        self._keep_history = keep_history
        #: (sink, wanted-names) pairs; a sink is any callable taking
        #: one event (a queue's ``put`` or a plain callback); ``None``
        #: names = all events.
        self._subscribers: List[tuple] = []
        #: Union of all subscribed names (``None`` once any subscriber
        #: wants everything) — lets ``publish`` skip scheduling a
        #: delivery nobody will read, which matters because the
        #: executor only consumes 3 of the 5+ lifecycle events each job
        #: emits.
        self._wanted: Any = frozenset()
        self._history: List[JobEvent] = []

    def subscribe(self, names: Any = None) -> Store:
        """Register a new subscriber; returns its event queue.

        ``names`` optionally restricts delivery to those event names;
        events the subscriber would ignore are then never queued for
        it.  The full stream is still recorded in :attr:`history`.
        """
        queue = Store(self.env)
        want = None if names is None else frozenset(names)
        self._subscribers.append((queue.put, want))
        self._wanted = (None if (want is None or self._wanted is None)
                        else self._wanted | want)
        return queue

    def subscribe_callback(self, fn: Any, names: Any = None) -> None:
        """Register ``fn(event)`` to be called at delivery time.

        Same delivery latency and ordering as a queue subscriber, but
        without a waiting process: the callback runs directly when the
        delivery timer fires.  ``fn`` must not block (it cannot yield);
        handlers that need to wait should use :meth:`subscribe`.
        """
        want = None if names is None else frozenset(names)
        self._subscribers.append((fn, want))
        self._wanted = (None if (want is None or self._wanted is None)
                        else self._wanted | want)

    def publish(self, job_id: str, name: str, **meta: Any) -> JobEvent:
        """Emit an event; it reaches subscribers after ``delivery_delay``."""
        event = JobEvent(job_id, name, self.env._now, meta)
        if self._keep_history:
            self._history.append(event)
        wanted = self._wanted
        if wanted is None or name in wanted:
            if self.delivery_delay > 0:
                self.env.schedule_callback(self.delivery_delay,
                                           self._deliver, event)
            else:
                self._deliver(event)
        return event

    def _deliver(self, event: JobEvent) -> None:
        name = event.name
        for sink, want in self._subscribers:
            if want is None or name in want:
                sink(event)

    @property
    def history(self) -> List[JobEvent]:
        """All events published so far, in order."""
        return list(self._history)
