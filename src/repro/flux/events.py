"""Flux job event stream (pub/sub).

RP's Flux executor never polls: it subscribes to the instance's job
event stream and consumes lifecycle events asynchronously (§3.2.1).
We model the stream as a fan-out of FIFO stores with a small RPC
delivery delay per event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..sim import Environment, Store

#: Canonical job event names (mirrors flux job-manager events).
EV_SUBMIT = "submit"
EV_ALLOC = "alloc"
EV_START = "start"
EV_FINISH = "finish"
EV_RELEASE = "release"
EV_EXCEPTION = "exception"


@dataclass(frozen=True)
class JobEvent:
    """One job lifecycle event as delivered to subscribers."""

    job_id: str
    name: str
    time: float
    meta: Dict[str, Any] = field(default_factory=dict)


class EventStream:
    """Fan-out event bus: each subscriber gets every event, in order."""

    def __init__(self, env: Environment, delivery_delay: float = 0.3e-3) -> None:
        self.env = env
        self.delivery_delay = delivery_delay
        self._subscribers: List[Store] = []
        self._history: List[JobEvent] = []

    def subscribe(self) -> Store:
        """Register a new subscriber; returns its event queue."""
        queue = Store(self.env)
        self._subscribers.append(queue)
        return queue

    def publish(self, job_id: str, name: str, **meta: Any) -> JobEvent:
        """Emit an event; it reaches subscribers after ``delivery_delay``."""
        event = JobEvent(job_id=job_id, name=name, time=self.env.now, meta=meta)
        self._history.append(event)
        if self._subscribers:
            if self.delivery_delay > 0:
                self.env.schedule(self.delivery_delay, self._deliver, event)
            else:
                self._deliver(event)
        return event

    def _deliver(self, event: JobEvent) -> None:
        for queue in self._subscribers:
            queue.put(event)

    @property
    def history(self) -> List[JobEvent]:
        """All events published so far, in order."""
        return list(self._history)
