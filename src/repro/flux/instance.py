"""A Flux instance: broker, ingest, scheduler loop and dispatch lanes.

The model captures the mechanisms that determine Flux's measured
behaviour in the paper:

* **bootstrap cost** — ~20 s per instance, nearly independent of
  instance size (Fig. 7);
* **serialized ingest** — job submission RPCs funnel through the
  instance's job-manager at ``flux_ingest_cost`` per job, bounding a
  single instance near ~770 jobs/s;
* **scheduler duty cycle** — matching happens in bursts separated by
  heavy-tailed cycle gaps, the source of the large avg-vs-peak
  throughput spread the paper reports;
* **dispatch lanes** — job-shell spawns are distributed over the TBON
  overlay; lane count grows sublinearly with instance size
  (``ceil(n_nodes ** flux_lane_alpha)``), each lane sustaining
  ``flux_lane_rate`` spawns/s scaled by a per-run background-load
  factor.

Placement is real: every running job holds node slots in the
instance's :class:`~repro.platform.cluster.Allocation`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

from ..exceptions import (
    BackendError,
    JobspecError,
    NodeFailureError,
    RuntimeStartupError,
)
from ..ids import IdRegistry
from ..platform.cluster import Allocation
from ..platform.latency import LatencyModel
from ..sim import Environment, Event, Interrupt, Resource, RngStreams, Store
from .events import (
    EV_ALLOC,
    EV_EXCEPTION,
    EV_FINISH,
    EV_RELEASE,
    EV_START,
    EV_SUBMIT,
    EventStream,
)
from .jobspec import FluxJob, FluxJobState, Jobspec
from .scheduler import order_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analytics.profiler import Profiler


class InstanceState:
    """Lifecycle states of a Flux instance."""

    INIT = "INIT"
    STARTING = "STARTING"
    READY = "READY"
    FAILED = "FAILED"
    STOPPED = "STOPPED"


class FluxInstance:
    """One Flux instance managing a (partition of an) allocation."""

    def __init__(self, env: Environment, allocation: Allocation,
                 latencies: LatencyModel, rng: RngStreams,
                 instance_id: str = "", policy: str = "fcfs",
                 profiler: Optional["Profiler"] = None,
                 metrics=None, faults=None, lean: bool = False,
                 tracer=None) -> None:
        from .scheduler import make_policy

        self.env = env
        self.allocation = allocation
        self.latencies = latencies
        self.rng = rng
        self.profiler = profiler
        #: Optional live :class:`~repro.observability.spans.Tracer`;
        #: records one bootstrap span per (re)start.  Shard workers
        #: pass their own tracer and forward the closed spans at
        #: window boundaries.
        self.tracer = tracer
        #: Optional :class:`~repro.faults.FaultModel` consulted once
        #: per dispatch for injected launch failures.
        self._faults = faults
        #: Memory-lean mode (full-machine sweeps): retired jobs and the
        #: event-stream history are dropped instead of retained for
        #: post-hoc inspection.  Simulated behaviour is unaffected.
        self._lean = lean
        self.instance_id = instance_id or f"flux.{id(self):x}"
        self.policy = make_policy(policy)
        self.state = InstanceState.INIT

        self.events = EventStream(env, keep_history=not lean)
        self._ids = IdRegistry()
        self._ingest_queue: Store = Store(env)
        #: Pending queue, kept in scheduling order incrementally: the
        #: ingest loop appends (FCFS arrivals keep the order by
        #: construction) and only an out-of-order arrival or an urgency
        #: change marks it dirty, triggering one re-sort in the next
        #: scheduling cycle instead of a full sort per cycle.
        self._pending: List[FluxJob] = []
        self._pending_dirty = False
        self._ingest_seq = 0
        self._running: List[FluxJob] = []
        self._jobs: Dict[str, FluxJob] = {}
        self._run_procs: Dict[str, object] = {}
        self._wake: Optional[Event] = None
        self._alive = False
        # Incremented on every crash.  The ingest/sched loops capture
        # the epoch at spawn and exit when it moves on, so loops from a
        # pre-crash life cannot steal work after a restart.
        self._epoch = 0
        self._load_factor = 1.0

        self._lanes = Resource(
            env, capacity=self.lane_count(allocation.n_nodes, latencies))

        # Counters for introspection / tests.
        self.n_submitted = 0
        self.n_started = 0
        self.n_completed = 0
        self.n_failed = 0

        # Optional observability: per-partition queue/backlog gauges
        # and job counters, labeled by instance id.  ``None`` (the
        # default) keeps every update site a single identity check.
        self._m_queue = self._m_backlog = self._m_running = None
        self._m_jobs_completed = self._m_jobs_failed = None
        if metrics is not None:
            self._m_queue = metrics.gauge(
                "repro_flux_queue_depth",
                "jobs pending in the instance scheduler queue",
                labels=("instance",)).labels(self.instance_id)
            self._m_backlog = metrics.gauge(
                "repro_flux_backlog",
                "jobs submitted but not yet retired",
                labels=("instance",)).labels(self.instance_id)
            self._m_running = metrics.gauge(
                "repro_flux_running",
                "jobs currently holding resources",
                labels=("instance",)).labels(self.instance_id)
            # Pre-bind per-outcome children: retiring a job is a hot
            # path at full-machine scale, and resolving labels there
            # would pay a dict lookup plus tuple hashing per job.
            fam = metrics.counter(
                "repro_flux_jobs_total", "jobs retired by outcome",
                labels=("instance", "outcome"))
            self._m_jobs_completed = fam.labels(self.instance_id, "completed")
            self._m_jobs_failed = fam.labels(self.instance_id, "failed")

    # -- properties -------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.allocation.n_nodes

    @property
    def n_lanes(self) -> int:
        return self._lanes.capacity

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    @property
    def outstanding(self) -> int:
        """Jobs submitted but not yet retired (ingest + queue + running)."""
        return self.n_submitted - self.n_completed - self.n_failed

    @property
    def n_running(self) -> int:
        return len(self._running)

    @property
    def is_ready(self) -> bool:
        return self.state == InstanceState.READY

    # -- closed-form structure -----------------------------------------------
    # These two statics ARE the kernel's parameters, not copies: the
    # constructor and the dispatch path call them, and the vectorized
    # ensemble engine (repro.ensemble.vec_flux) calls the same
    # functions so its recurrence cannot drift from the DES.

    @staticmethod
    def lane_count(n_nodes: int, latencies) -> int:
        """TBON dispatch-lane fan-out for an ``n_nodes`` instance.

        Sublinear in the node count (``ceil(n ** flux_lane_alpha)``):
        the tree widens with the allocation but lane concurrency is
        bounded by the broker topology, not the core count.
        """
        return max(1, math.ceil(n_nodes ** latencies.flux_lane_alpha))

    @staticmethod
    def spawn_mean(latencies, load_factor: float) -> float:
        """Mean per-lane job-shell spawn time [s] under ``load_factor``
        (the instance's drawn background-load degradation)."""
        return 1.0 / (latencies.flux_lane_rate * load_factor)

    # -- lifecycle ------------------------------------------------------------

    def startup_delay(self) -> float:
        """One draw of the instance bootstrap time [s]."""
        lat = self.latencies
        mean = (lat.flux_startup_mean
                + lat.flux_startup_per_log2node
                * math.log2(max(1, self.n_nodes)))
        return self.rng.lognormal_latency("flux.startup", mean,
                                          cv=lat.flux_startup_cv)

    def start(self):
        """Generator: bootstrap the instance; ready when it returns."""
        if self.state != InstanceState.INIT:
            raise RuntimeStartupError(
                f"{self.instance_id}: start() called in state {self.state}")
        self.state = InstanceState.STARTING
        if self.profiler is not None:
            self.profiler.record(self.instance_id, "backend_start",
                                 kind="flux", nodes=self.n_nodes)
        boot_span = None
        if self.tracer is not None:
            boot_span = self.tracer.begin(
                f"{self.instance_id}.bootstrap", cat="bootstrap",
                kind="flux", nodes=self.n_nodes)
        yield self.env.timeout(self.startup_delay())
        lat = self.latencies
        load_mean = 1.0 / (1.0 + lat.flux_load_degradation * self.n_nodes)
        if lat.flux_load_cv > 0:
            draw = self.rng.lognormal_latency("flux.load", load_mean,
                                              cv=lat.flux_load_cv)
        else:
            draw = load_mean
        self._load_factor = min(max(draw, lat.flux_load_min),
                                lat.flux_load_max)
        self.state = InstanceState.READY
        self._alive = True
        if boot_span is not None:
            self.tracer.end(boot_span)
        self.env.process(self._ingest_loop())
        self.env.process(self._sched_loop())
        if self.profiler is not None:
            self.profiler.record(self.instance_id, "backend_ready",
                                 kind="flux", nodes=self.n_nodes,
                                 lanes=self.n_lanes,
                                 load_factor=self._load_factor)

    def shutdown(self) -> None:
        """Stop accepting and dispatching work; pending jobs get
        exception events."""
        if self.state in (InstanceState.STOPPED, InstanceState.FAILED):
            return
        self.state = InstanceState.STOPPED
        self._alive = False
        self._flush_pending("instance shutdown")
        self._kick()
        if self.profiler is not None:
            self.profiler.record(self.instance_id, "backend_stop", kind="flux")

    def crash(self, reason: str = "broker died") -> None:
        """Simulate an unexpected daemon failure (fault injection)."""
        if self.state in (InstanceState.STOPPED, InstanceState.FAILED):
            return
        self.state = InstanceState.FAILED
        self._alive = False
        self._epoch += 1
        self._flush_pending(reason, infra=True)
        for job in list(self._running):
            self._release(job)
            self._fail_job(job, reason, infra=True)
        self._running.clear()
        self._kick()
        if self.profiler is not None:
            self.profiler.record(self.instance_id, "backend_failed",
                                 kind="flux", reason=reason)

    def restart(self):
        """Generator: bring a crashed instance back up (fault recovery).

        Only legal from ``FAILED``.  Re-runs the full bootstrap, so the
        cold-start cost is a fresh draw from the startup-latency
        calibration — restarting is never free.
        """
        if self.state != InstanceState.FAILED:
            raise RuntimeStartupError(
                f"{self.instance_id}: restart() called in state {self.state}")
        self.state = InstanceState.INIT
        yield from self.start()

    def fail_node(self, node) -> None:
        """A node of this allocation went DOWN (fault injection).

        Jobs with placements on the node are killed (their held slots
        release into the node's lost pool) and pending jobs that no
        longer fit the shrunken usable capacity fail immediately, so
        the queue cannot deadlock behind an unsatisfiable head.
        """
        if self.state in (InstanceState.STOPPED, InstanceState.FAILED):
            return
        index = node.index
        for job in list(self._running):
            if not job.placements or \
                    all(pl.node_index != index for pl in job.placements):
                continue
            proc = self._run_procs.get(job.job_id)
            if proc is not None and getattr(proc, "is_alive", False):
                proc.interrupt(NodeFailureError(f"node failure: {node.name}"))
            else:  # pragma: no cover - proc already winding down
                self._retire(job, canceled=True)
                self._fail_job(job, f"node failure: {node.name}", infra=True)
        self._fail_unsatisfiable()
        self._kick()

    def _fail_unsatisfiable(self) -> None:
        """Fail pending jobs larger than the current usable capacity."""
        alloc = self.allocation
        keep: List[FluxJob] = []
        for job in self._pending:
            res = job.spec.resources
            if res.cores > alloc.usable_cores or res.gpus > alloc.usable_gpus:
                self._fail_job(job, "unsatisfiable after node failure",
                               infra=True)
            else:
                keep.append(job)
        if len(keep) != len(self._pending):
            self._pending = keep
            if self._m_queue is not None:
                self._m_queue.set(len(keep))

    def _flush_pending(self, reason: str, infra: bool = False) -> None:
        for job in list(self._pending):
            self._fail_job(job, reason, infra=infra)
        self._pending.clear()
        while True:
            spec_job = self._ingest_queue.try_get()
            if spec_job is None:
                break
            self._fail_job(spec_job, reason, infra=infra)

    def _fail_job(self, job: FluxJob, reason: str,
                  infra: bool = False) -> None:
        job.exception = reason
        job.state = FluxJobState.INACTIVE
        self.n_failed += 1
        if self._m_jobs_failed is not None:
            self._m_jobs_failed.inc()
            self._m_backlog.set(self.outstanding)
        self.events.publish(job.job_id, EV_EXCEPTION, reason=reason,
                            infra=infra)
        if self._lean:
            self._jobs.pop(job.job_id, None)

    # -- submission -----------------------------------------------------------

    def submit(self, spec: Jobspec) -> FluxJob:
        """Submit a jobspec; returns the job record immediately.

        The job is processed asynchronously by the ingest pipeline.
        Unsatisfiable jobs raise :class:`JobspecError` synchronously,
        as the real submit RPC rejects them.
        """
        if self.state != InstanceState.READY:
            raise RuntimeStartupError(
                f"{self.instance_id}: submit in state {self.state}")
        spec.validate_against(self.allocation.usable_cores,
                              self.allocation.usable_gpus)
        job = FluxJob(job_id=self._ids.next(f"{self.instance_id}.job"),
                      spec=spec, submit_time=self.env.now)
        self._jobs[job.job_id] = job
        self.n_submitted += 1
        self._ingest_queue.put(job)
        if self._m_backlog is not None:
            self._m_backlog.set(self.outstanding)
        return job

    def get_job(self, job_id: str) -> FluxJob:
        return self._jobs[job_id]

    def cancel(self, job_id: str, reason: str = "canceled") -> bool:
        """Cancel one job (pending or running).

        Returns True when the job was actually canceled; False when it
        already retired (nothing to do).  Canceled jobs emit an
        exception event, exactly as ``flux job cancel`` raises a
        ``cancel`` exception on the real system.
        """
        job = self._jobs.get(job_id)
        if job is None or job.done:
            return False
        if job in self._pending:
            self._pending.remove(job)
            self._fail_job(job, reason)
            return True
        proc = self._run_procs.get(job_id)
        if proc is not None and getattr(proc, "is_alive", False):
            proc.interrupt(reason)
            return True
        # Still in the ingest pipeline: mark it; the ingest loop drops
        # jobs that acquired an exception.
        self._fail_job(job, reason)
        return True

    def change_urgency(self, job_id: str, urgency: int) -> None:
        """Re-prioritize a pending job (``flux job urgency``)."""
        from dataclasses import replace

        if not 0 <= urgency <= 31:
            raise JobspecError(f"urgency must be in [0, 31], got {urgency}")
        job = self._jobs.get(job_id)
        if job is None or job not in self._pending:
            raise JobspecError(f"{job_id}: not pending, cannot reprioritize")
        job.spec = replace(job.spec, urgency=urgency)
        self._pending_dirty = True
        self._kick()

    def stats(self) -> Dict[str, int]:
        """Snapshot of instance counters (``flux jobs`` summary)."""
        return {
            "submitted": self.n_submitted,
            "pending": len(self._pending),
            "running": len(self._running),
            "completed": self.n_completed,
            "failed": self.n_failed,
            "free_cores": self.allocation.free_cores,
            "total_cores": self.allocation.total_cores,
        }

    # -- internal loops -------------------------------------------------------

    def _ingest_loop(self):
        """Serialized job-manager ingest: one job at a time."""
        epoch = self._epoch
        while self._alive and self._epoch == epoch:
            # Pop synchronously while the queue has backlog; only park
            # on a blocking get when it is empty.  Under load this
            # halves the event-queue round-trips of the ingest stage.
            job = self._ingest_queue.try_get()
            if job is None:
                job = yield self._ingest_queue.get()
            if not self._alive or self._epoch != epoch:
                # A loop from before a crash must not steal work from
                # the restarted instance's loop: hand the job back (the
                # queue delivers FIFO to the parked live getter).
                if self._epoch != epoch and job is not None \
                        and job.exception is None:
                    self._ingest_queue.put(job)
                break
            yield self.env.timeout(self.rng.lognormal_latency(
                "flux.ingest", self.latencies.flux_ingest_cost,
                cv=self.latencies.flux_spawn_cv))
            if job.exception is not None:  # flushed while in ingest
                continue
            job.state = FluxJobState.SCHED
            self._ingest_seq += 1
            job.ingest_seq = self._ingest_seq
            pending = self._pending
            if pending and job.spec.urgency > pending[-1].spec.urgency:
                self._pending_dirty = True
            pending.append(job)
            if self._m_queue is not None:
                self._m_queue.set(len(pending))
            self.events.publish(job.job_id, EV_SUBMIT)
            self._kick()

    def _sched_loop(self):
        """Scheduler duty cycle: bursts of matching separated by gaps."""
        epoch = self._epoch
        while self._alive and self._epoch == epoch:
            if not self._pending:
                self._wake = self.env.event()
                yield self._wake
                continue
            gap = self.rng.lognormal_latency(
                "flux.cycle", self.latencies.flux_sched_cycle,
                cv=self.latencies.flux_cycle_cv)
            if gap > 0:
                yield self.env.timeout(gap)
            if not self._alive or self._epoch != epoch:
                break
            if self._pending_dirty:
                self._pending.sort(key=order_key)
                self._pending_dirty = False
            matches = self.policy.match(self._pending, self.allocation,
                                        self._running, self.env.now,
                                        presorted=True)
            if not matches:
                # Resources exhausted: sleep until a completion kicks us.
                self._wake = self.env.event()
                yield self._wake
                continue
            now = self.env.now
            for job, placements in matches:
                job.placements = placements
                job.alloc_time = now
                job.state = FluxJobState.RUN
                self._running.append(job)
                self.events.publish(job.job_id, EV_ALLOC,
                                    cores=job.spec.resources.cores,
                                    gpus=job.spec.resources.gpus)
                self._run_procs[job.job_id] = self.env.process(
                    self._dispatch(job))
            # Drop all matched jobs from the pending queue.  FCFS (and
            # usually backfill) matches a prefix of the ordered queue,
            # which a single slice-delete removes; otherwise rebuild in
            # one pass (one-by-one removal is quadratic in queue depth).
            pending = self._pending
            n = len(matches)
            if (len(pending) >= n
                    and all(pending[i] is matches[i][0] for i in range(n))):
                del pending[:n]
            else:
                matched = {id(job) for job, _ in matches}
                self._pending = [j for j in pending if id(j) not in matched]
            if self._m_queue is not None:
                self._m_queue.set(len(self._pending))
                self._m_running.set(len(self._running))

    def _dispatch(self, job: FluxJob):
        """Spawn the job shell through a dispatch lane, then run it."""
        try:
            with self._lanes.request(direct=True) as lane:
                if not lane.triggered:
                    yield lane
                yield self.env.timeout(self.rng.lognormal_latency(
                    "flux.spawn",
                    self.spawn_mean(self.latencies, self._load_factor),
                    cv=self.latencies.flux_spawn_cv))
            if not self._alive or job.exception is not None:
                self._retire(job, canceled=True)
                return
            if self._faults is not None:
                fault = self._faults.launch_outcome("flux")
                if fault is not None:
                    if fault.delay > 0:
                        yield self.env.timeout(fault.delay)
                    if job.exception is not None:
                        # Crashed while the launch was hanging: the
                        # crash already retired and failed the job.
                        self._run_procs.pop(job.job_id, None)
                        return
                    self._retire(job, canceled=True)
                    self._fail_job(job, fault.reason, infra=True)
                    return
            job.start_time = self.env.now
            self.n_started += 1
            self.events.publish(job.job_id, EV_START)
            if job.spec.attributes.get("fail"):
                # Fault injection: payload crashes right after start.
                self._retire(job, canceled=True)
                self._fail_job(job, "task payload failed")
                return
            if job.spec.duration > 0:
                yield self.env.timeout(job.spec.duration)
        except Interrupt as interrupt:
            # Job canceled mid-flight (flux job cancel) or killed by an
            # injected node/backend failure.
            cause = interrupt.cause
            infra = isinstance(cause, (NodeFailureError, BackendError))
            self._retire(job, canceled=True)
            self._fail_job(job, str(cause or "canceled"), infra=infra)
            return
        if job.exception is not None:
            # Failed while sleeping (instance crash): already retired.
            self._run_procs.pop(job.job_id, None)
            return
        job.finish_time = self.env.now
        job.state = FluxJobState.CLEANUP
        self.n_completed += 1
        if self._m_jobs_completed is not None:
            self._m_jobs_completed.inc()
            self._m_backlog.set(self.outstanding)
        # Real flux event order: finish, then release/free.
        self.events.publish(job.job_id, EV_FINISH, status=0)
        self._retire(job, canceled=False)
        job.state = FluxJobState.INACTIVE

    def _retire(self, job: FluxJob, canceled: bool) -> None:
        """Release resources and drop run bookkeeping for a job."""
        had_placements = bool(job.placements)
        self._release(job)
        if job in self._running:
            self._running.remove(job)
            if self._m_running is not None:
                self._m_running.set(len(self._running))
        self._run_procs.pop(job.job_id, None)
        if had_placements:
            # Mirror flux's resource-release event so subscribers can
            # track the instance's free pool without polling.
            self.events.publish(job.job_id, EV_RELEASE,
                                free_cores=self.allocation.free_cores)
        if self._lean:
            self._jobs.pop(job.job_id, None)
        self._kick()

    def _release(self, job: FluxJob) -> None:
        if job.placements:
            self.allocation.release(job.placements)
            job.placements = None

    def _kick(self) -> None:
        """Wake the scheduler loop if it is sleeping."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
