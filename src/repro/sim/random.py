"""Deterministic, named random-number streams.

Every stochastic component (Flux RPC jitter, Dragon spawn latency,
Slurm controller service time, ...) draws from its *own* named
substream derived from a single experiment seed via
:class:`numpy.random.SeedSequence`.  Adding a new component therefore
never perturbs the draws seen by existing components, which keeps
experiment results comparable across code revisions.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStreams:
    """A family of independent, reproducible RNG streams.

    Parameters
    ----------
    seed:
        Root seed for the whole experiment.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable mapping from the stream name to spawn keys: crc32 is
            # deterministic across processes and Python versions (unlike
            # the builtin hash()).
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def lognormal_latency(
        self, name: str, mean: float, cv: float = 0.25
    ) -> float:
        """One lognormal latency draw with the given mean and coefficient
        of variation — the canonical service-time noise model used by all
        substrate components.
        """
        if mean <= 0.0:
            return 0.0
        rng = self.stream(name)
        sigma2 = np.log(1.0 + cv * cv)
        mu = np.log(mean) - 0.5 * sigma2
        return float(rng.lognormal(mean=mu, sigma=np.sqrt(sigma2)))

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw from ``[low, high)``."""
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean."""
        if mean <= 0.0:
            return 0.0
        return float(self.stream(name).exponential(mean))
