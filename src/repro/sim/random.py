"""Deterministic, named random-number streams.

Every stochastic component (Flux RPC jitter, Dragon spawn latency,
Slurm controller service time, ...) draws from its *own* named
substream derived from a single experiment seed via
:class:`numpy.random.SeedSequence`.  Adding a new component therefore
never perturbs the draws seen by existing components, which keeps
experiment results comparable across code revisions.
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, List

import numpy as np


def _plain(value):
    """Collapse numpy scalars inside a ``bit_generator.state`` dict to
    builtin Python types so the document is JSON-serializable."""
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


class RngStreams:
    """A family of independent, reproducible RNG streams.

    Parameters
    ----------
    seed:
        Root seed for the whole experiment.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        # (name, mean, cv) -> (mu, sigma) for lognormal_latency.
        # Experiments use a handful of distinct latency parameters but
        # draw from them hundreds of thousands of times; caching skips
        # two log() and a sqrt() per draw without changing any value.
        self._lognorm_params: Dict[tuple, tuple] = {}
        # name -> prefetched standard normals (reversed; pop from the
        # end).  A lognormal draw is exp(mu + sigma*z) with z one
        # standard normal from the stream, so batching the z draws
        # yields bitwise-identical values to one-at-a-time generation
        # while amortizing the numpy call overhead — even when draws
        # with different (mean, cv) interleave on the same stream.
        self._norm_buf: Dict[str, List[float]] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable mapping from the stream name to spawn keys: crc32 is
            # deterministic across processes and Python versions (unlike
            # the builtin hash()).
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def lognormal_latency(
        self, name: str, mean: float, cv: float = 0.25
    ) -> float:
        """One lognormal latency draw with the given mean and coefficient
        of variation — the canonical service-time noise model used by all
        substrate components.
        """
        if mean <= 0.0:
            return 0.0
        entry = self._lognorm_params.get((name, mean, cv))
        if entry is None:
            sigma2 = np.log(1.0 + cv * cv)
            entry = (np.log(mean) - 0.5 * sigma2, np.sqrt(sigma2))
            self._lognorm_params[(name, mean, cv)] = entry
        mu, sigma = entry
        buf = self._norm_buf.get(name)
        if not buf:
            buf = self.stream(name).standard_normal(512)[::-1].tolist()
            self._norm_buf[name] = buf
        return math.exp(mu + sigma * buf.pop())

    def lognormal_latency_batch(
        self, name: str, mean: float, cv: float = 0.25, n: int = 1
    ) -> List[float]:
        """``n`` lognormal latency draws, bitwise-identical to ``n``
        sequential :meth:`lognormal_latency` calls.

        Consumes the same per-stream prefetch buffer in the same order
        (including ``math.exp`` for the transform, so not even the last
        ulp differs), which is what lets the bulk task pipeline admit a
        whole wave while staying byte-compatible with per-task
        submission traces.
        """
        if n <= 0:
            return []
        if mean <= 0.0:
            return [0.0] * n
        entry = self._lognorm_params.get((name, mean, cv))
        if entry is None:
            sigma2 = np.log(1.0 + cv * cv)
            entry = (np.log(mean) - 0.5 * sigma2, np.sqrt(sigma2))
            self._lognorm_params[(name, mean, cv)] = entry
        mu, sigma = entry
        exp = math.exp
        out: List[float] = []
        buf = self._norm_buf.get(name)
        while len(out) < n:
            if not buf:
                buf = self.stream(name).standard_normal(512)[::-1].tolist()
                self._norm_buf[name] = buf
            take = min(n - len(out), len(buf))
            # Slice from the end and reverse: the exact values (and
            # order) that ``take`` individual pops would have returned.
            chunk = buf[-take:]
            del buf[-take:]
            out.extend(exp(mu + sigma * z) for z in reversed(chunk))
        return out

    def capture_state(self) -> dict:
        """Snapshot every stream's exact generator state.

        Returns a JSON-serializable document: per-stream
        ``bit_generator.state`` dicts (PCG64 state words are plain
        Python ints) plus the prefetched standard-normal buffers,
        which are part of the drawing state — a stream with 100
        buffered normals must resume with those same 100 values.
        ``_lognorm_params`` is deliberately absent: it is a pure
        cache, recomputed bit-identically on demand.
        """
        return {
            "seed": self.seed,
            "streams": {
                name: _plain(gen.bit_generator.state)
                for name, gen in sorted(self._streams.items())
            },
            "norm_buf": {
                name: list(buf)
                for name, buf in sorted(self._norm_buf.items())
                if buf
            },
        }

    def restore_state(self, doc: dict) -> None:
        """Restore the exact drawing state captured by
        :meth:`capture_state`; subsequent draws continue bitwise where
        the captured instance left off."""
        if int(doc.get("seed", self.seed)) != self.seed:
            raise ValueError(
                f"state captured for seed {doc.get('seed')!r}, "
                f"this family uses seed {self.seed}")
        self._streams.clear()
        self._norm_buf.clear()
        self._lognorm_params.clear()
        for name, state in doc.get("streams", {}).items():
            gen = self.stream(name)
            gen.bit_generator.state = state
        for name, buf in doc.get("norm_buf", {}).items():
            self._norm_buf[name] = [float(z) for z in buf]

    def state_digest(self) -> str:
        """Canonical sha256 over :meth:`capture_state` — the compact
        form checkpoints store for replay-drift verification."""
        import hashlib
        import json

        payload = json.dumps(self.capture_state(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw from ``[low, high)``."""
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean."""
        if mean <= 0.0:
            return 0.0
        return float(self.stream(name).exponential(mean))

    def weibull(self, name: str, mean: float, shape: float = 1.5) -> float:
        """One Weibull draw parameterized by its *mean* (the scale is
        derived as ``mean / gamma(1 + 1/shape)``), matching how MTBF
        figures are quoted in failure studies."""
        if mean <= 0.0:
            return 0.0
        scale = mean / math.gamma(1.0 + 1.0 / shape)
        return float(scale * self.stream(name).weibull(shape))


class StreamCursor:
    """Lazy forward cursor over one stream's lognormal draw sequence.

    Some consumers need "the next draw" an *unbounded* number of times
    — the flux scheduler's cycle gaps, whose count depends on the very
    timeline the draws produce.  Pre-drawing a fixed batch would either
    waste draws or (worse) under-shoot and shift the stream.  The
    cursor extends in ``chunk``-sized batches instead; because
    :meth:`RngStreams.lognormal_latency_batch` is bitwise-identical to
    sequential draws regardless of how they are chunked, the sequence
    this cursor yields is independent of ``chunk`` and identical to
    what a simulation loop calling :meth:`lognormal_latency` once per
    cycle would have consumed.
    """

    __slots__ = ("_rng", "_name", "_mean", "_cv", "_chunk", "_buf", "_pos",
                 "n_drawn")

    def __init__(self, rng: "RngStreams", name: str, mean: float,
                 cv: float = 0.25, chunk: int = 256) -> None:
        self._rng = rng
        self._name = name
        self._mean = mean
        self._cv = cv
        self._chunk = max(1, chunk)
        self._buf: List[float] = []
        self._pos = 0
        #: Total draws consumed — the cycle count, for diagnostics.
        self.n_drawn = 0

    def next(self) -> float:
        """The next draw from the stream (extends lazily)."""
        if self._pos >= len(self._buf):
            self._buf = self._rng.lognormal_latency_batch(
                self._name, self._mean, cv=self._cv, n=self._chunk)
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        self.n_drawn += 1
        return value


class ScopedRng:
    """A view of an :class:`RngStreams` with every stream name prefixed.

    Shard workers host several Flux instances on one local
    :class:`RngStreams`; prefixing each instance's stream names with its
    globally-unique instance id (``"agent.0000.flux.003/flux.cycle"``)
    makes the draws a pure function of ``(seed, instance id, stream
    name)`` — independent of how instances are grouped into shards,
    which is what makes shard traces invariant under the worker count.

    Implements the full :class:`RngStreams` drawing API so components
    take either interchangeably.
    """

    __slots__ = ("_base", "_prefix")

    def __init__(self, base: RngStreams, scope: str) -> None:
        self._base = base
        self._prefix = scope + "/"

    @property
    def seed(self) -> int:
        return self._base.seed

    def stream(self, name: str) -> np.random.Generator:
        return self._base.stream(self._prefix + name)

    def lognormal_latency(
        self, name: str, mean: float, cv: float = 0.25
    ) -> float:
        return self._base.lognormal_latency(self._prefix + name, mean, cv)

    def lognormal_latency_batch(
        self, name: str, mean: float, cv: float = 0.25, n: int = 1
    ) -> List[float]:
        return self._base.lognormal_latency_batch(
            self._prefix + name, mean, cv, n)

    def uniform(self, name: str, low: float, high: float) -> float:
        return self._base.uniform(self._prefix + name, low, high)

    def exponential(self, name: str, mean: float) -> float:
        return self._base.exponential(self._prefix + name, mean)

    def weibull(self, name: str, mean: float, shape: float = 1.5) -> float:
        return self._base.weibull(self._prefix + name, mean, shape)
