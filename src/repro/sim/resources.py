"""Shared-resource primitives for simulated components.

Two primitives cover every synchronization need in the runtime models:

:class:`Resource`
    A counted semaphore with FIFO waiters.  Used, e.g., for the
    platform-wide srun concurrency ceiling (112 slots on the
    Frontier-like profile) and for serialized controller pipelines.

:class:`Store`
    An unbounded (or capacity-bounded) FIFO queue of Python objects
    with blocking ``get``.  Used for message channels (Flux RPC
    queues, Dragon shared-memory channels, ZeroMQ-like pipes).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from ..exceptions import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Environment


class Request(Event):
    """Pending acquisition of one :class:`Resource` slot.

    Supports the context-manager protocol so model code can write::

        with resource.request() as req:
            yield req
            ...  # slot held here
    """

    __slots__ = ("resource", "_released")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self._released = False

    def release(self) -> None:
        """Give the slot back (idempotent)."""
        if not self._released:
            self._released = True
            self.resource._release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class Resource:
    """A counted semaphore with FIFO waiters."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._waiters: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self, direct: bool = False) -> Request:
        """Ask for one slot; the returned event fires when granted.

        With ``direct=True`` an immediately-grantable request is
        returned already *processed* (``triggered`` and done) instead
        of being round-tripped through the event queue.  Callers using
        the ``if not req.triggered: yield req`` idiom save one queue
        entry per uncontended acquisition; callers that always yield
        must keep the default (the deferred grant preserves the
        kernel's ordering of the resumption).
        """
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            if direct:
                req._ok = True
                req._value = None
                req.callbacks = None
            else:
                req.succeed()
        else:
            self._waiters.append(req)
        return req

    def _release(self, req: Request) -> None:
        try:
            self._users.remove(req)
        except ValueError:
            # Released before being granted: cancel the wait.
            try:
                self._waiters.remove(req)
            except ValueError:
                pass
            return
        if self._waiters and len(self._users) < self.capacity:
            nxt = self._waiters.popleft()
            self._users.append(nxt)
            nxt.succeed()

    def set_capacity(self, capacity: int) -> None:
        """Resize the semaphore (fault injection: a worker pool losing
        or regaining a node's worth of slots).

        Shrinking below the held count is allowed — outstanding holds
        keep their slots and releases simply stop re-granting until the
        count drops under the new capacity.  Growing grants as many
        FIFO waiters as the new headroom admits.
        """
        if capacity < 0:
            raise SimulationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        while self._waiters and len(self._users) < self.capacity:
            nxt = self._waiters.popleft()
            self._users.append(nxt)
            nxt.succeed()


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`."""

    __slots__ = ()


class Store:
    """FIFO queue of items with blocking ``get`` and optional capacity."""

    def __init__(self, env: "Environment", capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``; completes synchronously.

        When the store is at capacity the put *fails* immediately with
        :class:`SimulationError` — bounded stores model fixed-size
        shared-memory rings where overflow is a programming error in
        the surrounding flow control, not a condition to silently
        absorb.

        Unbounded puts never block, so no event is returned (and none
        is allocated): at ~100k puts per experiment the formerly
        returned always-succeeded event was pure queue ballast.
        """
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise SimulationError("store is full")
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> StoreGet:
        """Pop the oldest item; blocks (as an event) while empty."""
        ev = StoreGet(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Any:
        """Non-blocking pop; returns ``None`` when empty."""
        return self._items.popleft() if self._items else None
