"""The discrete-event simulation kernel.

:class:`Environment` owns the simulation clock and the pending-event
queue.  Time advances only when :meth:`Environment.run` pops the next
scheduled event; between events, time is frozen.  This lets the
runtime-system models execute workloads of hundreds of thousands of
180-second sleep tasks on a simulated 1024-node machine in
milliseconds of wall time while preserving all ordering, queueing and
contention behaviour.

Determinism
-----------
Events scheduled for the same simulated time are processed in
``(priority, insertion order)``, so two runs of the same program with
the same RNG seeds produce byte-identical traces.  This property is
exercised by the property-based tests in ``tests/sim``.

Performance
-----------
``run`` is the hottest function in the whole codebase (every
simulated event passes through it), so its three loops inline the
single-event dispatch instead of calling :meth:`step`, bind
``heapq.heappop`` and the queue to locals, and branch on the
queue-entry shape directly.  ``step`` remains the readable,
fully-checked reference implementation used by external callers and
tests.  See ``docs/MODEL.md`` ("Performance model of the simulator
itself") for the full picture.
"""

from __future__ import annotations

from heapq import heappop
from typing import Any, List, Optional, Tuple

from ..exceptions import SimulationError
from .events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    Timeout,
    URGENT,
    _Deferred,
    push_entry5,
    push_event,
)
from .process import Process, ProcessGenerator, _INIT

#: Queue entries: (time, priority, sequence, event).  Two entry kinds
#: carry a 5th marker element and no Event at position 3: process
#: bootstraps (marker ``True``, see ``_enqueue_bootstrap``) and deferred
#: callbacks (marker ``False``, see ``schedule_callback``).
_QueueItem = Tuple[float, int, int, Event]

#: Dispatch count between firings of the telemetry probe
#: (``Environment._probe``) inside the instrumented loops.  The probe
#: itself rate-limits on wall time; the stride only bounds how often
#: that wall-clock check runs, so it can stay coarse.
PROBE_STRIDE = 4096


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock, in seconds.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[_QueueItem] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Optional kernel instrumentation (see
        #: :class:`repro.observability.metrics.KernelInstrument`).
        #: ``None`` keeps the fast dispatch loops below untouched; the
        #: check happens once per :meth:`run` call, not per event.
        self._instrument = None
        #: Optional zero-argument telemetry heartbeat, called every
        #: :data:`PROBE_STRIDE` dispatches by the *instrumented* loops
        #: only (telemetry implies observability).  The probe must be
        #: read-only: no scheduling, no RNG, no clock writes — the
        #: determinism tests pin that instrumented runs with a probe
        #: attached stay byte-identical.
        self._probe = None

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that fires once all ``events`` have succeeded."""
        return AllOf(self, list(events))

    def any_of(self, events) -> AnyOf:
        """Event that fires once any of ``events`` has succeeded."""
        return AnyOf(self, list(events))

    def schedule(self, delay: float, callback, *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds; returns the event.

        Negative delays are rejected by :class:`Timeout` itself — the
        single validation point for all time-based scheduling.
        """
        ev = Timeout(self, delay)
        ev.callbacks.append(_Deferred(callback, args))
        return ev

    def schedule_callback(self, delay: float, callback, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` seconds, eventlessly.

        The fire-and-forget variant of :meth:`schedule` for hot paths
        (event-stream deliveries): the queue entry carries the bound
        callback directly, so no :class:`Timeout` and no callback list
        are allocated.  Use :meth:`schedule` when the caller needs the
        returned event (to wait on or to add further callbacks).
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        push_entry5(self, delay, NORMAL, _Deferred(callback, args), False)

    # -- kernel internals ----------------------------------------------------

    def _enqueue_event(self, event: Event, priority: int, delay: float = 0.0) -> None:
        push_event(self, delay, priority, event)

    def _enqueue_bootstrap(self, process: Process) -> None:
        """Schedule a process's first resume without allocating an Event.

        The queue entry carries the process itself plus a length-5
        marker; dispatch resumes the generator with the shared ``_INIT``
        sentinel (see :func:`~repro.sim.events.push_entry5`).
        """
        push_entry5(self, 0.0, URGENT, process, True)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def snapshot(self) -> dict:
        """Structural snapshot of kernel state for checkpoint headers.

        Live Python generator frames make the event heap unpicklable,
        so a checkpoint cannot *serialize* it; what it can do is pin
        its deterministic shape: the clock, the global sequence
        counter, and a digest over every pending entry's
        ``(time, priority, seq, kind)`` signature.  Two runs of the
        same seed that agree on this snapshot at the same sim time
        have dispatched the same events in the same order — which is
        what resume-by-replay verifies against (see
        ``docs/RESILIENCE.md``).  Read-only: does not perturb the
        queue, the clock, or event ordering.
        """
        import hashlib

        signatures = []
        for entry in self._queue:
            if len(entry) == 5:
                kind = "bootstrap" if entry[4] else "callback"
            else:
                kind = "event"
            signatures.append((entry[0], entry[1], entry[2], kind))
        signatures.sort()
        digest = hashlib.sha256(
            repr(signatures).encode("utf-8")).hexdigest()
        return {
            "now": self._now,
            "seq": self._seq,
            "queue_len": len(self._queue),
            "queue_digest": digest,
        }

    def step(self) -> None:
        """Process exactly one event, advancing the clock to its time."""
        if not self._queue:
            raise SimulationError("no more events")
        entry = heappop(self._queue)
        when = entry[0]
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when
        event = entry[3]
        if len(entry) == 5:
            if entry[4]:
                # Process bootstrap: resume the generator directly.
                event._resume(_INIT)
            else:
                # Deferred callback (schedule_callback): invoke as-is.
                event(None)
            return
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for cb in callbacks:
            cb(event)
        if event._ok is False and not callbacks and not event._defused:
            # A failure nobody waited for: surface it instead of silently
            # swallowing a crashed process.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time) or an :class:`Event` (run until
        it is processed, returning its value).
        """
        # The dispatch body is intentionally inlined in each loop (and
        # must match step() semantically): at ~1e6 events/s of kernel
        # throughput, a method call per event costs double-digit
        # percentages of total runtime.
        if self._instrument is not None:
            return self._run_instrumented(until)
        queue = self._queue
        pop = heappop

        if until is None:
            while queue:
                entry = pop(queue)
                self._now = entry[0]
                event = entry[3]
                if len(entry) == 5:
                    if entry[4]:
                        event._resume(_INIT)
                    else:
                        event(None)
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                for cb in callbacks:
                    cb(event)
                if event._ok is False and not callbacks and not event._defused:
                    raise event._value
            return None

        if isinstance(until, Event):
            stop = until
            while stop.callbacks is not None:  # i.e. not yet processed
                if not queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)"
                    )
                entry = pop(queue)
                self._now = entry[0]
                event = entry[3]
                if len(entry) == 5:
                    if entry[4]:
                        event._resume(_INIT)
                    else:
                        event(None)
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                for cb in callbacks:
                    cb(event)
                if event._ok is False and not callbacks and not event._defused:
                    raise event._value
            if stop._ok:
                return stop._value
            if isinstance(stop._value, BaseException):
                raise stop._value
            raise SimulationError(f"awaited event failed: {stop._value!r}")

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon} (already at {self._now})"
            )
        while queue and queue[0][0] <= horizon:
            entry = pop(queue)
            self._now = entry[0]
            event = entry[3]
            if len(entry) == 5:
                if entry[4]:
                    event._resume(_INIT)
                else:
                    event(None)
                continue
            callbacks = event.callbacks
            event.callbacks = None
            for cb in callbacks:
                cb(event)
            if event._ok is False and not callbacks and not event._defused:
                raise event._value
        if horizon > self._now:
            # Only move the clock forward; run(until=now) with nothing
            # left to do must leave the clock bit-for-bit untouched.
            self._now = horizon
        return None

    def run_bounded(self, horizon: float, stop: Optional[Event] = None) -> bool:
        """Run until ``horizon``, stopping early once ``stop`` is processed.

        The shard coordinator's window primitive: like ``run(until=
        horizon)``, but when ``stop`` is given the loop exits the moment
        that event has been processed — without advancing the clock to
        the horizon — exactly where ``run(until=stop)`` would have left
        it.  Unlike ``run(until=Event)``, an empty queue is *not* a
        deadlock here: more events may arrive from outside the kernel
        (shard workers) between windows, so deadlock detection belongs
        to the caller.  Returns ``True`` iff ``stop`` was processed.
        """
        if stop is None:
            self.run(horizon)
            return False
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon} (already at {self._now})"
            )
        if self._instrument is not None:
            return self._run_bounded_instrumented(horizon, stop)
        queue = self._queue
        pop = heappop
        while queue and queue[0][0] <= horizon:
            if stop.callbacks is None:
                return True
            entry = pop(queue)
            self._now = entry[0]
            event = entry[3]
            if len(entry) == 5:
                if entry[4]:
                    event._resume(_INIT)
                else:
                    event(None)
                continue
            callbacks = event.callbacks
            event.callbacks = None
            for cb in callbacks:
                cb(event)
            if event._ok is False and not callbacks and not event._defused:
                raise event._value
        if stop.callbacks is None:
            return True
        if horizon > self._now:
            self._now = horizon
        return False

    def _run_bounded_instrumented(self, horizon: float, stop: Event) -> bool:
        """Metered twin of :meth:`run_bounded` (stop-event case only)."""
        from time import perf_counter

        ins = self._instrument
        queue = self._queue
        pop = heappop
        n_events = n_bootstraps = n_callbacks = 0
        depth_max = depth_last = 0
        depth_min = -1
        sim0 = self._now
        wall0 = perf_counter()
        probe = self._probe
        # inf sentinel: with no probe the countdown never reaches zero,
        # so the per-event cost is one subtract and one compare.
        stride = PROBE_STRIDE if probe is not None else float("inf")
        tick = stride
        try:
            while queue and queue[0][0] <= horizon:
                if stop.callbacks is None:
                    return True
                tick -= 1.0
                if tick <= 0.0:
                    probe()
                    tick = stride
                depth_last = len(queue)
                if depth_last > depth_max:
                    depth_max = depth_last
                if depth_min < 0 or depth_last < depth_min:
                    depth_min = depth_last
                entry = pop(queue)
                self._now = entry[0]
                event = entry[3]
                if len(entry) == 5:
                    if entry[4]:
                        n_bootstraps += 1
                        event._resume(_INIT)
                    else:
                        n_callbacks += 1
                        event(None)
                    continue
                n_events += 1
                callbacks = event.callbacks
                event.callbacks = None
                for cb in callbacks:
                    cb(event)
                if event._ok is False and not callbacks and not event._defused:
                    raise event._value
            if stop.callbacks is None:
                return True
            if horizon > self._now:
                self._now = horizon
            return False
        finally:
            ins.flush(n_events, n_bootstraps, n_callbacks,
                      depth_max, depth_min, depth_last)
            ins.account(self._now - sim0, perf_counter() - wall0)

    def _run_instrumented(self, until: Optional[Any] = None) -> Any:
        """The metered twin of :meth:`run` (observability enabled).

        Mirrors ``run``'s inlined dispatch loops exactly — nothing here
        touches event ordering, RNG state or the clock beyond what
        ``run`` does, so instrumented runs produce byte-identical
        traces.  The metering itself is O(1) per ``run()`` call, not
        per event: kind counts and queue-depth extremes accumulate in
        plain locals and are folded into the registry once, via
        :meth:`KernelInstrument.flush`, when the loop exits.
        """
        from time import perf_counter

        ins = self._instrument
        queue = self._queue
        pop = heappop
        n_events = n_bootstraps = n_callbacks = 0
        depth_max = depth_last = 0
        depth_min = -1  # -1 = no event dispatched yet
        sim0 = self._now
        wall0 = perf_counter()
        probe = self._probe
        # inf sentinel: with no probe the countdown never reaches zero,
        # so the per-event cost is one subtract and one compare.
        stride = PROBE_STRIDE if probe is not None else float("inf")
        tick = stride
        try:
            if until is None:
                while queue:
                    tick -= 1.0
                    if tick <= 0.0:
                        probe()
                        tick = stride
                    depth_last = len(queue)
                    if depth_last > depth_max:
                        depth_max = depth_last
                    if depth_min < 0 or depth_last < depth_min:
                        depth_min = depth_last
                    entry = pop(queue)
                    self._now = entry[0]
                    event = entry[3]
                    if len(entry) == 5:
                        if entry[4]:
                            n_bootstraps += 1
                            event._resume(_INIT)
                        else:
                            n_callbacks += 1
                            event(None)
                        continue
                    n_events += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for cb in callbacks:
                        cb(event)
                    if event._ok is False and not callbacks and not event._defused:
                        raise event._value
                return None

            if isinstance(until, Event):
                stop = until
                while stop.callbacks is not None:
                    if not queue:
                        raise SimulationError(
                            "simulation ran out of events before the "
                            "awaited event triggered (deadlock?)"
                        )
                    tick -= 1.0
                    if tick <= 0.0:
                        probe()
                        tick = stride
                    depth_last = len(queue)
                    if depth_last > depth_max:
                        depth_max = depth_last
                    if depth_min < 0 or depth_last < depth_min:
                        depth_min = depth_last
                    entry = pop(queue)
                    self._now = entry[0]
                    event = entry[3]
                    if len(entry) == 5:
                        if entry[4]:
                            n_bootstraps += 1
                            event._resume(_INIT)
                        else:
                            n_callbacks += 1
                            event(None)
                        continue
                    n_events += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for cb in callbacks:
                        cb(event)
                    if event._ok is False and not callbacks and not event._defused:
                        raise event._value
                if stop._ok:
                    return stop._value
                if isinstance(stop._value, BaseException):
                    raise stop._value
                raise SimulationError(
                    f"awaited event failed: {stop._value!r}")

            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"cannot run until {horizon} (already at {self._now})"
                )
            while queue and queue[0][0] <= horizon:
                tick -= 1.0
                if tick <= 0.0:
                    probe()
                    tick = stride
                depth_last = len(queue)
                if depth_last > depth_max:
                    depth_max = depth_last
                if depth_min < 0 or depth_last < depth_min:
                    depth_min = depth_last
                entry = pop(queue)
                self._now = entry[0]
                event = entry[3]
                if len(entry) == 5:
                    if entry[4]:
                        n_bootstraps += 1
                        event._resume(_INIT)
                    else:
                        n_callbacks += 1
                        event(None)
                    continue
                n_events += 1
                callbacks = event.callbacks
                event.callbacks = None
                for cb in callbacks:
                    cb(event)
                if event._ok is False and not callbacks and not event._defused:
                    raise event._value
            if horizon > self._now:
                self._now = horizon
            return None
        finally:
            ins.flush(n_events, n_bootstraps, n_callbacks,
                      depth_max, depth_min, depth_last)
            ins.account(self._now - sim0, perf_counter() - wall0)
