"""The discrete-event simulation kernel.

:class:`Environment` owns the simulation clock and the pending-event
queue.  Time advances only when :meth:`Environment.run` pops the next
scheduled event; between events, time is frozen.  This lets the
runtime-system models execute workloads of hundreds of thousands of
180-second sleep tasks on a simulated 1024-node machine in
milliseconds of wall time while preserving all ordering, queueing and
contention behaviour.

Determinism
-----------
Events scheduled for the same simulated time are processed in
``(priority, insertion order)``, so two runs of the same program with
the same RNG seeds produce byte-identical traces.  This property is
exercised by the property-based tests in ``tests/sim``.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from ..exceptions import SimulationError
from .events import AllOf, AnyOf, Event, NORMAL, Timeout
from .process import Process, ProcessGenerator

#: Queue entries: (time, priority, sequence, event)
_QueueItem = Tuple[float, int, int, Event]


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock, in seconds.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[_QueueItem] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that fires once all ``events`` have succeeded."""
        return AllOf(self, list(events))

    def any_of(self, events) -> AnyOf:
        """Event that fires once any of ``events`` has succeeded."""
        return AnyOf(self, list(events))

    def schedule(self, delay: float, callback, *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds; returns the event."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        ev = Timeout(self, delay)
        assert ev.callbacks is not None
        ev.callbacks.append(lambda _ev: callback(*args))
        return ev

    # -- kernel internals ----------------------------------------------------

    def _enqueue_event(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to its time."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for cb in callbacks:
            cb(event)
        if (
            event._ok is False
            and not callbacks
            and not getattr(event, "_defused", False)
        ):
            # A failure nobody waited for: surface it instead of silently
            # swallowing a crashed process.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time) or an :class:`Event` (run until
        it is processed, returning its value).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)"
                    )
                self.step()
            if stop._ok:
                return stop._value
            if isinstance(stop._value, BaseException):
                raise stop._value
            raise SimulationError(f"awaited event failed: {stop._value!r}")

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon} (already at {self._now})"
            )
        while self._queue and self.peek() <= horizon:
            self.step()
        self._now = horizon
        return None
