"""Periodic sampling of simulation state into time series.

Tests and examples frequently want "sample X every N seconds while
the simulation runs" (peak concurrency, queue depths, free cores).
:class:`Monitor` packages that pattern: register named probes, and it
samples them on a fixed cadence until stopped or until the predicate
says the run is over.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Environment


class Monitor:
    """Samples named probes every ``interval`` simulated seconds.

    ``spill_dir`` turns on streaming mode for long full-machine runs:
    whole sweeps are flushed to chunked JSONL files (profile record
    format) once ``spill_threshold`` samples are buffered, bounding
    RSS; queries lazily re-read the chunks and :meth:`export` output
    is byte-identical to the in-memory monitor's.  Values must be
    JSON-representable to round-trip exactly (numbers — the typical
    probe output — always do).
    """

    def __init__(self, env: "Environment", interval: float = 1.0,
                 spill_dir=None, spill_threshold: int = 100_000) -> None:
        if interval <= 0:
            raise SimulationError(f"interval must be > 0, got {interval}")
        self.env = env
        self.interval = interval
        self._probes: Dict[str, Callable[[], Any]] = {}
        self._samples: Dict[str, List[Tuple[float, Any]]] = {}
        self._running = False
        self._stop_when: Optional[Callable[[], bool]] = None
        from pathlib import Path

        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._spill_threshold = (max(1, int(spill_threshold))
                                 if spill_dir is not None else float("inf"))
        self._chunks: List[Any] = []
        self._n_buffered = 0

    # -- spilling ----------------------------------------------------------

    def _spill(self) -> None:
        """Flush buffered sweeps to the next chunk file.

        Only called between sweeps, so every chunk holds whole sweeps:
        concatenated chunks plus the tail reproduce exactly the
        time-sorted, probe-registration-ordered record stream
        :meth:`export` writes.
        """
        if not self._n_buffered:
            return
        import json

        from ..analytics.export import _sanitize

        self._spill_dir.mkdir(parents=True, exist_ok=True)
        path = self._spill_dir / f"monitor-{len(self._chunks):06d}.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            for t, name, v in self._sorted_tail():
                record = {"time": t, "entity": f"monitor.{name}",
                          "name": "sample", "meta": {"value": v}}
                try:
                    line = json.dumps(record, sort_keys=True, allow_nan=False)
                except (ValueError, TypeError):
                    line = json.dumps(_sanitize(record), sort_keys=True,
                                      allow_nan=False)
                fh.write(line)
                fh.write("\n")
        self._chunks.append(path)
        for name in self._samples:
            self._samples[name] = []
        self._n_buffered = 0

    def _sorted_tail(self) -> List[Tuple[float, str, Any]]:
        """Buffered samples as (time, probe, value), time-sorted with
        probe registration order breaking ties (stable sort)."""
        records: List[Tuple[float, str, Any]] = []
        for name in self._probes:
            for t, v in self._samples[name]:
                records.append((t, name, v))
        records.sort(key=lambda r: r[0])
        return records

    def _spilled_samples(self, name: str) -> List[Tuple[float, Any]]:
        """Lazily re-read one probe's samples from the spill chunks."""
        import json

        from ..analytics.export import iter_event_lines

        entity = f"monitor.{name}"
        needle = '"entity": ' + json.dumps(entity)
        out: List[Tuple[float, Any]] = []
        for path in self._chunks:
            with path.open("r", encoding="utf-8") as fh:
                for ev in iter_event_lines(fh, contains=needle):
                    if ev.entity == entity:
                        out.append((ev.time, ev.meta["value"]))
        return out

    def probe(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a probe (must be added before :meth:`start`)."""
        if self._running:
            raise SimulationError("cannot add probes while running")
        if name in self._probes:
            raise SimulationError(f"duplicate probe {name!r}")
        self._probes[name] = fn
        self._samples[name] = []

    def start(self, stop_when: Optional[Callable[[], bool]] = None):
        """Begin sampling; returns the monitor process.

        ``stop_when`` is evaluated after each sweep; the monitor ends
        once it returns true (or runs until :meth:`stop`).
        """
        if self._running:
            raise SimulationError("monitor already running")
        if not self._probes:
            raise SimulationError("no probes registered")
        self._running = True
        self._stop_when = stop_when
        return self.env.process(self._loop())

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            for name, fn in self._probes.items():
                self._samples[name].append((self.env.now, fn()))
            self._n_buffered += len(self._probes)
            if self._n_buffered >= self._spill_threshold:
                self._spill()
            if self._stop_when is not None and self._stop_when():
                self._running = False
                return
            yield self.env.timeout(self.interval)

    # -- results ----------------------------------------------------------

    def samples(self, name: str) -> List[Tuple[float, Any]]:
        """(time, value) pairs recorded for one probe."""
        try:
            tail = self._samples[name]
        except KeyError:
            raise SimulationError(f"unknown probe {name!r}") from None
        if self._chunks:
            return self._spilled_samples(name) + list(tail)
        return list(tail)

    def values(self, name: str) -> List[Any]:
        return [v for _, v in self.samples(name)]

    def peak(self, name: str) -> Any:
        vals = self.values(name)
        if not vals:
            raise SimulationError(f"probe {name!r} has no samples")
        return max(vals)

    def mean(self, name: str) -> float:
        vals = self.values(name)
        if not vals:
            raise SimulationError(f"probe {name!r} has no samples")
        return sum(vals) / len(vals)

    def to_series(self, name: str):
        """One probe as an :class:`~repro.analytics.timeseries.Series`
        (the same shape the figure pipeline plots)."""
        import numpy as np

        from ..analytics.timeseries import Series

        samples = self.samples(name)
        times = np.asarray([t for t, _ in samples], dtype=float)
        values = np.asarray([v for _, v in samples], dtype=float)
        return Series(times, values)

    def export(self, path) -> int:
        """Write all samples as profile-format JSON lines.

        Each sample becomes one trace-event record
        (``entity="monitor.<probe>"``, ``name="sample"``, the value
        under ``meta["value"]``), with the standard schema header —
        the file loads through
        :func:`~repro.analytics.export.load_events` and merges with
        task traces in offline analysis.  Returns the number of
        samples written.
        """
        import json
        from pathlib import Path

        from ..analytics.export import (
            PROFILE_FORMAT,
            PROFILE_VERSION,
            _sanitize,
        )

        count = 0
        with Path(path).open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"format": PROFILE_FORMAT,
                                 "version": PROFILE_VERSION},
                                sort_keys=True))
            fh.write("\n")
            # Chunks hold whole sweeps already in the sorted record
            # order, so concatenating them verbatim before the sorted
            # tail reproduces the in-memory output byte for byte.
            for chunk in self._chunks:
                with chunk.open("r", encoding="utf-8") as src:
                    for line in src:
                        fh.write(line)
                        count += 1
            for t, name, v in self._sorted_tail():
                record = {"time": t, "entity": f"monitor.{name}",
                          "name": "sample", "meta": {"value": v}}
                try:
                    line = json.dumps(record, sort_keys=True,
                                      allow_nan=False)
                except (ValueError, TypeError):
                    line = json.dumps(_sanitize(record), sort_keys=True,
                                      allow_nan=False)
                fh.write(line)
                fh.write("\n")
                count += 1
        return count
