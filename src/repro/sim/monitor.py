"""Periodic sampling of simulation state into time series.

Tests and examples frequently want "sample X every N seconds while
the simulation runs" (peak concurrency, queue depths, free cores).
:class:`Monitor` packages that pattern: register named probes, and it
samples them on a fixed cadence until stopped or until the predicate
says the run is over.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Environment


class Monitor:
    """Samples named probes every ``interval`` simulated seconds."""

    def __init__(self, env: "Environment", interval: float = 1.0) -> None:
        if interval <= 0:
            raise SimulationError(f"interval must be > 0, got {interval}")
        self.env = env
        self.interval = interval
        self._probes: Dict[str, Callable[[], Any]] = {}
        self._samples: Dict[str, List[Tuple[float, Any]]] = {}
        self._running = False
        self._stop_when: Optional[Callable[[], bool]] = None

    def probe(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a probe (must be added before :meth:`start`)."""
        if self._running:
            raise SimulationError("cannot add probes while running")
        if name in self._probes:
            raise SimulationError(f"duplicate probe {name!r}")
        self._probes[name] = fn
        self._samples[name] = []

    def start(self, stop_when: Optional[Callable[[], bool]] = None):
        """Begin sampling; returns the monitor process.

        ``stop_when`` is evaluated after each sweep; the monitor ends
        once it returns true (or runs until :meth:`stop`).
        """
        if self._running:
            raise SimulationError("monitor already running")
        if not self._probes:
            raise SimulationError("no probes registered")
        self._running = True
        self._stop_when = stop_when
        return self.env.process(self._loop())

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            for name, fn in self._probes.items():
                self._samples[name].append((self.env.now, fn()))
            if self._stop_when is not None and self._stop_when():
                self._running = False
                return
            yield self.env.timeout(self.interval)

    # -- results ----------------------------------------------------------

    def samples(self, name: str) -> List[Tuple[float, Any]]:
        """(time, value) pairs recorded for one probe."""
        try:
            return list(self._samples[name])
        except KeyError:
            raise SimulationError(f"unknown probe {name!r}") from None

    def values(self, name: str) -> List[Any]:
        return [v for _, v in self.samples(name)]

    def peak(self, name: str) -> Any:
        vals = self.values(name)
        if not vals:
            raise SimulationError(f"probe {name!r} has no samples")
        return max(vals)

    def mean(self, name: str) -> float:
        vals = self.values(name)
        if not vals:
            raise SimulationError(f"probe {name!r} has no samples")
        return sum(vals) / len(vals)

    def to_series(self, name: str):
        """One probe as an :class:`~repro.analytics.timeseries.Series`
        (the same shape the figure pipeline plots)."""
        import numpy as np

        from ..analytics.timeseries import Series

        samples = self.samples(name)
        times = np.asarray([t for t, _ in samples], dtype=float)
        values = np.asarray([v for _, v in samples], dtype=float)
        return Series(times, values)

    def export(self, path) -> int:
        """Write all samples as profile-format JSON lines.

        Each sample becomes one trace-event record
        (``entity="monitor.<probe>"``, ``name="sample"``, the value
        under ``meta["value"]``), with the standard schema header —
        the file loads through
        :func:`~repro.analytics.export.load_events` and merges with
        task traces in offline analysis.  Returns the number of
        samples written.
        """
        import json
        from pathlib import Path

        from ..analytics.export import (
            PROFILE_FORMAT,
            PROFILE_VERSION,
            _sanitize,
        )

        records = []
        for name in self._probes:
            for t, v in self._samples[name]:
                records.append((t, name, v))
        records.sort(key=lambda r: r[0])
        with Path(path).open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"format": PROFILE_FORMAT,
                                 "version": PROFILE_VERSION},
                                sort_keys=True))
            fh.write("\n")
            for t, name, v in records:
                record = {"time": t, "entity": f"monitor.{name}",
                          "name": "sample", "meta": {"value": v}}
                try:
                    line = json.dumps(record, sort_keys=True,
                                      allow_nan=False)
                except (ValueError, TypeError):
                    line = json.dumps(_sanitize(record), sort_keys=True,
                                      allow_nan=False)
                fh.write(line)
                fh.write("\n")
        return len(records)
