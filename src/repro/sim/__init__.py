"""Discrete-event simulation substrate.

This package is a small, from-scratch DES kernel (SimPy-flavoured):
an :class:`~repro.sim.kernel.Environment` with an event queue,
generator-based processes, counted resources, FIFO stores, and
named deterministic RNG streams.  Every runtime-system model in
:mod:`repro` (Slurm, Flux, Dragon, the pilot agent) is written as
processes over this kernel.
"""

from .events import AllOf, AnyOf, Condition, Event, Timeout
from .kernel import Environment
from .monitor import Monitor
from .process import Interrupt, Process
from .random import RngStreams, ScopedRng
from .resources import Request, Resource, Store, StoreGet

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "Interrupt",
    "Monitor",
    "Process",
    "Request",
    "Resource",
    "RngStreams",
    "ScopedRng",
    "Store",
    "StoreGet",
    "Timeout",
]
