"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic *event / process* duality: low-level
callbacks attach to :class:`Event` objects, while higher-level
simulated components are written as Python generators that ``yield``
events (see :mod:`repro.sim.process`).  The design is intentionally
close to SimPy's, but implemented from scratch because the execution
environment ships no DES library.

Event lifecycle::

    created --> triggered (scheduled in the queue) --> processed

Once *processed*, an event's callbacks have run and its :attr:`value`
is final.  Events may succeed (carrying a value) or fail (carrying an
exception that propagates into any process waiting on them).
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from ..exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Environment

#: Sentinel for "event has no value yet".
PENDING = object()

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for high-urgency events (processed before NORMAL at equal times).
URGENT = 0


def push_event(env, delay: float, priority: int, event) -> None:
    """THE canonical enqueue for 4-tuple (event) queue entries.

    Every code path that schedules an :class:`Event` for dispatch —
    ``Event.succeed`` / ``Event.fail``, ``Timeout`` creation and the
    kernel's ``_enqueue_event`` — funnels through this one function, so
    the queue-entry shape and the sequence-number discipline have a
    single point of truth.  A module-level function (not a method) to
    keep the per-call overhead at one plain call in the hottest path
    of the whole simulator.
    """
    env._seq += 1
    heappush(env._queue, (env._now + delay, priority, env._seq, event))


def push_entry5(env, delay: float, priority: int, payload, marker: bool) -> None:
    """THE canonical enqueue for marker-carrying 5-tuple entries.

    The deferred-entry fast path: process bootstraps (marker ``True``)
    and eventless callbacks (marker ``False``) share this shape; see
    ``Environment._enqueue_bootstrap`` / ``Environment.schedule_callback``.
    The unique sequence number guarantees heap comparisons never reach
    the mixed-length tail of the tuple.
    """
    env._seq += 1
    heappush(env._queue,
             (env._now + delay, priority, env._seq, payload, marker))


class Event:
    """A condition that may happen at a point in simulated time.

    Callbacks appended to :attr:`callbacks` are invoked with the event
    itself once the event is processed by the kernel.

    The kernel dispatches hundreds of thousands of events per run, so
    every event class is slotted: no per-instance ``__dict__``, less
    allocator pressure, faster attribute access in the hot loop.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Failures marked defused are expected to be consumed by a
        #: waiting process and never crash the kernel when unhandled.
        self._defused = False

    # -- introspection ----------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with (or its exception)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # succeed() runs for every message hand-off and semaphore grant
        # in the stack; push_event is the shared fast path.
        push_event(self.env, 0.0, NORMAL, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        push_event(self.env, 0.0, NORMAL, self)
        return self

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    This is the single validation point for negative delays: every
    path that schedules time-based work (``Environment.timeout`` and
    ``Environment.schedule`` alike) funnels through here.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        # Inlined Event.__init__: Timeout is the most-allocated event
        # class and the super() call shows up in kernel profiles.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        push_event(env, delay, NORMAL, self)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class _Deferred:
    """A pre-bound ``(callback, args)`` pair used by
    :meth:`Environment.schedule` in place of a per-call lambda closure."""

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., Any], args: tuple) -> None:
        self.fn = fn
        self.args = args

    def __call__(self, _event: Event) -> None:
        self.fn(*self.args)


class Condition(Event):
    """Composite event triggered when a predicate over child events holds.

    Used through the :class:`AllOf` / :class:`AnyOf` helpers.  The
    condition fails as soon as any child event fails.
    """

    __slots__ = ("events", "_need", "_happened")

    def __init__(self, env: "Environment", events: List[Event], need: int) -> None:
        super().__init__(env)
        self.events = list(events)
        self._need = need
        self._happened = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                # Already delivered; account for it via an immediate callback.
                env.schedule(0.0, self._check, ev)
            else:
                # Not yet *processed* (a Timeout is "triggered" at creation
                # but only fires later): hook its callback list.
                assert ev.callbacks is not None
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._happened += 1
        if self._happened >= self._need:
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {
            ev: ev._value for ev in self.events
            if ev.triggered and ev._ok
        }


class AllOf(Condition):
    """Triggered once *all* child events have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        events = list(events)
        super().__init__(env, events, need=len(events))


class AnyOf(Condition):
    """Triggered once *any* child event has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        events = list(events)
        super().__init__(env, events, need=1 if events else 0)
