"""Generator-based simulated processes.

A *process* wraps a Python generator that ``yield``\\ s
:class:`~repro.sim.events.Event` objects.  Each yield suspends the
process until the yielded event is processed, at which point the
event's value is sent back into the generator (or its exception is
thrown into it).  A process is itself an event, succeeding with the
generator's return value, so processes can wait on each other.

Processes support *interrupts* (:meth:`Process.interrupt`), which
raise :class:`Interrupt` inside the generator at its current yield
point — used, e.g., by the Dragon runtime's startup-timeout watchdog.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..exceptions import SimulationError
from .events import Event, PENDING, URGENT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Environment

ProcessGenerator = Generator[Event, Any, Any]


class _InitSentinel:
    """Shared stand-in for the bootstrap event of every process.

    ``Process._resume`` only reads ``_ok`` and ``_value`` from the
    event it is resumed with; for the initial resume those are always
    ``(True, None)``, so one immutable module-level instance replaces
    a per-process ``Event`` allocation (see
    ``Environment._enqueue_bootstrap``).
    """

    __slots__ = ()
    _ok = True
    _value = None


_INIT = _InitSentinel()


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` passed to :meth:`Process.interrupt` is available as
    ``exc.cause``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Drives a generator through the event queue."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        try:
            generator.send
        except AttributeError:
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Bootstrap: resume the process at the current simulation time
        # (an urgent queue entry; no init Event is allocated).
        env._enqueue_bootstrap(self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already finished")
        # Detach from the event the process is waiting for, then resume
        # it immediately with the interrupt.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True  # not an error if unhandled by kernel
        self.env._enqueue_event(interrupt_ev, URGENT)
        assert interrupt_ev.callbacks is not None
        interrupt_ev.callbacks.append(self._resume)

    # ------------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            while True:
                try:
                    if event._ok:
                        next_ev = self._generator.send(event._value)
                    else:
                        # Mark the failure as handled: it propagates into
                        # the generator rather than crashing the kernel.
                        event._defused = True  # type: ignore[attr-defined]
                        next_ev = self._generator.throw(event._value)
                except StopIteration as exc:
                    self._target = None
                    self.succeed(exc.value)
                    return
                except BaseException as exc:
                    self._target = None
                    self.fail(exc)
                    return

                if not isinstance(next_ev, Event):
                    err = SimulationError(
                        f"process yielded non-event {next_ev!r}"
                    )
                    self._target = None
                    try:
                        self._generator.throw(err)
                    except StopIteration as exc:
                        self.succeed(exc.value)
                        return
                    except BaseException as exc:
                        self.fail(exc)
                        return
                    continue

                if next_ev.callbacks is None:
                    # Already processed: resume synchronously with its value.
                    event = next_ev
                    continue

                self._target = next_ev
                next_ev.callbacks.append(self._resume)
                return
        finally:
            self.env._active_process = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} alive={self.is_alive}>"
