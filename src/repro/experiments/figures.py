"""Figure-data generators: regenerate every paper figure as data files.

Each ``figN_data`` function runs the experiments behind one figure of
the paper and returns a :class:`FigureData` table (the same rows the
benchmarks print); :func:`export_figures` writes them as CSV for
downstream plotting.  ``quick=True`` shrinks scales/repetitions for
smoke runs (CI, tests); the default reproduces the benchmark-suite
configuration.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..analytics.metrics import startup_overheads
from .configs import ExperimentConfig, config_by_id
from .harness import run_experiment, run_repetitions


@dataclass(frozen=True)
class FigureData:
    """One figure's regenerated data table."""

    figure_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: str = ""

    def to_csv(self, path) -> Path:
        path = Path(path)
        with path.open("w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            if self.notes:
                writer.writerow([f"# {self.figure_id}: {self.title}"])
                writer.writerow([f"# {self.notes}"])
            writer.writerow(self.columns)
            writer.writerows(self.rows)
        return path


def fig4_data(quick: bool = False) -> FigureData:
    """Fig. 4: srun utilization under the concurrency ceiling."""
    cfg = ExperimentConfig(exp_id="srun", launcher="srun", workload="dummy",
                           n_nodes=4, duration=180.0,
                           waves=2 if quick else 4)
    result = run_experiment(cfg)
    from ..analytics import concurrency_series

    series = concurrency_series(result.tasks, resolution=30.0)
    rows = [(round(t, 1), int(v))
            for t, v in zip(series.times, series.values)]
    return FigureData(
        figure_id="fig4", title="srun utilization, dummy(180 s), 4 nodes",
        columns=("time_s", "running_tasks"), rows=rows,
        notes=f"utilization={result.utilization_cores:.3f} "
              "(paper: 0.50, ceiling=112)")


def fig5_data(quick: bool = False) -> FigureData:
    """Fig. 5: per-launcher throughput vs. node count."""
    sweeps = {
        "srun": ((1, 2, 4) if quick else (1, 2, 4, 16)),
        "flux_1": ((1, 4) if quick else (1, 4, 16, 64)),
        "dragon": ((1, 4) if quick else (1, 4, 16, 64)),
        "flux+dragon": ((2, 4) if quick else (2, 4, 16, 64)),
    }
    reps = 1 if quick else 3
    waves = 1 if quick else 2
    rows = []
    for exp_id, nodes in sweeps.items():
        for n in nodes:
            agg = run_repetitions(
                config_by_id(exp_id, n_nodes=n, waves=waves), n_reps=reps)
            rows.append((exp_id, n, round(agg.throughput_avg, 2),
                         round(agg.throughput_max, 2)))
    return FigureData(
        figure_id="fig5", title="task throughput vs nodes per launcher",
        columns=("launcher", "nodes", "avg_tasks_per_s", "max_tasks_per_s"),
        rows=rows)


def fig6_data(quick: bool = False) -> FigureData:
    """Fig. 6: Flux throughput vs. concurrent instance count."""
    sweep = ([(4, 1), (4, 4)] if quick
             else [(4, 1), (4, 4), (16, 1), (16, 16),
                   (64, 1), (64, 4), (64, 16), (64, 64)])
    reps = 1 if quick else 2
    rows = []
    for n, p in sweep:
        agg = run_repetitions(
            config_by_id("flux_n", n_nodes=n, n_partitions=p,
                         waves=1 if quick else 4), n_reps=reps)
        rows.append((n, p, round(agg.throughput_avg, 2),
                     round(agg.throughput_max, 2)))
    return FigureData(
        figure_id="fig6", title="Flux throughput vs instance count",
        columns=("nodes", "instances", "avg_tasks_per_s",
                 "max_tasks_per_s"),
        rows=rows)


def fig7_data(quick: bool = False) -> FigureData:
    """Fig. 7: instance launching overheads."""
    from ..core import PartitionSpec, PilotDescription, Session
    from ..platform import frontier

    sizes = (1, 4) if quick else (1, 4, 16, 64)
    rows = []
    for backend in ("flux", "dragon", "prrte"):
        for n in sizes:
            session = Session(cluster=frontier(max(n, 2)), seed=n)
            pmgr = session.pilot_manager()
            pilot = pmgr.submit_pilots(PilotDescription(
                nodes=n, partitions=(PartitionSpec(backend),)))
            session.run(pilot.active_event())
            overheads = startup_overheads(session.profiler, kind=backend)
            rows.append((backend, n, round(overheads[0][1], 3)))
            session.close()
    return FigureData(
        figure_id="fig7", title="instance launching overheads",
        columns=("runtime", "nodes_per_instance", "startup_s"),
        rows=rows,
        notes="paper: flux ~20 s, dragon ~9 s; prrte is this repo's "
              "extension backend")


def fig8_data(quick: bool = False) -> FigureData:
    """Fig. 8: IMPECCABLE concurrency/start-rate, srun vs flux."""
    from ..analytics import concurrency_series, start_rate_series

    nodes_list = (256,) if quick else (256, 1024)
    generations = 3 if quick else 12
    rows = []
    for launcher in ("srun", "flux"):
        for nodes in nodes_list:
            cfg = ExperimentConfig(
                exp_id=f"impeccable_{launcher}", launcher=launcher,
                workload="impeccable", n_nodes=nodes,
                generations=generations)
            result = run_experiment(cfg)
            conc = concurrency_series(result.tasks, resolution=300.0)
            rate = start_rate_series(result.tasks, bin_width=300.0)
            rate_by_time = dict(zip(rate.times, rate.values))
            for t, running in zip(conc.times, conc.values):
                nearest = min(rate_by_time,
                              key=lambda x: abs(x - t),
                              default=None)
                rows.append((launcher, nodes, round(t, 1), int(running),
                             round(rate_by_time.get(nearest, 0.0), 4)))
    return FigureData(
        figure_id="fig8",
        title="IMPECCABLE concurrency and start rate over time",
        columns=("launcher", "nodes", "time_s", "running_tasks",
                 "start_rate_per_s"),
        rows=rows)


#: figure id -> generator
GENERATORS: Dict[str, Callable[[bool], FigureData]] = {
    "fig4": fig4_data,
    "fig5": fig5_data,
    "fig6": fig6_data,
    "fig7": fig7_data,
    "fig8": fig8_data,
}


def export_figures(out_dir, figures: Optional[Sequence[str]] = None,
                   quick: bool = False) -> List[Path]:
    """Generate the requested figures (default: all) into ``out_dir``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    names = list(figures) if figures else sorted(GENERATORS)
    written = []
    for name in names:
        try:
            generator = GENERATORS[name]
        except KeyError:
            raise ValueError(
                f"unknown figure {name!r}; choose from {sorted(GENERATORS)}"
            ) from None
        data = generator(quick)
        written.append(data.to_csv(out_dir / f"{name}.csv"))
    return written
