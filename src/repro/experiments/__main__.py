"""Command-line entry point: run Table-1 experiments from a shell.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run flux_1 --nodes 64 --reps 3
    python -m repro.experiments run impeccable_flux --nodes 256
    python -m repro.experiments table1 --waves 1   # quick full sweep
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..analytics.report import format_table
from ..exceptions import ReproError
from .configs import (
    config_by_id,
    faults_configs,
    frontier_full_configs,
    table1_configs,
)
from .harness import run_experiment, run_repetitions


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        (c.exp_id, c.launcher, c.workload, c.n_nodes, c.n_partitions,
         c.duration)
        for c in table1_configs() + faults_configs() + frontier_full_configs()
    ]
    print(format_table(
        ["exp", "launcher", "workload", "nodes", "partitions", "dur[s]"],
        rows))
    return 0


def _progress_sink(spec: str):
    """Build the telemetry subscriber ``--progress`` asked for.

    ``line`` renders one human-readable status line per record,
    ``jsonl`` one JSON object — both to stderr, so stdout tables and
    shell pipelines stay clean.
    """
    if not spec:
        return None
    from ..observability.telemetry import jsonl_sink, line_sink

    return jsonl_sink() if spec == "jsonl" else line_sink()


def _print_recovery(result) -> None:
    """Echo the host-recovery ledger of a supervised run, if any."""
    doc = getattr(result, "host_recovery", None)
    if not doc:
        return
    print(f"host recovery: healed {doc['n_incidents']} worker "
          f"loss(es) ({doc['n_crashes']} crashed, {doc['n_hangs']} hung), "
          f"{doc['windows_replayed']} windows replayed in "
          f"{doc['total_recovery_seconds']:.2f}s wall", file=sys.stderr)


def _print_cache(result) -> None:
    """Echo one run's store outcome (``run --cache`` only)."""
    doc = getattr(result, "cache", None)
    if not doc:
        return
    digest = (doc.get("digest") or "")[:12]
    if doc.get("hit"):
        print(f"cache: hit {digest}", file=sys.stderr)
    elif doc.get("stored"):
        print(f"cache: miss {digest} (stored)", file=sys.stderr)
    else:
        print(f"cache: miss {digest} (lost write race)", file=sys.stderr)


def _print_cache_summary(provenance) -> None:
    """Echo a sweep's provenance mix (``run --cache`` only)."""
    hits = provenance.get("cached", 0)
    resumed = provenance.get("resumed", 0)
    fresh = provenance.get("fresh", 0)
    line = f"cache: {hits} hit(s), {fresh} simulated"
    if resumed:
        line += f", {resumed} resumed"
    print(line, file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    overrides = {}
    if args.nodes:
        overrides["n_nodes"] = args.nodes
    if args.partitions:
        overrides["n_partitions"] = args.partitions
    if args.waves:
        overrides["waves"] = args.waves
    if getattr(args, "bulk", False):
        overrides["bulk"] = True
    if getattr(args, "lean", False):
        overrides["lean"] = True
    if getattr(args, "shards", None) is not None:
        shards = args.shards
        if shards != "auto":
            try:
                shards = int(shards)
            except ValueError:
                print(f"error: bad shard count {shards!r}", file=sys.stderr)
                return 1
        overrides["shards"] = shards
    cfg = config_by_id(args.exp_id, **overrides)
    if getattr(args, "faults", ""):
        from dataclasses import replace

        from ..faults import FaultSpec

        cfg = replace(cfg, faults=FaultSpec.parse(args.faults,
                                                  base=cfg.faults))
    bundle = getattr(args, "bundle", "") or None
    spill_dir = getattr(args, "spill_dir", "") or None
    seeds = getattr(args, "seeds", "") or None
    cache = getattr(args, "cache", "") or None
    progress = _progress_sink(getattr(args, "progress", ""))
    checkpoint = getattr(args, "checkpoint", "") or None
    multi = args.reps > 1 or seeds or getattr(args, "ensemble", False)
    from ..resilience import parse_resilience

    # Multi-run sweeps use the directory as a sweep *ledger* (one doc
    # per finished unit), not a per-run checkpoint — per-rep
    # checkpoints in a shared directory would clobber each other.
    resilience = parse_resilience(
        checkpoint=None if multi else checkpoint,
        checkpoint_every=getattr(args, "checkpoint_every", None),
        checkpoint_wall=getattr(args, "checkpoint_wall", None),
        supervise=getattr(args, "supervise", False))
    if getattr(args, "ensemble", False):
        from .harness import run_ensemble

        ens = run_ensemble(cfg, seeds=seeds,
                           n_reps=None if seeds else args.reps,
                           profile_dir=getattr(args, "profile_dir", "")
                           or None,
                           parallel=args.parallel,
                           engine=getattr(args, "engine", None),
                           progress=progress,
                           bundle=bundle,
                           cache=cache)
        if cache:
            _print_cache_summary(ens.provenance)
        agg = ens.aggregate()
        print(format_table(
            ["exp", "nodes", "parts", "seeds", "engine", "avg tasks/s",
             "max tasks/s", "util", "makespan[s]", "ms/seed"],
            [(cfg.exp_id, cfg.n_nodes, cfg.n_partitions, len(ens.seeds),
              ens.engine, agg.throughput_avg, agg.throughput_max,
              agg.utilization_avg, agg.makespan_avg,
              ens.wall_seconds_per_seed * 1e3)]))
        if bundle:
            print(f"wrote ensemble bundle to {bundle}")
        if ens.members and ens.members[0].profile_path and \
                getattr(args, "profile_dir", ""):
            print(f"wrote {len(ens.members)} per-seed profiles to "
                  f"{args.profile_dir}")
        return 0
    if args.summary or args.profile or bundle:
        result = run_experiment(cfg, keep_session=True, bundle=bundle,
                                spill_dir=spill_dir, progress=progress,
                                resilience=resilience, cache=cache)
        _print_cache(result)
        _print_recovery(result)
        if bundle:
            print(f"wrote observability bundle to {bundle}")
        if result.faults is not None:
            print(result.faults.to_text())
        if args.summary:
            from ..analytics import summarize

            total_cores = (cfg.n_nodes
                           * result.session.cluster.cores_per_node)
            print(summarize(result.tasks, total_cores=total_cores).to_text())
        if args.profile:
            from ..analytics import save_profile

            n = save_profile(result.session.profiler, args.profile)
            print(f"wrote {n} trace events to {args.profile}")
        return 0
    if args.reps > 1 or seeds:
        agg = run_repetitions(cfg, n_reps=args.reps, parallel=args.parallel,
                              seeds=seeds, progress=progress,
                              checkpoint=checkpoint,
                              resilience=resilience, cache=cache)
        if cache:
            _print_cache_summary(agg.provenance)
        print(format_table(
            ["exp", "nodes", "parts", "reps", "avg tasks/s", "max tasks/s",
             "util", "makespan[s]"],
            [(cfg.exp_id, cfg.n_nodes, cfg.n_partitions, agg.n_reps,
              agg.throughput_avg, agg.throughput_max, agg.utilization_avg,
              agg.makespan_avg)]))
    else:
        r = run_experiment(cfg, spill_dir=spill_dir, progress=progress,
                           resilience=resilience, cache=cache)
        _print_cache(r)
        _print_recovery(r)
        print(format_table(
            ["exp", "nodes", "parts", "tasks", "done", "failed",
             "avg tasks/s", "peak tasks/s", "util", "makespan[s]", "wall[s]"],
            [(cfg.exp_id, cfg.n_nodes, cfg.n_partitions, r.n_tasks, r.n_done,
              r.n_failed, r.throughput.avg, r.throughput.peak,
              r.utilization_cores, r.makespan, r.wall_seconds)]))
        if r.faults is not None:
            print()
            print(r.faults.to_text())
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from .harness import resume_experiment

    bundle = args.bundle or None
    progress = _progress_sink(args.progress)
    keep = bool(args.summary or args.profile)
    result = resume_experiment(args.directory, keep_session=keep,
                               bundle=bundle, progress=progress)
    cfg = result.config
    _print_recovery(result)
    print(format_table(
        ["exp", "nodes", "parts", "tasks", "done", "failed",
         "avg tasks/s", "peak tasks/s", "util", "makespan[s]", "wall[s]"],
        [(cfg.exp_id, cfg.n_nodes, cfg.n_partitions, result.n_tasks,
          result.n_done, result.n_failed, result.throughput.avg,
          result.throughput.peak, result.utilization_cores,
          result.makespan, result.wall_seconds)]))
    if bundle:
        print(f"wrote observability bundle to {bundle}")
    if args.summary:
        from ..analytics import summarize

        total_cores = cfg.n_nodes * result.session.cluster.cores_per_node
        print(summarize(result.tasks, total_cores=total_cores).to_text())
    if args.profile:
        from ..analytics import save_profile

        n = save_profile(result.session.profiler, args.profile)
        print(f"wrote {n} trace events to {args.profile}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    cfgs = []
    for cfg in table1_configs():
        if args.waves:
            cfg = cfg.scaled(args.waves)
        if cfg.n_nodes > args.max_nodes:
            continue
        cfgs.append(cfg)
    if args.parallel is not None:
        from .parallel import run_many

        results = run_many(cfgs, jobs=args.parallel)
    else:
        results = []
        for cfg in cfgs:
            r = run_experiment(cfg)
            results.append(r)
            print(f"  done: {cfg.exp_id} @ {cfg.n_nodes} nodes "
                  f"({r.wall_seconds:.1f}s wall)", file=sys.stderr)
    rows = [(cfg.exp_id, cfg.launcher, cfg.n_nodes, cfg.n_partitions,
             r.n_tasks, r.throughput.avg, r.throughput.peak,
             r.utilization_cores, r.makespan)
            for cfg, r in zip(cfgs, results)]
    print(format_table(
        ["exp", "launcher", "nodes", "parts", "tasks", "avg/s", "peak/s",
         "util", "makespan[s]"],
        rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from ..observability import (
        phase_rollup,
        read_manifest,
        spans_from_events,
        validate_chrome_trace,
        write_chrome_trace,
    )

    if args.trace_command == "run":
        overrides = {}
        if args.nodes:
            overrides["n_nodes"] = args.nodes
        if args.waves:
            overrides["waves"] = args.waves
        cfg = config_by_id(args.exp_id, **overrides)
        result = run_experiment(cfg, keep_session=True, bundle=args.out)
        print(f"wrote observability bundle to {args.out} "
              f"({result.n_tasks} tasks, makespan {result.makespan:.1f}s)")
        return 0

    if args.trace_command == "inspect":
        manifest = read_manifest(args.bundle)
        print(f"bundle:   {args.bundle} (v{manifest.get('bundle_version')})")
        print(f"session:  {manifest.get('session_uid', '?')}  "
              f"seed {manifest.get('seed', '?')}")
        cfg = manifest.get("config") or {}
        if cfg:
            print(f"config:   {cfg.get('exp_id')} — {cfg.get('launcher')} "
                  f"@ {cfg.get('n_nodes')} nodes")
        res = manifest.get("result") or {}
        if res:
            print(f"result:   {res.get('n_done')}/{res.get('n_tasks')} done, "
                  f"{res.get('throughput_avg', 0.0):.1f} tasks/s avg, "
                  f"makespan {res.get('makespan', 0.0):.1f}s")
        print(f"files:    {', '.join(sorted(manifest.get('files', {})))}")
        profile = manifest.get("files", {}).get("profile")
        if profile:
            from pathlib import Path

            from ..analytics import load_events

            events = load_events(Path(args.bundle) / profile)
            root = spans_from_events(
                events, session_uid=manifest.get("session_uid", "session"))
            print("phases:   " + "  ".join(
                f"{name}={stats['mean']:.3f}s×{int(stats['count'])}"
                for name, stats in phase_rollup(root).items()))
        return 0

    if args.trace_command == "watch":
        from pathlib import Path

        from ..observability.telemetry import (
            read_telemetry,
            render_progress_line,
        )

        target = Path(args.bundle)
        path = target / "telemetry.jsonl" if target.is_dir() else target
        if not path.exists():
            print(f"error: no telemetry at {path} (run with --progress "
                  "or --bundle to record some)", file=sys.stderr)
            return 1
        records = read_telemetry(path)
        for record in records:
            print(render_progress_line(record))
        print(f"{len(records)} telemetry records from {path}")
        return 0

    if args.trace_command == "critical":
        import json as _json
        from pathlib import Path

        from ..analytics import critical_path, format_critical_path
        from ..observability import span_from_dict

        target = Path(args.bundle)
        root = None
        if target.is_dir():
            spans_path = target / "spans.json"
            if spans_path.exists():
                root = span_from_dict(_json.loads(
                    spans_path.read_text(encoding="utf-8")))
            else:
                manifest = read_manifest(target)
                profile = manifest.get("files", {}).get("profile")
                if not profile:
                    print(f"error: {target} has neither spans.json nor "
                          "a profile", file=sys.stderr)
                    return 1
                from ..analytics import load_events

                root = spans_from_events(
                    load_events(target / profile),
                    session_uid=manifest.get("session_uid", "session"))
        else:
            from ..analytics import load_events

            root = spans_from_events(load_events(target))
        steps = critical_path(root)
        print(format_critical_path(steps))
        if steps:
            gate = max(steps, key=lambda s: s.exclusive)
            print(f"\ncritical path: {len(steps)} levels, "
                  f"{steps[0].duration:.3f}s end to end; largest "
                  f"exclusive contribution {gate.exclusive:.3f}s "
                  f"at {gate.cat}:{gate.name}")
        return 0

    if args.trace_command == "export":
        import json

        from ..analytics import load_events

        events = load_events(args.profile)
        root = spans_from_events(events)
        path = write_chrome_trace(root, args.out)
        doc = json.loads(path.read_text(encoding="utf-8"))
        problems = validate_chrome_trace(doc)
        n = len(doc["traceEvents"])
        if problems:
            for p in problems:
                print(f"invalid: {p}", file=sys.stderr)
            return 1
        print(f"wrote {n} trace events to {path} "
              f"(open in https://ui.perfetto.dev)")
        return 0
    return 2  # pragma: no cover


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's experiments on the simulated stack.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list Table-1 configurations")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("exp_id", help="experiment id (see 'list')")
    p_run.add_argument("--nodes", type=int, default=0)
    p_run.add_argument("--partitions", type=int, default=0)
    p_run.add_argument("--waves", type=int, default=0)
    p_run.add_argument("--reps", type=int, default=1)
    p_run.add_argument("--parallel", nargs="?", const="auto", default=None,
                       metavar="N",
                       help="fan repetitions out over N worker processes "
                            "(bare flag = one per core)")
    p_run.add_argument("--faults", default="", metavar="SPEC",
                       help="fault injection spec, key=value pairs "
                            "(e.g. mtbf=1800,p_launch_fail=0.01,"
                            "max_attempts=5); layered over the "
                            "config's own spec if it has one")
    p_run.add_argument("--summary", action="store_true",
                       help="print the per-backend session summary")
    p_run.add_argument("--profile", default="",
                       help="write the trace profile to this JSONL file")
    p_run.add_argument("--bundle", default="",
                       help="write the observability bundle (manifest, "
                            "metrics, spans, Perfetto trace) to this "
                            "directory")
    p_run.add_argument("--bulk", action="store_true",
                       help="batched task submission (trace-neutral; "
                            "the frontier_full family sets it already)")
    p_run.add_argument("--lean", action="store_true",
                       help="memory-lean retention for full-machine "
                            "runs (trace-neutral)")
    p_run.add_argument("--progress", nargs="?", const="line", default="",
                       choices=["line", "jsonl"], metavar="FMT",
                       help="stream live telemetry to stderr while the "
                            "run executes: 'line' (default) renders one "
                            "status line per record, 'jsonl' one JSON "
                            "object (the machine feed); same-seed "
                            "results are identical with or without it")
    p_run.add_argument("--spill-dir", default="", metavar="DIR",
                       help="stream the trace to chunked files under "
                            "DIR, bounding profiler memory")
    p_run.add_argument("--ensemble", action="store_true",
                       help="run the seeds through the batched ensemble "
                            "engine (vectorized fast path where the "
                            "config qualifies; per-seed results "
                            "identical to independent runs)")
    p_run.add_argument("--seeds", default="", metavar="SPEC",
                       help="explicit seed list, e.g. 1,2,5-20 "
                            "(default: cfg.seed + rep for --reps "
                            "repetitions)")
    p_run.add_argument("--engine", choices=["vectorized", "replay"],
                       default=None,
                       help="with --ensemble: force the member engine "
                            "instead of auto-selecting (replay is the "
                            "generic per-seed fallback; vectorized "
                            "errors out if the config does not "
                            "qualify)")
    p_run.add_argument("--profile-dir", default="", metavar="DIR",
                       help="with --ensemble: export each seed's trace "
                            "to DIR/profile-seed<seed>.jsonl")
    p_run.add_argument("--shards", nargs="?", const="auto", default=None,
                       metavar="N",
                       help="partition-sharded execution: run the Flux "
                            "partitions in N worker processes on "
                            "shard-local kernels (bare flag = one per "
                            "core); deterministic, but a different "
                            "event interleaving than the sequential "
                            "path")

    p_run.add_argument("--checkpoint", default="", metavar="DIR",
                       help="durable crash-safety state in DIR: periodic "
                            "run checkpoints for a single run, or a "
                            "sweep ledger (finished repetitions are "
                            "never re-run) with --reps/--seeds")
    p_run.add_argument("--checkpoint-every", type=float, default=None,
                       metavar="SIMSECS",
                       help="simulated seconds between checkpoint ticks "
                            "(default 60)")
    p_run.add_argument("--checkpoint-wall", type=float, default=None,
                       metavar="SECS",
                       help="rate-limit checkpoint writes to one per "
                            "SECS wall seconds (default 1; 0 writes "
                            "at every tick)")
    p_run.add_argument("--supervise", action="store_true",
                       help="watchdog + deterministic replay recovery "
                            "for crashed or hung shard workers "
                            "(sharded runs)")
    p_run.add_argument("--cache", default="", metavar="DIR",
                       help="memoize runs through a content-addressed "
                            "store rooted at DIR: an exact match "
                            "(config, seed, workload, code version) is "
                            "delivered without simulating; misses "
                            "populate the store (see the 'store' "
                            "subcommand)")

    p_res = sub.add_parser(
        "resume", help="resume a checkpointed run to completion")
    p_res.add_argument("directory", help="checkpoint directory "
                                         "(from run --checkpoint)")
    p_res.add_argument("--summary", action="store_true",
                       help="print the per-phase latency summary")
    p_res.add_argument("--profile", default="",
                       help="write the trace profile (JSONL) here")
    p_res.add_argument("--bundle", default="", metavar="DIR",
                       help="write the observability bundle here")
    p_res.add_argument("--progress", nargs="?", const="line", default="",
                       choices=["line", "jsonl"],
                       help="stream live progress to stderr")

    p_t1 = sub.add_parser("table1", help="run the full Table-1 sweep")
    p_t1.add_argument("--waves", type=int, default=0)
    p_t1.add_argument("--max-nodes", type=int, default=1024)
    p_t1.add_argument("--parallel", nargs="?", const="auto", default=None,
                      metavar="N",
                      help="run the sweep's configurations over N worker "
                           "processes (bare flag = one per core)")

    p_fig = sub.add_parser(
        "figures", help="regenerate paper figures as CSV data files")
    p_fig.add_argument("--out", default="results",
                       help="output directory (default: results/)")
    p_fig.add_argument("--only", nargs="*", default=None,
                       help="figure ids (default: all), e.g. fig4 fig6")
    p_fig.add_argument("--quick", action="store_true",
                       help="reduced scales for a fast smoke run")

    from ..store.cli import add_store_parser

    add_store_parser(sub)

    p_tr = sub.add_parser(
        "trace", help="observability bundles and Perfetto traces")
    tr_sub = p_tr.add_subparsers(dest="trace_command", required=True)
    tr_run = tr_sub.add_parser(
        "run", help="run one experiment and write its bundle")
    tr_run.add_argument("exp_id", help="experiment id (see 'list')")
    tr_run.add_argument("--out", required=True,
                        help="bundle output directory")
    tr_run.add_argument("--nodes", type=int, default=0)
    tr_run.add_argument("--waves", type=int, default=0)
    tr_ins = tr_sub.add_parser(
        "inspect", help="summarize a bundle's manifest and phases")
    tr_ins.add_argument("bundle", help="bundle directory")
    tr_exp = tr_sub.add_parser(
        "export", help="convert a profile JSONL into a Perfetto trace")
    tr_exp.add_argument("profile", help="profile JSONL file")
    tr_exp.add_argument("--out", default="trace.json",
                        help="output trace file (default: trace.json)")
    tr_watch = tr_sub.add_parser(
        "watch", help="render a run's recorded telemetry stream")
    tr_watch.add_argument("bundle",
                          help="bundle directory or telemetry.jsonl file")
    tr_crit = tr_sub.add_parser(
        "critical", help="extract the critical path from a bundle's "
                         "span tree (or reconstruct it from a profile)")
    tr_crit.add_argument("bundle",
                         help="bundle directory or profile JSONL file")

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "resume":
            return _cmd_resume(args)
        if args.command == "table1":
            return _cmd_table1(args)
        if args.command == "store":
            from ..store.cli import cmd_store

            return cmd_store(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "figures":
            from .figures import export_figures

            written = export_figures(args.out, figures=args.only,
                                     quick=args.quick)
            for path in written:
                print(f"wrote {path}")
            return 0
    except ReproError as exc:
        # Configuration and stack errors are user errors, not crashes:
        # one line on stderr, non-zero exit, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
