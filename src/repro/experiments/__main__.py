"""Command-line entry point: run Table-1 experiments from a shell.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run flux_1 --nodes 64 --reps 3
    python -m repro.experiments run impeccable_flux --nodes 256
    python -m repro.experiments table1 --waves 1   # quick full sweep
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..analytics.report import format_table
from .configs import config_by_id, table1_configs
from .harness import run_experiment, run_repetitions


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        (c.exp_id, c.launcher, c.workload, c.n_nodes, c.n_partitions,
         c.duration)
        for c in table1_configs()
    ]
    print(format_table(
        ["exp", "launcher", "workload", "nodes", "partitions", "dur[s]"],
        rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    overrides = {}
    if args.nodes:
        overrides["n_nodes"] = args.nodes
    if args.partitions:
        overrides["n_partitions"] = args.partitions
    if args.waves:
        overrides["waves"] = args.waves
    cfg = config_by_id(args.exp_id, **overrides)
    if args.summary or args.profile:
        result = run_experiment(cfg, keep_session=True)
        if args.summary:
            from ..analytics import summarize

            total_cores = (cfg.n_nodes
                           * result.session.cluster.cores_per_node)
            print(summarize(result.tasks, total_cores=total_cores).to_text())
        if args.profile:
            from ..analytics import save_profile

            n = save_profile(result.session.profiler, args.profile)
            print(f"wrote {n} trace events to {args.profile}")
        return 0
    if args.reps > 1:
        agg = run_repetitions(cfg, n_reps=args.reps, parallel=args.parallel)
        print(format_table(
            ["exp", "nodes", "parts", "reps", "avg tasks/s", "max tasks/s",
             "util", "makespan[s]"],
            [(cfg.exp_id, cfg.n_nodes, cfg.n_partitions, agg.n_reps,
              agg.throughput_avg, agg.throughput_max, agg.utilization_avg,
              agg.makespan_avg)]))
    else:
        r = run_experiment(cfg)
        print(format_table(
            ["exp", "nodes", "parts", "tasks", "done", "failed",
             "avg tasks/s", "peak tasks/s", "util", "makespan[s]", "wall[s]"],
            [(cfg.exp_id, cfg.n_nodes, cfg.n_partitions, r.n_tasks, r.n_done,
              r.n_failed, r.throughput.avg, r.throughput.peak,
              r.utilization_cores, r.makespan, r.wall_seconds)]))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    cfgs = []
    for cfg in table1_configs():
        if args.waves:
            cfg = cfg.scaled(args.waves)
        if cfg.n_nodes > args.max_nodes:
            continue
        cfgs.append(cfg)
    if args.parallel is not None:
        from .parallel import run_many

        results = run_many(cfgs, jobs=args.parallel)
    else:
        results = []
        for cfg in cfgs:
            r = run_experiment(cfg)
            results.append(r)
            print(f"  done: {cfg.exp_id} @ {cfg.n_nodes} nodes "
                  f"({r.wall_seconds:.1f}s wall)", file=sys.stderr)
    rows = [(cfg.exp_id, cfg.launcher, cfg.n_nodes, cfg.n_partitions,
             r.n_tasks, r.throughput.avg, r.throughput.peak,
             r.utilization_cores, r.makespan)
            for cfg, r in zip(cfgs, results)]
    print(format_table(
        ["exp", "launcher", "nodes", "parts", "tasks", "avg/s", "peak/s",
         "util", "makespan[s]"],
        rows))
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's experiments on the simulated stack.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list Table-1 configurations")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("exp_id", help="experiment id (see 'list')")
    p_run.add_argument("--nodes", type=int, default=0)
    p_run.add_argument("--partitions", type=int, default=0)
    p_run.add_argument("--waves", type=int, default=0)
    p_run.add_argument("--reps", type=int, default=1)
    p_run.add_argument("--parallel", nargs="?", const="auto", default=None,
                       metavar="N",
                       help="fan repetitions out over N worker processes "
                            "(bare flag = one per core)")
    p_run.add_argument("--summary", action="store_true",
                       help="print the per-backend session summary")
    p_run.add_argument("--profile", default="",
                       help="write the trace profile to this JSONL file")

    p_t1 = sub.add_parser("table1", help="run the full Table-1 sweep")
    p_t1.add_argument("--waves", type=int, default=0)
    p_t1.add_argument("--max-nodes", type=int, default=1024)
    p_t1.add_argument("--parallel", nargs="?", const="auto", default=None,
                      metavar="N",
                      help="run the sweep's configurations over N worker "
                           "processes (bare flag = one per core)")

    p_fig = sub.add_parser(
        "figures", help="regenerate paper figures as CSV data files")
    p_fig.add_argument("--out", default="results",
                       help="output directory (default: results/)")
    p_fig.add_argument("--only", nargs="*", default=None,
                       help="figure ids (default: all), e.g. fig4 fig6")
    p_fig.add_argument("--quick", action="store_true",
                       help="reduced scales for a fast smoke run")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "figures":
        from .figures import export_figures

        written = export_figures(args.out, figures=args.only,
                                 quick=args.quick)
        for path in written:
            print(f"wrote {path}")
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
