"""Experiment configurations (the paper's Table 1).

Each :class:`ExperimentConfig` fully determines one run: workload
class, launcher configuration, allocation size, partitioning and
seed.  :func:`table1_configs` enumerates the paper's seven
experiments with their published parameter sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..exceptions import ConfigurationError
from ..faults import FaultSpec

#: Launcher configurations evaluated in the paper, plus the PRRTE
#: extension backend (§5).
LAUNCHER_SRUN = "srun"
LAUNCHER_FLUX = "flux"
LAUNCHER_DRAGON = "dragon"
LAUNCHER_PRRTE = "prrte"
LAUNCHER_HYBRID = "flux+dragon"
LAUNCHERS = (LAUNCHER_SRUN, LAUNCHER_FLUX, LAUNCHER_DRAGON, LAUNCHER_PRRTE,
             LAUNCHER_HYBRID)

#: Workload classes.
WORKLOAD_NULL = "null"
WORKLOAD_DUMMY = "dummy"
WORKLOAD_MIXED = "mixed"          #: exec + func (hybrid experiment)
WORKLOAD_IMPECCABLE = "impeccable"
WORKLOADS = (WORKLOAD_NULL, WORKLOAD_DUMMY, WORKLOAD_MIXED,
             WORKLOAD_IMPECCABLE)


@dataclass(frozen=True)
class ExperimentConfig:
    """One fully-specified experiment run."""

    exp_id: str
    launcher: str
    workload: str
    n_nodes: int
    n_partitions: int = 1
    duration: float = 180.0       #: dummy-task sleep time [s]
    waves: int = 4                #: tasks = n_nodes * cpn * waves
    seed: int = 0
    generations: int = 12         #: IMPECCABLE generations
    adaptive: bool = True         #: IMPECCABLE adaptive task counts
    faults: Optional[FaultSpec] = None  #: fault injection (None = off)
    #: Batched task submission (``TaskManager.submit_tasks(bulk=True)``):
    #: O(batch) kernel events per wave, byte-identical traces.
    bulk: bool = False
    #: Memory-lean mode for full-machine runs: drop retired per-job
    #: bookkeeping and event-stream history that only post-hoc
    #: debugging reads.  Off by default (tests inspect both).
    lean: bool = False
    #: Partition-sharded execution: run the Flux partitions in worker
    #: processes on shard-local kernels (``"auto"``/``0`` = one shard
    #: per core, an int = that many shards).  ``None`` (default) keeps
    #: the sequential single-kernel path exactly.
    shards: Optional[object] = None
    tags: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.launcher not in LAUNCHERS:
            raise ConfigurationError(f"unknown launcher {self.launcher!r}")
        if self.workload not in WORKLOADS:
            raise ConfigurationError(f"unknown workload {self.workload!r}")
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1")
        if self.n_partitions < 1:
            raise ConfigurationError("n_partitions must be >= 1")
        if self.launcher == LAUNCHER_HYBRID and self.n_nodes < 2:
            raise ConfigurationError("hybrid runs need >= 2 nodes")
        if self.waves < 1:
            raise ConfigurationError("waves must be >= 1")
        if self.shards is not None:
            from ..shard import resolve_shards

            resolve_shards(self.shards)  # raises on malformed values

    def with_seed(self, seed: int) -> "ExperimentConfig":
        """Copy with a different seed (for repetitions)."""
        return replace(self, seed=seed)

    def cache_key(self) -> str:
        """Canonical content key of this config's *behavior*.

        sha256 of the normalized config document: stable field order,
        defaults filled, label fields (``exp_id``, ``tags``) and
        trace-neutral execution knobs (``seed``, ``bulk``, ``lean``,
        ``shards``) excluded — two configs with equal keys denote the
        same simulated run modulo seed.  See
        :mod:`repro.store.keys` for the full identity scheme.
        """
        from ..store.keys import cache_key

        return cache_key(self)

    def scaled(self, waves: int) -> "ExperimentConfig":
        """Copy with a different wave count (cheaper test runs)."""
        return replace(self, waves=waves)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

#: Node sweeps per experiment, straight from Table 1.
SRUN_NODES: Tuple[int, ...] = (4,)
SRUN_THROUGHPUT_NODES: Tuple[int, ...] = (1, 2, 4, 16)   # Fig. 5(a) sweep
FLUX1_NODES: Tuple[int, ...] = (1, 4, 16, 64, 256, 1024)
FLUXN_NODES: Tuple[int, ...] = (64, 1024)
FLUXN_PARTITIONS: Tuple[int, ...] = (1, 4, 16, 64)
DRAGON_NODES: Tuple[int, ...] = (1, 4, 16, 64)
HYBRID_NODES: Tuple[int, ...] = (2, 4, 16, 64)
IMPECCABLE_NODES: Tuple[int, ...] = (256, 1024)


def table1_configs(null_workloads: bool = True,
                   seed: int = 0) -> List[ExperimentConfig]:
    """All experiment configurations of Table 1.

    ``null_workloads`` selects the throughput variant (null tasks) for
    the synthetic experiments; otherwise the dummy variant used for
    utilization measurements (180 s sleeps; 360 s for flux_1 and the
    hybrid, per Table 1).
    """
    wl = WORKLOAD_NULL if null_workloads else WORKLOAD_DUMMY
    cfgs: List[ExperimentConfig] = []
    for n in SRUN_NODES:
        cfgs.append(ExperimentConfig(
            exp_id="srun", launcher=LAUNCHER_SRUN, workload=wl,
            n_nodes=n, duration=180.0, seed=seed))
    for n in FLUX1_NODES:
        cfgs.append(ExperimentConfig(
            exp_id="flux_1", launcher=LAUNCHER_FLUX, workload=wl,
            n_nodes=n, duration=360.0, seed=seed))
    for n in FLUXN_NODES:
        for p in FLUXN_PARTITIONS:
            if p > n:
                continue
            cfgs.append(ExperimentConfig(
                exp_id="flux_n", launcher=LAUNCHER_FLUX, workload=wl,
                n_nodes=n, n_partitions=p, duration=180.0, seed=seed))
    for n in DRAGON_NODES:
        cfgs.append(ExperimentConfig(
            exp_id="dragon", launcher=LAUNCHER_DRAGON, workload=wl,
            n_nodes=n, duration=180.0, seed=seed))
    for n in HYBRID_NODES:
        cfgs.append(ExperimentConfig(
            exp_id="flux+dragon", launcher=LAUNCHER_HYBRID,
            workload=WORKLOAD_MIXED, n_nodes=n,
            n_partitions=max(1, n // 4),
            duration=0.0 if null_workloads else 360.0, seed=seed))
    for n in IMPECCABLE_NODES:
        cfgs.append(ExperimentConfig(
            exp_id="impeccable_srun", launcher=LAUNCHER_SRUN,
            workload=WORKLOAD_IMPECCABLE, n_nodes=n, seed=seed))
        cfgs.append(ExperimentConfig(
            exp_id="impeccable_flux", launcher=LAUNCHER_FLUX,
            workload=WORKLOAD_IMPECCABLE, n_nodes=n, seed=seed))
    return cfgs


#: Full-machine scale pass: all of Frontier (9408 nodes) driven as one
#: flux_n configuration with 64 partitions — 147 nodes per partition.
FRONTIER_FULL_NODES = 9408
FRONTIER_FULL_PARTITIONS = 64

#: Weak-scaling sweep toward the full machine at a fixed 147
#: nodes/partition (the full-machine partition size), so each point
#: grows the machine and the partition count together.
FRONTIER_SCALE_POINTS: Tuple[Tuple[int, int], ...] = (
    (588, 4), (2352, 16), (FRONTIER_FULL_NODES, FRONTIER_FULL_PARTITIONS))


def frontier_full_configs(seed: int = 0,
                          waves: int = 4) -> List[ExperimentConfig]:
    """The full-machine weak-scaling family (``frontier_full``).

    Null-workload flux_n runs from 588 nodes up to the whole 9408-node
    machine; at four waves the largest point is ~2.1 M tasks.  The
    family enables the scale machinery (``bulk`` submission and
    ``lean`` retention) by default — both are trace-neutral, and the
    runs are unfeasibly slow and memory-hungry without them.
    """
    return [
        ExperimentConfig(
            exp_id="frontier_full", launcher=LAUNCHER_FLUX,
            workload=WORKLOAD_NULL, n_nodes=n, n_partitions=p,
            duration=0.0, waves=waves, seed=seed, bulk=True, lean=True,
            tags={"family": "frontier_full",
                  "nodes_per_partition": str(n // p)})
        for n, p in FRONTIER_SCALE_POINTS
    ]


#: Default fault regime for the resilience experiments: node crashes
#: roughly every 30 simulated minutes across the allocation, a 1 %
#: transient launch-failure rate, and a whole-backend crash about once
#: an hour.  Aggressive relative to production MTBFs, by design — a
#: short run must actually exercise recovery.
DEFAULT_FAULTS = FaultSpec(mtbf=1800.0, p_launch_fail=0.01,
                           backend_mtbf=3600.0)


def faults_configs(seed: int = 0) -> List[ExperimentConfig]:
    """Resilience experiment configurations (the fault-injection runs).

    One per recovery path: Flux partition failover (node crashes +
    broker restart), srun placement-level retry, and Dragon pool
    shrinkage.
    """
    return [
        ExperimentConfig(
            exp_id="faults", launcher=LAUNCHER_FLUX, workload=WORKLOAD_NULL,
            n_nodes=16, n_partitions=4, duration=0.0, waves=2, seed=seed,
            faults=DEFAULT_FAULTS),
        ExperimentConfig(
            exp_id="faults_srun", launcher=LAUNCHER_SRUN,
            workload=WORKLOAD_DUMMY, n_nodes=4, duration=60.0, waves=2,
            seed=seed, faults=DEFAULT_FAULTS),
        ExperimentConfig(
            exp_id="faults_dragon", launcher=LAUNCHER_DRAGON,
            workload=WORKLOAD_NULL, n_nodes=4, duration=0.0, waves=2,
            seed=seed,
            faults=replace(DEFAULT_FAULTS, backend_mtbf=0.0)),
    ]


def config_by_id(exp_id: str, **overrides) -> ExperimentConfig:
    """First Table-1 (or fault-injection) config with the given
    experiment id, with field overrides applied."""
    for cfg in table1_configs() + faults_configs() + frontier_full_configs():
        if cfg.exp_id == exp_id:
            return replace(cfg, **overrides) if overrides else cfg
    raise ConfigurationError(f"unknown experiment id {exp_id!r}")
