"""Calibration bookkeeping: the latency model's paper anchors.

:data:`PAPER_ANCHORS` records, for every constant-derived quantity the
model is calibrated against, the paper-reported value and the closed-
form prediction from a :class:`~repro.platform.latency.LatencyModel`.
:func:`check_calibration` evaluates all of them — used by tests to
guarantee that edits to the latency constants keep the documented
calibration honest, and by users to see at a glance what the model
encodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List

from ..platform.latency import FRONTIER_LATENCIES, LatencyModel


@dataclass(frozen=True)
class Anchor:
    """One calibrated quantity: paper value vs. model prediction."""

    name: str
    paper_value: float
    tolerance: float           #: acceptable relative deviation
    predict: Callable[[LatencyModel], float]

    def predicted(self, lat: LatencyModel) -> float:
        return self.predict(lat)

    def deviation(self, lat: LatencyModel) -> float:
        if self.paper_value == 0:
            return abs(self.predicted(lat))
        return abs(self.predicted(lat) - self.paper_value) / self.paper_value

    def ok(self, lat: LatencyModel) -> bool:
        return self.deviation(lat) <= self.tolerance


def _srun_rate(nodes: int) -> Callable[[LatencyModel], float]:
    def f(lat: LatencyModel) -> float:
        return 1.0 / (lat.srun_ctl_base + lat.srun_ctl_per_node * nodes
                      + lat.srun_ctl_per_node15 * nodes ** 1.5)
    return f


def _flux_lane_rate(nodes: int) -> Callable[[LatencyModel], float]:
    def f(lat: LatencyModel) -> float:
        lanes = max(1, math.ceil(nodes ** lat.flux_lane_alpha))
        return lanes * lat.flux_lane_rate
    return f


#: Every paper anchor the calibration targets (§4, Fig. 4-7 and text).
PAPER_ANCHORS: List[Anchor] = [
    Anchor("srun launch rate @1 node [tasks/s]", 152.0, 0.15,
           _srun_rate(1)),
    Anchor("srun launch rate @4 nodes [tasks/s]", 61.0, 0.20,
           _srun_rate(4)),
    Anchor("srun concurrency ceiling", 112.0, 0.0,
           lambda lat: float(lat.srun_ceiling)),
    Anchor("flux single-lane spawn rate @1 node [tasks/s]", 28.0, 0.05,
           _flux_lane_rate(1)),
    Anchor("flux burst capability @1024 nodes [tasks/s]", 744.0, 0.10,
           _flux_lane_rate(1024)),
    Anchor("flux instance bootstrap [s]", 20.0, 0.10,
           lambda lat: lat.flux_startup_mean),
    Anchor("dragon bootstrap [s]", 9.0, 0.10,
           lambda lat: lat.dragon_startup_mean),
    Anchor("dragon exec dispatch @4 nodes [tasks/s]", 343.0, 0.10,
           lambda lat: 1.0 / (lat.dragon_gs_exec_cost
                              * (1 + 4 * lat.dragon_gs_pernode_penalty))),
    Anchor("dragon exec dispatch @64 nodes [tasks/s]", 204.0, 0.10,
           lambda lat: 1.0 / (lat.dragon_gs_exec_cost
                              * (1 + 64 * lat.dragon_gs_pernode_penalty))),
    Anchor("RP task-management bound [tasks/s]", 1547.0, 0.35,
           lambda lat: 1.0 / ((lat.agent_dispatch_base
                               + 64 * lat.agent_dispatch_per_node)
                              * (1 + 8 * lat.agent_coord_per_instance))),
]


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of one calibration check."""

    name: str
    paper_value: float
    predicted: float
    deviation: float
    ok: bool


def check_calibration(
        latencies: LatencyModel = FRONTIER_LATENCIES
) -> List[CalibrationReport]:
    """Evaluate all anchors against a latency model."""
    return [
        CalibrationReport(
            name=a.name, paper_value=a.paper_value,
            predicted=a.predicted(latencies),
            deviation=a.deviation(latencies), ok=a.ok(latencies))
        for a in PAPER_ANCHORS
    ]
