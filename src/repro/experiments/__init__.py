"""Experiment configurations (Table 1) and the run harness."""

from .configs import (
    ExperimentConfig,
    LAUNCHER_DRAGON,
    LAUNCHER_FLUX,
    LAUNCHER_HYBRID,
    LAUNCHER_PRRTE,
    LAUNCHER_SRUN,
    WORKLOAD_DUMMY,
    WORKLOAD_IMPECCABLE,
    WORKLOAD_MIXED,
    WORKLOAD_NULL,
    config_by_id,
    frontier_full_configs,
    table1_configs,
)
from .figures import FigureData, export_figures
from .harness import (
    AggregateResult,
    ExperimentResult,
    build_pilot_description,
    build_workload,
    run_ensemble,
    run_experiment,
    run_repetitions,
)
from .parallel import resolve_jobs, run_many

__all__ = [
    "AggregateResult",
    "ExperimentConfig",
    "ExperimentResult",
    "FigureData",
    "export_figures",
    "LAUNCHER_DRAGON",
    "LAUNCHER_FLUX",
    "LAUNCHER_HYBRID",
    "LAUNCHER_PRRTE",
    "LAUNCHER_SRUN",
    "WORKLOAD_DUMMY",
    "WORKLOAD_IMPECCABLE",
    "WORKLOAD_MIXED",
    "WORKLOAD_NULL",
    "build_pilot_description",
    "build_workload",
    "config_by_id",
    "frontier_full_configs",
    "resolve_jobs",
    "run_ensemble",
    "run_experiment",
    "run_many",
    "run_repetitions",
    "table1_configs",
]
