"""Process-parallel experiment fan-out.

Every experiment run is a self-contained, seeded, deterministic
simulation, so independent runs (the repetitions of
:func:`~repro.experiments.harness.run_repetitions`, or the
configurations of a sweep) can execute in separate worker processes
with no coordination at all.  The contract is strict: a parallel run
produces *exactly* the results of the equivalent serial loop — same
metrics, same ordering, and byte-identical trace exports — because
each worker seeds its own simulation from the config and nothing is
shared between runs.

Two things do not survive the trip back from a worker process:

* ``ExperimentResult.tasks`` — task objects hold live generator
  frames and environment references and are not picklable;
* ``ExperimentResult.session`` — same reason, via the kernel queue.

Both are stripped (``tasks=[]``, ``session=None``) from parallel
results.  Callers that need the trace pass ``profile_path``: the
worker then exports the profiler's JSONL *inside* the worker, where
the session still exists, and the file lands on the shared
filesystem.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Callable, List, Optional, Sequence, Union

from ..exceptions import ConfigurationError, HostFailureError
from ..platform.latency import FRONTIER_LATENCIES, LatencyModel
from .configs import ExperimentConfig

__all__ = ["resolve_jobs", "run_many"]

#: Fresh-pool retries after a :class:`BrokenProcessPool` (a pool
#: worker killed by the OS — OOM, signal, node policy) before giving
#: up.  Each retry resubmits only the units that have no result yet;
#: everything already completed is salvaged, not re-run.
POOL_RETRIES = 2
POOL_RETRY_BACKOFF = 0.5


def resolve_jobs(jobs: Union[int, str, None] = None,
                 n_items: Optional[int] = None) -> int:
    """Turn a ``--parallel`` style argument into a worker count.

    ``None``, ``0`` and ``"auto"`` mean *use every core*; an integer
    requests exactly that many workers.  The result is clamped to
    ``n_items`` when given (more workers than runs is pure overhead)
    and is always at least 1.
    """
    if jobs is None or jobs == 0 or jobs == "auto":
        resolved = os.cpu_count() or 1
    else:
        try:
            resolved = int(jobs)
        except (TypeError, ValueError):
            raise ConfigurationError(f"bad parallel job count {jobs!r}")
        if resolved < 0:
            raise ConfigurationError(f"negative parallel job count {jobs}")
        if resolved == 0:
            resolved = os.cpu_count() or 1
    if n_items is not None:
        resolved = min(resolved, max(n_items, 1))
    return max(resolved, 1)


def _run_one(payload):
    """Worker entry point: run one experiment, return a picklable result.

    Module-level (not a closure) so the pool can pickle it.  The
    import of the harness is deferred to avoid a circular import —
    ``harness`` imports :func:`run_many` lazily for the same reason.
    """
    cfg, latencies, profile_path, bundle_path, cache = payload
    from ..resilience.crash import crash_point, crash_value
    from .harness import run_experiment

    # Crash-injection hook (tests only; inert without the env var):
    # ``REPRO_CRASH_AT=pool:<seed>`` hard-kills the pool worker that
    # picked up the first unit with that seed (or later), which the
    # parent sees as a BrokenProcessPool and must recover from.
    if crash_value("pool") is not None:
        crash_point("pool", float(cfg.seed))
    keep = profile_path is not None
    result = run_experiment(cfg, latencies, keep_session=keep,
                            bundle=bundle_path, cache=cache)
    if keep:
        from ..analytics import save_profile

        save_profile(result.session.profiler, profile_path)
    return replace(result, tasks=[], session=None)


def run_many(configs: Sequence[ExperimentConfig],
             latencies: LatencyModel = FRONTIER_LATENCIES,
             jobs: Union[int, str, None] = None,
             profile_paths: Optional[Sequence[Optional[str]]] = None,
             bundle_paths: Optional[Sequence[Optional[str]]] = None,
             progress: Optional[Callable] = None,
             ledger=None,
             cache=None,
             ) -> List["ExperimentResult"]:  # noqa: F821
    """Run several independent experiments, fanned out over processes.

    Results come back in input order regardless of completion order.
    With one worker (or one config) the pool is skipped entirely and
    the runs execute in-process — the serial fallback used by callers
    that were handed ``--parallel 1`` or run on a single-core box.

    ``bundle_paths`` works like ``profile_paths``: each named run
    writes its observability bundle inside the worker (spans, metrics,
    manifest and Perfetto trace do not survive pickling either).

    ``progress(n_completed, n_total, result)`` is called in the parent
    process as each run lands, in completion order (the telemetry
    feed ``run_repetitions(progress=)`` builds on).

    ``ledger`` (a :class:`~repro.resilience.SweepLedger`) makes the
    fan-out restartable: units already recorded as complete are not
    re-run (their metrics documents are rehydrated instead), and every
    unit that lands is durably recorded before the next progress call.

    A pool worker killed by the OS surfaces as
    :class:`BrokenProcessPool`; every result that already landed is
    salvaged, and only the unfinished units are resubmitted to a
    fresh pool (with backoff, up to :data:`POOL_RETRIES` times).
    A *deterministic* simulation error is never retried — it would
    fail identically — and propagates as-is.

    ``cache`` (a :class:`~repro.store.RunStore` or directory path)
    memoizes each unit through the content-addressed run store: hits
    are delivered inside the worker without simulating, misses
    populate the store there (concurrent workers racing on one digest
    resolve to one winner via atomic rename).
    """
    configs = list(configs)
    if profile_paths is None:
        profile_paths = [None] * len(configs)
    elif len(profile_paths) != len(configs):
        raise ConfigurationError(
            f"{len(profile_paths)} profile paths for {len(configs)} configs")
    if bundle_paths is None:
        bundle_paths = [None] * len(configs)
    elif len(bundle_paths) != len(configs):
        raise ConfigurationError(
            f"{len(bundle_paths)} bundle paths for {len(configs)} configs")
    payloads = [(cfg, latencies, path, bpath, cache)
                for cfg, path, bpath in zip(configs, profile_paths,
                                            bundle_paths)]
    results: List[Optional["ExperimentResult"]] = [None] * len(payloads)
    completed = 0

    def land(i, result, record=True):
        nonlocal completed
        results[i] = result
        if ledger is not None and record:
            ledger.record(configs[i], result)
        completed += 1
        if progress is not None:
            progress(completed, len(payloads), result)

    pending = []
    for i, cfg in enumerate(configs):
        doc = ledger.completed(cfg) if ledger is not None else None
        if doc is not None:
            from ..resilience.checkpoint import result_from_doc

            result = result_from_doc(cfg, doc)
            result.provenance = "resumed"
            land(i, result, record=False)
        else:
            pending.append(i)
    n_workers = resolve_jobs(jobs, n_items=len(pending))
    if n_workers <= 1 or len(pending) <= 1:
        for i in pending:
            land(i, _run_one(payloads[i]))
        return results
    # submit + as_completed (not pool.map): the progress callback
    # fires the moment each run lands; input order is restored via
    # the futures -> index map.
    retries = 0
    while pending:
        broken = None
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {pool.submit(_run_one, payloads[i]): i
                       for i in pending}
            for future in as_completed(futures):
                try:
                    result = future.result()
                except BrokenProcessPool as exc:
                    # This future's worker died (or the pool it needed
                    # did); keep draining — futures that finished
                    # before the breakage still hold good results.
                    broken = exc
                    continue
                land(futures[future], result)
        if broken is None:
            break
        pending = [i for i in pending if results[i] is None]
        if not pending:
            break
        if retries >= POOL_RETRIES:
            raise HostFailureError(
                f"parallel pool lost workers {retries + 1} times; "
                f"{len(pending)} of {len(payloads)} runs incomplete "
                f"(seeds {[configs[i].seed for i in pending]})"
            ) from broken
        time.sleep(POOL_RETRY_BACKOFF * (2 ** retries))
        retries += 1
        n_workers = resolve_jobs(jobs, n_items=len(pending))
    return results
