"""The experiment harness: config -> full stack run -> metrics.

:func:`run_experiment` builds a session on a Frontier-like cluster,
submits a pilot with the configured backend partitions, generates the
workload, executes it, and returns an :class:`ExperimentResult` with
the paper's three metrics plus the raw task list for time-series
analysis.  :func:`run_repetitions` aggregates several seeds the way
the paper reports average and maximum throughput across repetitions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..analytics.metrics import (
    ThroughputStats,
    makespan,
    startup_overheads,
    task_throughput,
    utilization,
)
from ..core.description import (
    PartitionSpec,
    PilotDescription,
    TaskDescription,
)
from ..core.session import Session
from ..core.task import Task
from ..exceptions import ConfigurationError
from ..faults import FaultReport
from ..platform.latency import FRONTIER_LATENCIES, LatencyModel
from ..platform.profiles import FRONTIER_CORES_PER_NODE, frontier
from ..workloads.impeccable import CampaignRunner
from ..workloads.synthetic import (
    dummy_workload,
    mixed_workload,
    task_count,
)
from .configs import (
    LAUNCHER_DRAGON,
    LAUNCHER_FLUX,
    LAUNCHER_HYBRID,
    LAUNCHER_PRRTE,
    LAUNCHER_SRUN,
    WORKLOAD_DUMMY,
    WORKLOAD_IMPECCABLE,
    WORKLOAD_MIXED,
    WORKLOAD_NULL,
    ExperimentConfig,
)


@dataclass
class ExperimentResult:
    """Metrics and raw data from one experiment run."""

    config: ExperimentConfig
    n_tasks: int
    n_done: int
    n_failed: int
    throughput: ThroughputStats
    utilization_cores: float
    utilization_gpus: float
    makespan: float
    startup_overheads: List[Tuple[str, float]]
    tasks: List[Task] = field(repr=False, default_factory=list)
    session: Optional[Session] = field(repr=False, default=None)
    wall_seconds: float = 0.0
    #: Fault-injection summary; ``None`` when the run had no fault model.
    faults: Optional[FaultReport] = None
    #: Shard workers the run used (0 = sequential single-kernel path).
    n_shards: int = 0
    #: Peak RSS per shard worker [MB] (empty on the sequential path).
    shard_peak_rss_mb: List[float] = field(default_factory=list)
    #: Host-recovery summary (crashed/hung shard workers respawned and
    #: replayed); ``None`` when nothing was recovered.  Wall-clock
    #: metadata only — recovery never changes the trace.
    host_recovery: Optional[dict] = None
    #: How this result was produced: ``"fresh"`` (simulated in this
    #: call), ``"cached"`` (delivered from a content-addressed run
    #: store), or ``"resumed"`` (rebuilt from a sweep ledger instead
    #: of re-running).  Identical metrics either way — provenance is
    #: bookkeeping, never a behavior difference.
    provenance: str = "fresh"
    #: Run-store interaction record (``None`` when caching was off):
    #: ``{"digest": ..., "hit": bool}`` plus ``"stored"`` on misses
    #: that populated the store.
    cache: Optional[dict] = None

    @property
    def throughput_avg(self) -> float:
        return self.throughput.avg

    @property
    def throughput_peak(self) -> float:
        return self.throughput.peak


def build_pilot_description(cfg: ExperimentConfig) -> PilotDescription:
    """Backend partitioning for one launcher configuration."""
    # Heterogeneous IMPECCABLE mixes need backfill; the homogeneous
    # synthetic workloads use plain FCFS (nothing to backfill).
    policy = "easy" if cfg.workload == WORKLOAD_IMPECCABLE else "fcfs"
    if cfg.launcher == LAUNCHER_SRUN:
        parts = (PartitionSpec("srun"),)
    elif cfg.launcher == LAUNCHER_FLUX:
        parts = (PartitionSpec("flux", n_instances=cfg.n_partitions,
                               policy=policy),)
    elif cfg.launcher == LAUNCHER_DRAGON:
        parts = (PartitionSpec("dragon", n_instances=cfg.n_partitions),)
    elif cfg.launcher == LAUNCHER_PRRTE:
        parts = (PartitionSpec("prrte"),)
    elif cfg.launcher == LAUNCHER_HYBRID:
        # Equal node shares and equal instance counts per runtime (§4.1.5).
        parts = (
            PartitionSpec("flux", n_instances=cfg.n_partitions),
            PartitionSpec("dragon", n_instances=cfg.n_partitions),
        )
    else:  # pragma: no cover - guarded by config validation
        raise ConfigurationError(f"unknown launcher {cfg.launcher!r}")
    return PilotDescription(nodes=cfg.n_nodes, partitions=parts)


def build_workload(cfg: ExperimentConfig,
                   cores_per_node: int = FRONTIER_CORES_PER_NODE
                   ) -> List[TaskDescription]:
    """The task set for one synthetic experiment run."""
    n = task_count(cfg.n_nodes, cores_per_node, cfg.waves)
    if cfg.workload == WORKLOAD_NULL:
        return dummy_workload(n, duration=0.0)
    if cfg.workload == WORKLOAD_DUMMY:
        return dummy_workload(n, duration=cfg.duration)
    if cfg.workload == WORKLOAD_MIXED:
        half = n // 2
        return mixed_workload(n - half, half, duration=cfg.duration)
    raise ConfigurationError(
        f"workload {cfg.workload!r} is not synthetic; use run_experiment")


def _attach_telemetry(session: Session, cfg: ExperimentConfig,
                      latencies: LatencyModel, progress):
    """Build and attach one run's live telemetry plumbing.

    ``progress`` is a :class:`~repro.observability.telemetry.
    TelemetryBus` (used as-is), a callable (subscribed as the sink of
    a fresh bus), or any other truthy value (fresh bus, no sink — the
    records still land in the bundle).  The ETA prior comes from the
    fluid surrogate when it covers the launcher.
    """
    from ..exceptions import ReproError
    from ..observability.telemetry import (
        EtaEstimator,
        HostProfiler,
        RunTelemetry,
        SessionSampler,
        TelemetryBus,
    )

    if isinstance(progress, TelemetryBus):
        bus = progress
    else:
        source = "shard" if session.engine is not None else "plain"
        bus = TelemetryBus(source,
                           sink=progress if callable(progress) else None)
    prior = None
    try:
        from ..ensemble.surrogate import FluidSurrogate

        prior = FluidSurrogate(latencies).predict(cfg).makespan
    except ReproError:
        pass  # launcher outside the surrogate's coverage: rate-only ETA
    sampler = SessionSampler(session, eta=EtaEstimator(None, prior),
                             host=HostProfiler())
    telemetry = RunTelemetry(bus, sampler)
    session.telemetry = telemetry
    session.env._probe = telemetry.probe()
    return telemetry


def run_experiment(cfg: ExperimentConfig,
                   latencies: LatencyModel = FRONTIER_LATENCIES,
                   keep_session: bool = False,
                   observe: bool = False,
                   bundle: Optional[str] = None,
                   spill_dir=None,
                   shard_inline: bool = False,
                   descriptions: Optional[List[TaskDescription]] = None,
                   progress=None,
                   resilience=None,
                   cache=None,
                   _resume_verify=None,
                   _derived_descriptions: bool = False
                   ) -> ExperimentResult:
    """Run one experiment end-to-end and compute its metrics.

    ``observe`` enables the session's observability layer (metrics
    registry + online tracer); ``bundle`` names a directory to write
    the run's observability bundle into (manifest, metrics, spans,
    Perfetto trace, raw profile) and implies ``observe``.
    ``spill_dir`` streams the profiler's trace to chunked files under
    that directory, bounding memory on full-machine runs.  All three —
    like ``cfg.bulk`` and ``cfg.lean`` — leave the simulated event
    order untouched: same-seed runs produce byte-identical traces with
    or without them.

    ``shard_inline`` runs a sharded config's shards on the calling
    thread instead of worker processes — same simulation, same merged
    trace, no parallelism; the equality is pinned by the determinism
    tests.  Ignored when ``cfg.shards`` is off.

    ``descriptions`` supplies a pre-built synthetic workload, letting
    sweep callers (:func:`run_repetitions`, the ensemble engine) pay
    description construction once for all seeds — the descriptions
    are immutable and seed-independent, so sharing them across runs
    cannot change any outcome.  Ignored for the IMPECCABLE campaign,
    which generates tasks adaptively inside the run.

    ``progress`` turns on the live telemetry bus (implies
    ``observe``): pass a sink callable, a pre-built ``TelemetryBus``,
    or ``True``.  Sampling is read-only and wall-clock rate-limited,
    so — like the other switches — same-seed traces stay
    byte-identical with it on or off.

    ``resilience`` is an optional
    :class:`~repro.resilience.ResilienceSpec`: a checkpoint directory
    arms periodic durable checkpoints of the run's progress
    watermarks, and ``supervise`` turns on respawn-and-replay recovery
    of crashed/hung shard workers.  Both are wall-clock-side and
    trace-inert (see ``docs/RESILIENCE.md``).  ``_resume_verify`` is
    internal resume plumbing — the checkpointed state document the
    replay must match (see :func:`resume_experiment`).

    ``cache`` memoizes the run through a content-addressed store (a
    :class:`~repro.store.RunStore` or a directory path; ``None`` —
    the default — leaves every path exactly as before).  The run is
    keyed by a digest of (normalized config, seed, workload, code
    fingerprint); a verified hit returns the stored metrics (and the
    byte-exact profile, via the store API) in milliseconds without
    building a session, and a miss simulates then populates the
    store.  Hits are task-free (``tasks=[]``, ``session=None``, like
    parallel results), so runs that need live state — ``keep_session``,
    ``bundle``, checkpoint resume — always simulate fresh; they still
    populate the store on the way out.  ``_derived_descriptions``
    marks a caller-supplied ``descriptions`` list as the canonical
    :func:`build_workload` output (sweep callers hoist construction),
    keeping its digest identical to a derive-it-yourself run.
    """
    wall0 = time.perf_counter()
    store = run_key = None
    if cache is not None:
        from ..store import RunStore

        store = RunStore.resolve(cache)
        run_key = store.digest_for(
            cfg, descriptions=descriptions,
            derived=_derived_descriptions or descriptions is None)
        if keep_session is False and bundle is None and \
                _resume_verify is None:
            cached = store.load_result(cfg, run_key)
            if cached is not None:
                cached.wall_seconds = time.perf_counter() - wall0
                return cached
    observe = observe or bundle is not None or progress is not None
    checkpointer = None
    if resilience is not None and resilience.checkpointing:
        from ..resilience.checkpoint import RunCheckpointer

        checkpointer = RunCheckpointer(resilience.checkpoint_dir, cfg,
                                       resilience, verify=_resume_verify)
    session = Session(cluster=frontier(max(cfg.n_nodes, 1)),
                      latencies=latencies, seed=cfg.seed, observe=observe,
                      faults=cfg.faults, lean=cfg.lean, spill_dir=spill_dir,
                      shards=cfg.shards, shard_inline=shard_inline,
                      resilience=resilience)
    if checkpointer is not None:
        checkpointer.attach(session)
    # A bundle run records telemetry even without a live sink, so
    # ``trace watch`` always has something to replay from the bundle.
    telemetry = (_attach_telemetry(session, cfg, latencies, progress)
                 if progress is not None or bundle is not None else None)
    host = telemetry.sampler.host if telemetry is not None else None
    span = session.obs.tracer.begin(
        "experiment", cat="experiment",
        launcher=cfg.launcher, workload=cfg.workload, seed=cfg.seed)
    if host is not None:
        host.start("setup")
    pmgr = session.pilot_manager()
    tmgr = session.task_manager()
    pilot = pmgr.submit_pilots(build_pilot_description(cfg))
    tmgr.add_pilot(pilot)
    if telemetry is not None:
        telemetry.sampler.pilot = pilot
    if host is not None:
        host.stop("setup")

    if cfg.workload == WORKLOAD_IMPECCABLE:
        # Campaign tasks are generated adaptively mid-run, so the
        # telemetry total stays unknown (ETA falls back to the prior).
        runner = CampaignRunner(session, tmgr, pilot, cfg.n_nodes,
                                generations=cfg.generations,
                                adaptive=cfg.adaptive)
        if host is not None:
            host.start("run")
        session.run(runner.start())
        if host is not None:
            host.stop("run")
        tasks = runner.result.tasks
    else:
        if host is not None:
            host.start("workload")
        if descriptions is None:
            descriptions = build_workload(cfg, session.cluster.cores_per_node)
        tasks = tmgr.submit_tasks(descriptions, bulk=cfg.bulk)
        if host is not None:
            host.stop("workload")
        if telemetry is not None:
            telemetry.sampler.tasks_total = len(tasks)
        if host is not None:
            host.start("run")
        session.run(tmgr.wait_tasks())
        if host is not None:
            host.stop("run")
    session.obs.tracer.end(span)
    if telemetry is not None:
        telemetry.sampler.tasks_total = len(tasks)
    if host is not None:
        host.start("metrics")

    total_cores = cfg.n_nodes * session.cluster.cores_per_node
    total_gpus = cfg.n_nodes * session.cluster.gpus_per_node
    result = ExperimentResult(
        config=cfg,
        n_tasks=len(tasks),
        n_done=sum(1 for t in tasks if t.succeeded),
        n_failed=sum(1 for t in tasks if t.state == "FAILED"),
        throughput=task_throughput(tasks),
        utilization_cores=utilization(tasks, total_cores),
        utilization_gpus=(utilization(tasks, total_gpus, resource="gpus")
                          if total_gpus else 0.0),
        makespan=makespan(tasks),
        startup_overheads=startup_overheads(session.profiler),
        tasks=tasks,
        session=session if keep_session else None,
        wall_seconds=time.perf_counter() - wall0,
        faults=(FaultReport.collect(session.faults, tasks, makespan(tasks))
                if session.faults is not None else None),
        n_shards=len(session.engine.hosts) if session.engine is not None
        else 0,
        shard_peak_rss_mb=(list(session.engine.shard_peak_rss_mb)
                           if session.engine is not None else []),
        host_recovery=(session.engine.recovery.to_doc()
                       if session.engine is not None
                       and session.engine.recovery else None),
    )
    if store is not None:
        # Populate on miss (or bypassed read): the profile export is
        # the same ``save_profile`` bytes a fresh export produces, so
        # a later hit delivers a byte-identical trace.  Losing a
        # publication race to a concurrent writer costs nothing — the
        # winner's entry is byte-identical by the determinism
        # contract.
        stored = store.put(run_key, cfg, result,
                           profiler=session.profiler)
        result.cache = {"digest": run_key, "hit": False, "stored": stored}
    if checkpointer is not None:
        # The final (complete) checkpoint — and, on a resume, the
        # point where a replay that never crossed the watermark fails
        # loudly instead of pretending it continued anything.
        checkpointer.close(complete=True)
    if host is not None:
        host.stop("metrics")
    if telemetry is not None:
        # The final record: every progress-enabled run emits at least
        # one snapshot regardless of how briefly it ran.
        telemetry.flush()
    if bundle is not None:
        write_run_bundle(bundle, cfg, session, result)
    session.close()
    return result


def write_run_bundle(directory, cfg: ExperimentConfig, session: Session,
                     result: Optional[ExperimentResult] = None):
    """Write the observability bundle for a finished run.

    Spans are reconstructed offline from the session's profiler (the
    authoritative record); live tracer spans — e.g. the harness's
    ``experiment`` span and agent bootstrap spans — ride along under
    the session root.  Returns ``{artifact name: path}``.
    """
    from ..observability import build_manifest, spans_from_profiler
    from ..observability.manifest import write_bundle

    spans = None
    if session.profiler.enabled and len(session.profiler):
        spans = spans_from_profiler(session.profiler, session_uid=session.uid)
        live = [s for s in session.obs.tracer.roots if s.closed]
        # Sorted, not arrival-ordered: sharded runs merge worker spans
        # at window boundaries, so arrival order depends on shard
        # grouping while (start, name) does not.
        live.sort(key=lambda s: (s.start, s.name))
        spans.children.extend(live)
    manifest = build_manifest(config=cfg, session=session, result=result)
    return write_bundle(directory, manifest,
                        registry=session.obs.registry,
                        spans=spans,
                        profiler=session.profiler,
                        telemetry=(session.telemetry.records
                                   if session.telemetry is not None
                                   else None))


def resume_experiment(directory,
                      latencies: LatencyModel = FRONTIER_LATENCIES,
                      **kwargs) -> ExperimentResult:
    """Continue an interrupted checkpointed run to completion.

    Loads the checkpoint header from ``directory``, rebuilds the exact
    config (seed included), and re-executes the run deterministically;
    when the replayed clock reaches the checkpoint's watermark the
    live kernel/RNG/profile state is compared against the snapshot and
    a mismatch raises :class:`~repro.exceptions.CheckpointError`.  The
    returned result — and any profile written from it — is
    byte-identical to the uninterrupted run's, which is the whole
    point: resume never invents a state the original run would not
    have reached.  ``kwargs`` pass through to :func:`run_experiment`
    (``keep_session``, ``bundle``, ...).
    """
    from ..resilience.checkpoint import config_from_doc, load_checkpoint
    from ..resilience.spec import ResilienceSpec

    doc = load_checkpoint(directory)
    cfg = config_from_doc(doc["config"])
    spec = ResilienceSpec.from_doc(
        dict(doc.get("spec", {}), checkpoint_dir=str(directory)))
    return run_experiment(cfg, latencies, resilience=spec,
                          _resume_verify=doc.get("state"), **kwargs)


@dataclass(frozen=True)
class AggregateResult:
    """Across-repetition aggregation (the paper's avg / max)."""

    config: ExperimentConfig
    n_reps: int
    throughput_avg: float      #: mean of per-rep average rates
    throughput_max: float      #: max of per-rep peak rates
    utilization_avg: float
    makespan_avg: float
    results: Tuple[ExperimentResult, ...] = field(repr=False, default=())

    @property
    def provenance(self) -> dict:
        """Per-seed provenance counts (``fresh``/``cached``/
        ``resumed``) across the repetitions — how many were actually
        simulated vs delivered from the run store or sweep ledger."""
        counts: dict = {}
        for result in self.results:
            kind = getattr(result, "provenance", "fresh")
            counts[kind] = counts.get(kind, 0) + 1
        return counts


def run_repetitions(cfg: ExperimentConfig, n_reps: int = 3,
                    latencies: LatencyModel = FRONTIER_LATENCIES,
                    parallel=None, seeds=None,
                    progress=None, checkpoint=None,
                    resilience=None, cache=None) -> AggregateResult:
    """Run several seeds of one configuration and aggregate.

    ``seeds`` names the repetition seeds explicitly — a sequence of
    ints or a CLI-style spec string (``"1,2,5-20"``); the default
    derives ``cfg.seed + rep`` for ``n_reps`` repetitions.

    ``parallel`` fans the repetitions out over worker processes
    (``"auto"``/``0`` = one per core, an int = that many workers; see
    :mod:`repro.experiments.parallel`).  Each repetition is an
    independent seeded simulation, so the aggregate is identical to
    the serial loop's — but parallel results carry no per-task objects
    (``ExperimentResult.tasks`` is empty; tasks cannot cross the
    process boundary).  The default (``None``) keeps the serial path.

    ``progress`` streams sweep telemetry (``source: "parallel"``,
    one record per completed repetition, wall-clock ETA): a callable
    sink, a pre-built
    :class:`~repro.observability.telemetry.TelemetryBus`, or any
    truthy value for buffered-only records.

    ``checkpoint`` names a directory for a durable sweep ledger: each
    finished repetition's metrics document is recorded atomically, and
    a restarted sweep with the same directory skips every repetition
    already in the ledger (their results are rebuilt from the ledger,
    task-free, like parallel results).  Each repetition is an
    independent seeded run, so skip-and-reload aggregates identically
    to rerunning.

    ``resilience`` applies shard-worker supervision to each serial
    repetition (see :class:`~repro.resilience.ResilienceSpec`); its
    ``checkpoint_dir`` must be unset — per-rep run checkpoints would
    clobber each other, the sweep ledger is the durable state here.

    ``cache`` memoizes each repetition through a content-addressed
    run store at **per-seed granularity** — a 64-seed sweep with 60
    seeds already stored simulates only the missing 4.  Each
    result's :attr:`~ExperimentResult.provenance` says whether it was
    simulated (``fresh``), delivered from the store (``cached``), or
    rebuilt from the ledger (``resumed``); the aggregate's
    :attr:`~AggregateResult.provenance` counts them, and sweep
    telemetry records carry the same per-member classification.
    """
    if resilience is not None and resilience.checkpointing:
        raise ConfigurationError(
            "run checkpoints do not compose with repetitions; pass "
            "checkpoint= for a sweep ledger instead")
    if seeds is not None:
        from ..ensemble.seeds import resolve_seeds

        seed_list = resolve_seeds(seeds)
    else:
        if n_reps < 1:
            raise ConfigurationError("n_reps must be >= 1")
        seed_list = [cfg.seed + rep for rep in range(n_reps)]
    n_reps = len(seed_list)
    cfgs = [cfg.with_seed(seed) for seed in seed_list]
    telemetry = None
    if progress is not None:
        from ..observability.telemetry import SweepTelemetry

        telemetry = SweepTelemetry.create("parallel", n_reps, progress)

    def rep_done(result):
        if telemetry is not None:
            telemetry.member_done(result.n_tasks, result.n_done,
                                  result.n_failed,
                                  provenance=result.provenance)
    # Per-sweep setup is paid once: the synthetic workload is
    # seed-independent, so every repetition submits the same immutable
    # descriptions (the campaign workload generates its own tasks).
    shared = (build_workload(cfg, frontier(max(cfg.n_nodes, 1)).cores_per_node)
              if cfg.workload != WORKLOAD_IMPECCABLE else None)
    ledger = None
    if checkpoint is not None:
        from ..resilience.checkpoint import SweepLedger

        ledger = SweepLedger(checkpoint)
    serial = True
    if parallel is not None:
        from .parallel import resolve_jobs, run_many

        if resolve_jobs(parallel, n_items=n_reps) > 1:
            serial = False
            results = run_many(
                cfgs, latencies, jobs=parallel,
                progress=(lambda done, total, r: rep_done(r))
                if telemetry is not None else None,
                ledger=ledger, cache=cache)
    if serial:
        from ..resilience.checkpoint import result_from_doc

        results = []
        for c in cfgs:
            if ledger is not None:
                doc = ledger.completed(c)
                if doc is not None:
                    # Finished before the interruption: rebuild from
                    # the ledger instead of re-simulating.
                    result = result_from_doc(c, doc)
                    result.provenance = "resumed"
                    results.append(result)
                    rep_done(result)
                    continue
            result = run_experiment(c, latencies, descriptions=shared,
                                    resilience=resilience, cache=cache,
                                    _derived_descriptions=True)
            if ledger is not None:
                ledger.record(c, result)
            results.append(result)
            rep_done(result)
    return AggregateResult(
        config=cfg,
        n_reps=n_reps,
        throughput_avg=sum(r.throughput.avg for r in results) / n_reps,
        throughput_max=max(r.throughput.peak for r in results),
        utilization_avg=sum(r.utilization_cores for r in results) / n_reps,
        makespan_avg=sum(r.makespan for r in results) / n_reps,
        results=tuple(results),
    )


def run_ensemble(cfg: ExperimentConfig, seeds=None, n_reps=None,
                 latencies: LatencyModel = FRONTIER_LATENCIES,
                 **kwargs):
    """Batched multi-seed sweep; see :func:`repro.ensemble.run_ensemble`.

    Re-exported here so sweep code has one import site for both
    execution shapes (`run_repetitions` for aggregate-only, ensembles
    for per-member results/profiles).
    """
    from ..ensemble import run_ensemble as _run_ensemble

    return _run_ensemble(cfg, seeds=seeds, n_reps=n_reps,
                         latencies=latencies, **kwargs)
