"""Canonical run identity: what makes two runs *the same run*.

A run digest is a sha256 over four components:

``config``
    The canonical cache key of the :class:`ExperimentConfig` —
    every behavior-affecting field, serialized with sorted keys at
    every nesting level (dict insertion order must never leak into
    the digest), defaults filled by ``dataclasses.asdict``.  Fields
    that are *labels* (``exp_id``, ``tags``) or *pinned
    trace-neutral execution knobs* (``seed`` — keyed separately —
    ``bulk``, ``lean``, ``shards``) are excluded: the determinism
    suites guarantee that same-seed traces are byte-identical across
    those switches, so two configs differing only there denote the
    same simulated run (see :data:`CACHE_KEY_EXCLUDED`).

``seed``
    Kept out of the config key so sweeps get per-seed granularity: a
    64-seed ensemble with 60 seeds already stored simulates only the
    missing 4.

``workload``
    ``"derived"`` when the task set comes from
    :func:`~repro.experiments.harness.build_workload` (then it is a
    pure function of the config and adds no information), otherwise a
    content digest of the caller-supplied description list.

``code``
    A fingerprint of every ``.py`` source file in the installed
    ``repro`` package — any source change, anywhere, invalidates
    every cached run.  Coarse on purpose: a stale hit is a
    correctness bug, a spurious miss is one re-simulation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

#: Version of the digest scheme itself; bump on any change to the
#: normalization or fingerprint rules so old stores go stale instead
#: of serving entries keyed under different semantics.
KEY_SCHEME = 1

#: Config fields excluded from the cache key.  ``exp_id`` and
#: ``tags`` are labels (no effect on the simulation); ``seed`` is a
#: separate digest component; ``bulk``, ``lean`` and ``shards`` are
#: execution switches whose trace-neutrality is pinned by
#: ``tests/property/test_prop_bulk_submit.py`` and the shard
#: determinism suite — byte-identical profiles for any value.
CACHE_KEY_EXCLUDED = ("exp_id", "tags", "seed", "bulk", "lean", "shards")


def normalize_config(cfg) -> Dict[str, Any]:
    """The behavior-defining document of a config.

    ``dataclasses.asdict`` fills every default and recurses into
    nested dataclasses (fault specs, retry policies); the excluded
    label/execution fields are dropped.  The result is
    JSON-serializable and — once dumped with ``sort_keys=True`` —
    independent of dict insertion order at every level.
    """
    doc = dataclasses.asdict(cfg)
    for name in CACHE_KEY_EXCLUDED:
        doc.pop(name, None)
    return doc


def canonical_json(doc: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, ``repr``
    fallback for non-JSON leaves (enums, paths)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      default=repr)


def cache_key(cfg) -> str:
    """sha256 of the normalized config document (seed excluded)."""
    payload = canonical_json(normalize_config(cfg))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def workload_digest(descriptions: Sequence) -> str:
    """Content digest of an explicit task-description list.

    Only needed when a caller hands :func:`run_experiment` a workload
    that is *not* the config-derived one; the canonical sweeps pass
    ``build_workload`` output, which the harness marks as derived and
    which therefore adds nothing beyond the config key.
    """
    hasher = hashlib.sha256()
    for desc in descriptions:
        hasher.update(canonical_json(
            dataclasses.asdict(desc)).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


# -- code-version fingerprint ------------------------------------------------

_FINGERPRINT_CACHE: Dict[str, str] = {}


def code_fingerprint(root: Optional[Path] = None,
                     refresh: bool = False) -> str:
    """Fingerprint of the ``repro`` package's source tree.

    sha256 over the sorted ``(relative path, content sha256)`` pairs
    of every ``.py`` file under the package directory.  Memoized per
    process (source files do not change under a running simulation);
    ``refresh`` forces a re-scan, which the tests use to observe
    invalidation without restarting the interpreter.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root)
    key = str(root)
    if not refresh and key in _FINGERPRINT_CACHE:
        return _FINGERPRINT_CACHE[key]
    hasher = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        try:
            content = path.read_bytes()
        except OSError:  # pragma: no cover - racing file removal
            continue
        digest = hashlib.sha256(content).hexdigest()
        hasher.update(f"{rel}:{digest}\n".encode("utf-8"))
    fingerprint = hasher.hexdigest()
    _FINGERPRINT_CACHE[key] = fingerprint
    return fingerprint


def run_digest(cfg, seed: Optional[int] = None,
               descriptions: Optional[Sequence] = None,
               derived: bool = True,
               fingerprint: Optional[str] = None) -> str:
    """The content address of one run.

    ``seed`` defaults to ``cfg.seed``; ``descriptions``/``derived``
    select the workload component (see module docstring);
    ``fingerprint`` overrides the code fingerprint (tests).
    """
    if seed is None:
        seed = cfg.seed
    if derived or descriptions is None:
        workload = "derived"
    else:
        workload = workload_digest(descriptions)
    payload = canonical_json({
        "scheme": KEY_SCHEME,
        "config": cache_key(cfg),
        "seed": int(seed),
        "workload": workload,
        "code": fingerprint if fingerprint is not None
        else code_fingerprint(),
    })
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
