"""The content-addressed on-disk run store.

Layout (everything under one root directory)::

    <root>/
      store.json        format marker + digest-scheme version
      index.json        digest -> {summary, last_access, hits, bytes}
      index.lock        advisory lock serializing index/eviction updates
      objects/ab/<digest>/
        entry.json      full config doc, cache key, fingerprint,
                        artifact hashes + sizes
        result.json     the run's metrics document
        profile.jsonl   byte-exact trace export (save_profile format)
      tmp/              staging dirs (one atomic rename publishes each)
      trash/            eviction staging (renamed out, then deleted)

Correctness properties, each pinned by ``tests/store``:

* **Atomic publication.**  A writer stages the whole entry in
  ``tmp/`` and publishes it with one ``os.rename``; concurrent
  writers of the same digest race to one winner (``rename`` onto an
  existing directory fails; the loser discards its staging copy).
  Readers never observe a partial entry.
* **Integrity on read.**  ``entry.json`` records the sha256 of every
  artifact; every artifact a read *delivers* is verified against it
  first.  A corrupt entry is quarantined (counted, removed) and
  reported as a miss — never served.
* **Safe eviction.**  Eviction renames the entry directory into
  ``trash/`` before deleting; a reader holding open file handles
  keeps its POSIX data, and no half-deleted entry is ever visible at
  its content address.
* **LRU / size caps.**  ``max_bytes`` / ``max_entries`` evict
  least-recently-used entries after each write (and on demand via
  :meth:`RunStore.gc`).
"""

from __future__ import annotations

import contextlib
import dataclasses
import errno
import hashlib
import json
import os
import shutil
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from ..exceptions import StoreError
from .keys import KEY_SCHEME, cache_key, run_digest

try:  # pragma: no cover - POSIX (the supported platform) has fcntl
    import fcntl
except ImportError:  # pragma: no cover - win fallback: no inter-proc lock
    fcntl = None

PathLike = Union[str, Path]

STORE_FORMAT = "repro-run-store"
STORE_VERSION = 1

#: Artifact names every complete entry carries.
ARTIFACT_RESULT = "result.json"
ARTIFACT_PROFILE = "profile.jsonl"
ENTRY_NAME = "entry.json"


@dataclasses.dataclass
class StoreStats:
    """Hit/miss/write counters (per store instance and process-wide).

    The process-wide instance (:data:`STATS`) is what the benchmark
    harness snapshots to prove its numbers were produced cache-cold
    (see ``benchmarks/conftest.rate_stats``).
    """

    hits: int = 0
    misses: int = 0
    stored: int = 0
    lost_races: int = 0
    evicted: int = 0
    integrity_failures: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        now = self.snapshot()
        return {key: now[key] - before.get(key, 0) for key in now}


#: Process-wide counters, aggregated across every store instance.
STATS = StoreStats()


def _sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _sha256_file(path: Path) -> str:
    hasher = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


# -- result (de)serialization ------------------------------------------------


def result_to_doc(result) -> Dict[str, Any]:
    """The store's metrics document for one finished run.

    The sweep ledger's document plus the fault report — everything an
    :class:`~repro.experiments.harness.ExperimentResult` carries
    except per-task objects and the live session (the same contract
    parallel repetitions already have).
    """
    from ..resilience.checkpoint import result_to_doc as ledger_doc

    doc = ledger_doc(result)
    doc["faults"] = (dataclasses.asdict(result.faults)
                     if result.faults is not None else None)
    doc["shard_peak_rss_mb"] = list(result.shard_peak_rss_mb)
    return doc


def result_from_doc(cfg, doc: Dict[str, Any]):
    """Rebuild a task-free ``ExperimentResult`` from its document."""
    from ..resilience.checkpoint import result_from_doc as ledger_result

    result = ledger_result(cfg, doc)
    faults = doc.get("faults")
    if faults is not None:
        from ..faults import FaultReport

        faults = dict(faults)
        faults["schedule"] = tuple(
            tuple(item) for item in faults.get("schedule", ()))
        result.faults = FaultReport(**faults)
    result.shard_peak_rss_mb = [
        float(v) for v in doc.get("shard_peak_rss_mb", [])]
    return result


@dataclasses.dataclass
class CachedRun:
    """One verified store entry, ready to deliver."""

    digest: str
    path: Path
    entry: Dict[str, Any]
    result_doc: Dict[str, Any]

    def to_result(self, cfg):
        """The run's (task-free) ``ExperimentResult``, marked cached."""
        result = result_from_doc(cfg, self.result_doc)
        result.provenance = "cached"
        result.cache = {"hit": True, "digest": self.digest}
        return result

    def profile_bytes(self) -> bytes:
        """The byte-exact profile export, integrity-verified."""
        path = self.path / ARTIFACT_PROFILE
        data = path.read_bytes()
        recorded = self.entry["artifacts"][ARTIFACT_PROFILE]["sha256"]
        if _sha256_bytes(data) != recorded:
            raise StoreError(
                f"store entry {self.digest[:12]}: profile blob corrupt "
                f"(sha256 mismatch against {ENTRY_NAME})")
        return data


class RunStore:
    """Content-addressed store of finished runs, keyed by run digest."""

    def __init__(self, root: PathLike,
                 max_bytes: Optional[int] = None,
                 max_entries: Optional[int] = None) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.stats = StoreStats()
        self.root.mkdir(parents=True, exist_ok=True)
        marker = self.root / "store.json"
        if not marker.exists():
            from ..resilience.atomic import atomic_write_json

            atomic_write_json(marker, {
                "format": STORE_FORMAT,
                "version": STORE_VERSION,
                "key_scheme": KEY_SCHEME,
            })
        else:
            doc = json.loads(marker.read_text(encoding="utf-8"))
            if doc.get("format") != STORE_FORMAT:
                raise StoreError(f"{self.root}: not a repro run store")
            if doc.get("key_scheme") != KEY_SCHEME:
                raise StoreError(
                    f"{self.root}: digest scheme {doc.get('key_scheme')!r} "
                    f"does not match this code's scheme {KEY_SCHEME}")

    # -- construction helpers ----------------------------------------------

    @classmethod
    def resolve(cls, cache) -> Optional["RunStore"]:
        """Coerce a ``cache=`` argument: ``None`` stays off, a
        :class:`RunStore` passes through, anything path-like opens a
        store rooted there."""
        if cache is None:
            return None
        if isinstance(cache, RunStore):
            return cache
        return cls(cache)

    def digest_for(self, cfg, seed: Optional[int] = None,
                   descriptions: Optional[Sequence] = None,
                   derived: bool = True,
                   fingerprint: Optional[str] = None) -> str:
        """The run digest this store would file ``cfg`` under."""
        return run_digest(cfg, seed=seed, descriptions=descriptions,
                          derived=derived, fingerprint=fingerprint)

    # -- paths and locking -------------------------------------------------

    def _object_dir(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / digest

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Advisory inter-process lock for index and eviction updates."""
        lock_path = self.root / "index.lock"
        fd = os.open(str(lock_path), os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            if fcntl is not None:
                with contextlib.suppress(OSError):
                    fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _read_index(self) -> Dict[str, Dict[str, Any]]:
        path = self.root / "index.json"
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            # The index is a derived structure; a torn or missing one
            # is rebuilt from the object directories, never fatal.
            return self._scan_objects()
        return dict(doc.get("entries", {}))

    def _write_index(self, entries: Dict[str, Dict[str, Any]]) -> None:
        from ..resilience.atomic import atomic_write_json

        atomic_write_json(self.root / "index.json", {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "entries": entries,
        })

    def _scan_objects(self) -> Dict[str, Dict[str, Any]]:
        """Rebuild index entries from the object directories."""
        entries: Dict[str, Dict[str, Any]] = {}
        objects = self.root / "objects"
        if not objects.is_dir():
            return entries
        for entry_path in objects.glob("*/*/" + ENTRY_NAME):
            try:
                entry = json.loads(entry_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            digest = entry.get("digest")
            if digest:
                entries[digest] = self._index_meta(entry)
        return entries

    @staticmethod
    def _index_meta(entry: Dict[str, Any]) -> Dict[str, Any]:
        cfg = entry.get("config", {})
        total = sum(a.get("bytes", 0)
                    for a in entry.get("artifacts", {}).values())
        return {
            "exp_id": cfg.get("exp_id"),
            "launcher": cfg.get("launcher"),
            "workload": cfg.get("workload"),
            "n_nodes": cfg.get("n_nodes"),
            "n_partitions": cfg.get("n_partitions"),
            "seed": entry.get("seed"),
            "created": entry.get("created"),
            "last_access": entry.get("created"),
            "bytes": total,
            "hits": 0,
        }

    # -- write path --------------------------------------------------------

    def put(self, digest: str, cfg, result,
            profile_bytes: Optional[bytes] = None,
            profiler=None) -> bool:
        """Store one finished run under ``digest``.

        The profile comes either as the exact bytes of a
        ``save_profile`` export or as a live profiler (exported here
        with the same helper, hence the same bytes).  Returns ``True``
        when this call published the entry, ``False`` when another
        writer won the race (their copy is byte-identical by the
        determinism contract, so losing costs nothing).
        """
        final = self._object_dir(digest)
        if final.exists():
            return False
        if profile_bytes is None:
            if profiler is None:
                raise StoreError("put needs profile_bytes or a profiler")
            profile_bytes = export_profile_bytes(profiler)
        stage = self.root / "tmp" / f"{digest}.{os.getpid()}.{uuid.uuid4().hex}"
        stage.mkdir(parents=True)
        try:
            (stage / ARTIFACT_PROFILE).write_bytes(profile_bytes)
            result_text = json.dumps(result_to_doc(result), sort_keys=True,
                                     indent=2) + "\n"
            result_bytes = result_text.encode("utf-8")
            (stage / ARTIFACT_RESULT).write_bytes(result_bytes)
            entry = {
                "format": STORE_FORMAT,
                "version": STORE_VERSION,
                "digest": digest,
                "cache_key": cache_key(cfg),
                "seed": cfg.seed,
                "config": dataclasses.asdict(cfg),
                "created": time.time(),
                "artifacts": {
                    ARTIFACT_RESULT: {
                        "sha256": _sha256_bytes(result_bytes),
                        "bytes": len(result_bytes),
                    },
                    ARTIFACT_PROFILE: {
                        "sha256": _sha256_bytes(profile_bytes),
                        "bytes": len(profile_bytes),
                    },
                },
            }
            entry_bytes = (json.dumps(entry, sort_keys=True, indent=2,
                                      default=repr) + "\n").encode("utf-8")
            (stage / ENTRY_NAME).write_bytes(entry_bytes)
            final.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(stage, final)
            except OSError as exc:
                if exc.errno in (errno.EEXIST, errno.ENOTEMPTY,
                                 errno.EPERM):
                    # Another writer published the same digest first;
                    # by the determinism contract its bytes equal ours.
                    self.stats.lost_races += 1
                    STATS.lost_races += 1
                    return False
                raise
        finally:
            if stage.exists():
                shutil.rmtree(stage, ignore_errors=True)
        with self._locked():
            entries = self._read_index()
            entries[digest] = self._index_meta(entry)
            self._enforce_caps(entries, protect=digest)
            self._write_index(entries)
        self.stats.stored += 1
        STATS.stored += 1
        return True

    # -- read path ---------------------------------------------------------

    def fetch(self, digest: str, touch: bool = True) -> Optional[CachedRun]:
        """The verified entry at ``digest``, or ``None`` (a miss).

        Verifies the result document against the hashes recorded in
        ``entry.json`` before delivering it; the (much larger) profile
        blob is verified by :meth:`CachedRun.profile_bytes` when it is
        actually read.  A corrupt entry is quarantined and counted.
        """
        path = self._object_dir(digest)
        entry_path = path / ENTRY_NAME
        if not entry_path.exists():
            self._miss()
            return None
        try:
            entry = json.loads(entry_path.read_text(encoding="utf-8"))
            result_bytes = (path / ARTIFACT_RESULT).read_bytes()
        except (OSError, ValueError):
            self._quarantine(digest, "unreadable entry")
            self._miss()
            return None
        recorded = entry.get("artifacts", {}).get(
            ARTIFACT_RESULT, {}).get("sha256")
        if recorded != _sha256_bytes(result_bytes):
            self._quarantine(digest, "result document corrupt")
            self._miss()
            return None
        result_doc = json.loads(result_bytes.decode("utf-8"))
        if touch:
            with self._locked():
                entries = self._read_index()
                meta = entries.get(digest)
                if meta is None:
                    meta = entries[digest] = self._index_meta(entry)
                meta["last_access"] = time.time()
                meta["hits"] = int(meta.get("hits", 0)) + 1
                self._write_index(entries)
        self.stats.hits += 1
        STATS.hits += 1
        return CachedRun(digest=digest, path=path, entry=entry,
                         result_doc=result_doc)

    def load_result(self, cfg, digest: str):
        """Convenience: fetch + rebuild the cached result, or ``None``."""
        cached = self.fetch(digest)
        return cached.to_result(cfg) if cached is not None else None

    def _miss(self) -> None:
        self.stats.misses += 1
        STATS.misses += 1

    def _quarantine(self, digest: str, reason: str) -> None:
        self.stats.integrity_failures += 1
        STATS.integrity_failures += 1
        self._remove(digest)

    # -- maintenance -------------------------------------------------------

    def _remove(self, digest: str) -> None:
        """Delete one entry via rename-then-delete (readers holding
        open handles keep their data; the address vanishes atomically).
        """
        path = self._object_dir(digest)
        if not path.exists():
            return
        trash = self.root / "trash"
        trash.mkdir(parents=True, exist_ok=True)
        target = trash / f"{digest}.{uuid.uuid4().hex}"
        try:
            os.rename(path, target)
        except OSError:  # pragma: no cover - concurrent removal
            return
        shutil.rmtree(target, ignore_errors=True)

    def _enforce_caps(self, entries: Dict[str, Dict[str, Any]],
                      protect: Optional[str] = None,
                      max_bytes: Optional[int] = None,
                      max_entries: Optional[int] = None) -> List[str]:
        """Evict LRU entries until within the caps; returns evictees.

        Called with the index lock held.  ``protect`` exempts the
        entry being written right now — a store too small for one
        bundle keeps the newest rather than thrashing it.
        """
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        max_entries = (max_entries if max_entries is not None
                       else self.max_entries)
        if max_bytes is None and max_entries is None:
            return []
        evicted: List[str] = []
        by_age = sorted(
            entries,
            key=lambda d: entries[d].get("last_access")
            or entries[d].get("created") or 0.0)

        def over() -> bool:
            if max_entries is not None and len(entries) > max_entries:
                return True
            if max_bytes is not None:
                total = sum(int(m.get("bytes", 0))
                            for m in entries.values())
                return total > max_bytes
            return False

        for digest in by_age:
            if not over():
                break
            if digest == protect:
                continue
            self._remove(digest)
            entries.pop(digest, None)
            evicted.append(digest)
            self.stats.evicted += 1
            STATS.evicted += 1
        return evicted

    def gc(self, max_bytes: Optional[int] = None,
           max_entries: Optional[int] = None) -> List[str]:
        """Evict down to the given caps (defaults to the store's own);
        also reconciles the index with the object directories."""
        with self._locked():
            entries = self._scan_objects()
            index = self._read_index()
            for digest, meta in index.items():
                if digest in entries:
                    entries[digest]["last_access"] = meta.get("last_access")
                    entries[digest]["hits"] = meta.get("hits", 0)
            evicted = self._enforce_caps(entries, max_bytes=max_bytes,
                                         max_entries=max_entries)
            self._write_index(entries)
        return evicted

    def verify(self) -> List[str]:
        """Integrity-check every artifact of every entry; returns a
        list of problems (empty = clean).  Read-only: nothing is
        quarantined, so operators see the full damage report first."""
        problems: List[str] = []
        objects = self.root / "objects"
        if not objects.is_dir():
            return problems
        for entry_path in sorted(objects.glob("*/*/" + ENTRY_NAME)):
            label = entry_path.parent.name[:12]
            try:
                entry = json.loads(entry_path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                problems.append(f"{label}: unreadable entry.json ({exc})")
                continue
            for name, meta in entry.get("artifacts", {}).items():
                blob = entry_path.parent / name
                if not blob.exists():
                    problems.append(f"{label}: missing artifact {name}")
                    continue
                if _sha256_file(blob) != meta.get("sha256"):
                    problems.append(f"{label}: sha256 mismatch on {name}")
        return problems

    # -- enumeration -------------------------------------------------------

    def entries(self) -> List[Dict[str, Any]]:
        """Index rows (summary metadata) for every stored run."""
        index = self._read_index()
        missing = [d for d in index if not self._object_dir(d).exists()]
        for digest in missing:
            index.pop(digest)
        rows = [dict(meta, digest=digest)
                for digest, meta in index.items()]
        rows.sort(key=lambda m: m.get("created") or 0.0)
        return rows

    def get(self, digest: str) -> Optional[CachedRun]:
        """Like :meth:`fetch` but without bumping the LRU clock; also
        accepts an unambiguous digest prefix."""
        if len(digest) < 64:
            matches = [row["digest"] for row in self.entries()
                       if row["digest"].startswith(digest)]
            if not matches:
                return None
            if len(matches) > 1:
                raise StoreError(
                    f"digest prefix {digest!r} is ambiguous "
                    f"({len(matches)} matches)")
            digest = matches[0]
        return self.fetch(digest, touch=False)

    def export(self, digest: str, out_dir: PathLike) -> Dict[str, Path]:
        """Copy one entry's artifacts into ``out_dir`` (verified)."""
        cached = self.get(digest)
        if cached is None:
            raise StoreError(f"no store entry matches {digest!r}")
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        from ..resilience.atomic import atomic_write_bytes

        written = {
            ARTIFACT_PROFILE: atomic_write_bytes(
                out / ARTIFACT_PROFILE, cached.profile_bytes()),
            ARTIFACT_RESULT: atomic_write_bytes(
                out / ARTIFACT_RESULT,
                (json.dumps(cached.result_doc, sort_keys=True, indent=2)
                 + "\n").encode("utf-8")),
            ENTRY_NAME: atomic_write_bytes(
                out / ENTRY_NAME,
                (self._object_dir(cached.digest) / ENTRY_NAME)
                .read_bytes()),
        }
        return written


def export_profile_bytes(profiler) -> bytes:
    """A profiler's ``save_profile`` export as bytes.

    Byte-identical to :func:`repro.analytics.save_profile`'s file
    output — the store reuses the exporter itself (via a temp file, so
    spilled-chunk concatenation stays verbatim) rather than
    reimplementing the wire format.
    """
    import tempfile

    from ..analytics import save_profile

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "profile.jsonl"
        save_profile(profiler, path)
        return path.read_bytes()
