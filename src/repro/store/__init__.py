"""Content-addressed run store: memoized simulation results.

Every run in this repro is a pure function of ``(config, seed, code
version)`` — same-seed traces are byte-identical across the serial,
sharded, ensemble and resumed execution paths (pinned by the
determinism suites).  This package exploits that: each run is keyed
by a canonical digest of its identity (:mod:`repro.store.keys`),
finished runs land in an on-disk content-addressed store
(:class:`~repro.store.store.RunStore`), and the harness's hot paths
(``run_experiment(cache=...)``, ``run_repetitions``, ``run_many``,
``run_ensemble``) consult the store before simulating — a repeat
query of a 90-second ``frontier_full`` point becomes a millisecond
lookup.  :mod:`repro.store.query` adds the analytics surface: filter
runs by config fields, compare metric profiles, and find the nearest
neighbours of a run in metric space.

The store is **off by default** everywhere; with no ``cache=`` every
execution path behaves (and traces) exactly as before.
"""

from .keys import (
    CACHE_KEY_EXCLUDED,
    cache_key,
    code_fingerprint,
    normalize_config,
    run_digest,
    workload_digest,
)
from .store import (
    STATS,
    CachedRun,
    RunStore,
    StoreStats,
)

__all__ = [
    "CACHE_KEY_EXCLUDED",
    "CachedRun",
    "RunStore",
    "STATS",
    "StoreStats",
    "cache_key",
    "code_fingerprint",
    "normalize_config",
    "run_digest",
    "workload_digest",
]
