"""The ``store`` CLI: inspect and maintain a run store from a shell.

Wired into ``python -m repro.experiments`` as a subcommand::

    python -m repro.experiments store ls /path/to/store
    python -m repro.experiments store get /path/to/store 3fa9c1 --out d/
    python -m repro.experiments store query /path/to/store \\
        launcher=flux 'n_nodes>=64' --near 3fa9c1 -k 3
    python -m repro.experiments store gc /path/to/store --max-bytes 1e9
    python -m repro.experiments store verify /path/to/store

``ls``/``query``/``get`` print human tables by default and machine
JSON with ``--json``; ``verify`` exits non-zero when any blob fails
its integrity check, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Sequence

from ..exceptions import StoreError
from . import query as q
from .store import RunStore

#: Filter operators accepted in ``key<op>value`` tokens, longest
#: first so ``>=`` is not split as ``>`` + ``=value``.
_TOKEN_OPS = ((">=", "ge"), ("<=", "le"), ("!=", "ne"),
              ("==", "eq"), (">", "gt"), ("<", "lt"), ("=", "eq"))


def _coerce(text: str) -> Any:
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    if text in ("true", "false"):
        return text == "true"
    return text


def parse_filters(tokens: Sequence[str]) -> Dict[str, Any]:
    """``["launcher=flux", "n_nodes>=64"]`` → a ``query(where=)`` dict."""
    where: Dict[str, Any] = {}
    for token in tokens:
        for symbol, name in _TOKEN_OPS:
            if symbol in token:
                field, value = token.split(symbol, 1)
                if not field:
                    break
                key = field if name == "eq" else f"{field}__{name}"
                where[key] = _coerce(value)
                break
        else:
            raise StoreError(
                f"bad filter {token!r}; expected key=value or "
                "key>=value / key<=value / key!=value / key<value / "
                "key>value")
    return where


def _age(created) -> str:
    if not created:
        return "?"
    seconds = max(time.time() - float(created), 0.0)
    for unit, span in (("d", 86400.0), ("h", 3600.0), ("m", 60.0)):
        if seconds >= span:
            return f"{seconds / span:.0f}{unit}"
    return f"{seconds:.0f}s"


def _row(doc: Dict[str, Any]) -> tuple:
    cfg = doc.get("config") or doc
    result = doc.get("result") or {}
    throughput = result.get("throughput") or {}
    return (
        doc["digest"][:12],
        cfg.get("exp_id"),
        cfg.get("launcher"),
        cfg.get("n_nodes"),
        cfg.get("n_partitions"),
        doc.get("seed"),
        f"{throughput.get('avg', 0.0):,.0f}" if throughput else "-",
        f"{result.get('makespan', 0.0):.1f}" if result else "-",
        _age(doc.get("created")),
    )


_HEADER = ["digest", "exp", "launcher", "nodes", "parts", "seed",
           "avg tasks/s", "makespan[s]", "age"]


def _print_table(rows: List[tuple], header: List[str]) -> None:
    from ..analytics.report import format_table

    print(format_table(header, rows))


def cmd_store(args: argparse.Namespace) -> int:
    store = RunStore(args.store_dir)
    command = args.store_command

    if command == "ls":
        rows = store.entries()
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
            return 0
        table = [(r["digest"][:12], r.get("exp_id"), r.get("launcher"),
                  r.get("n_nodes"), r.get("n_partitions"), r.get("seed"),
                  f"{(r.get('bytes') or 0) / 1024.0:,.0f}",
                  r.get("hits", 0), _age(r.get("created")))
                 for r in rows]
        _print_table(table, ["digest", "exp", "launcher", "nodes", "parts",
                             "seed", "KiB", "hits", "age"])
        print(f"{len(rows)} run(s) in {store.root}")
        return 0

    if command == "get":
        cached = store.get(args.digest)
        if cached is None:
            print(f"error: no store entry matches {args.digest!r}",
                  file=sys.stderr)
            return 1
        if args.out:
            written = store.export(cached.digest, args.out)
            for name in sorted(written):
                print(f"wrote {written[name]}")
            return 0
        doc = {"digest": cached.digest, "entry": cached.entry,
               "result": cached.result_doc}
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True, default=repr))
            return 0
        _print_table([_row({"digest": cached.digest,
                            "config": cached.entry.get("config", {}),
                            "seed": cached.entry.get("seed"),
                            "created": cached.entry.get("created"),
                            "result": cached.result_doc})], _HEADER)
        return 0

    if command == "query":
        where = parse_filters(args.filters)
        if args.compare:
            rows = q.compare(store, args.compare)
            if args.json:
                print(json.dumps(rows, indent=2, sort_keys=True))
                return 0
            header = ["metric"] + [d[:12] for d in args.compare]
            table = [[r["metric"]] + [f"{v:,.3f}" for v in r["values"]]
                     for r in rows]
            _print_table(table, header)
            return 0
        if args.near:
            pairs = q.nearest(store, args.near, k=args.k, where=where or None)
            if args.json:
                print(json.dumps(
                    [dict(doc, distance=dist) for doc, dist in pairs],
                    indent=2, sort_keys=True))
                return 0
            _print_table([_row(doc) + (f"{dist:.3f}",)
                          for doc, dist in pairs],
                         _HEADER + ["distance"])
            return 0
        docs = q.query(store, where=where or None, limit=args.limit)
        if args.json:
            print(json.dumps(docs, indent=2, sort_keys=True))
            return 0
        _print_table([_row(doc) for doc in docs], _HEADER)
        print(f"{len(docs)} matching run(s)")
        return 0

    if command == "gc":
        max_bytes = int(args.max_bytes) if args.max_bytes else None
        evicted = store.gc(max_bytes=max_bytes,
                           max_entries=args.max_entries)
        for digest in evicted:
            print(f"evicted {digest[:12]}")
        print(f"{len(evicted)} entry(ies) evicted, "
              f"{len(store.entries())} kept")
        return 0

    if command == "verify":
        problems = store.verify()
        for problem in problems:
            print(f"corrupt: {problem}", file=sys.stderr)
        n = len(store.entries())
        if problems:
            print(f"store verify: {len(problems)} problem(s) across "
                  f"{n} entry(ies)", file=sys.stderr)
            return 1
        print(f"store verify: ok ({n} entry(ies))")
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


def add_store_parser(subparsers) -> None:
    """Attach the ``store`` subcommand tree to the experiments CLI."""
    p_store = subparsers.add_parser(
        "store", help="inspect and maintain a content-addressed run "
                      "store (see run --cache)")
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    def common(p):
        p.add_argument("store_dir", help="store root directory")

    p_ls = store_sub.add_parser("ls", help="list stored runs")
    common(p_ls)
    p_ls.add_argument("--json", action="store_true",
                      help="machine-readable index rows")

    p_get = store_sub.add_parser(
        "get", help="show one stored run (or export its artifacts)")
    common(p_get)
    p_get.add_argument("digest", help="run digest (unambiguous prefix ok)")
    p_get.add_argument("--out", default="",
                       help="export profile/result/entry into this "
                            "directory")
    p_get.add_argument("--json", action="store_true",
                       help="print the full entry + result documents")

    p_query = store_sub.add_parser(
        "query", help="filter runs by config fields, compare metric "
                      "profiles, or rank nearest neighbours")
    common(p_query)
    p_query.add_argument("filters", nargs="*",
                         help="config/metric filters, e.g. launcher=flux "
                              "'n_nodes>=64' 'throughput_avg>1000'")
    p_query.add_argument("--near", default="", metavar="DIGEST",
                         help="rank stored runs by metric-space distance "
                              "to this run")
    p_query.add_argument("-k", type=int, default=5,
                         help="neighbours to return with --near "
                              "(default 5)")
    p_query.add_argument("--compare", nargs="+", default=None,
                         metavar="DIGEST",
                         help="side-by-side metric table for two or "
                              "more runs")
    p_query.add_argument("--limit", type=int, default=None,
                         help="cap the number of matches returned")
    p_query.add_argument("--json", action="store_true",
                         help="machine-readable documents")

    p_gc = store_sub.add_parser(
        "gc", help="evict least-recently-used entries down to a cap")
    common(p_gc)
    p_gc.add_argument("--max-bytes", type=float, default=None,
                      help="total artifact size cap (bytes; "
                           "scientific notation ok)")
    p_gc.add_argument("--max-entries", type=int, default=None,
                      help="entry count cap")

    p_verify = store_sub.add_parser(
        "verify", help="integrity-check every stored artifact")
    common(p_verify)
