"""Query and analytics over a run store.

The "find runs like this one" surface (the Chroma embedding-store
idiom, applied to metric vectors instead of embeddings):

* :func:`query` — filter stored runs by config fields, with
  equality, comparison-operator and callable predicates;
* :func:`metric_vector` / :func:`nearest` — embed every run as a
  fixed vector of its headline metrics and rank neighbours by
  z-score-normalized euclidean distance, so "similar" means similar
  *behavior* (throughput, utilization, makespan), not similar knobs;
* :func:`compare` — side-by-side metric table across named runs,
  with relative deltas against the first.

Everything here reads index rows and result documents only — no
profile blobs are touched, so queries stay cheap even when the store
holds multi-GB traces.
"""

from __future__ import annotations

import math
import operator
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import StoreError
from .store import CachedRun, RunStore

#: Metric fields embedded into the nearest-neighbour vector, in order.
METRIC_FIELDS = (
    "throughput_avg",
    "throughput_peak",
    "utilization_cores",
    "makespan",
    "n_tasks",
)

#: Comparison-operator suffixes accepted by the ``where`` filter
#: (``{"n_nodes__ge": 64}``) and by the CLI's ``key>=value`` forms.
_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


def _entry_value(entry: Dict[str, Any], field: str) -> Any:
    """A field from an entry document: config first, then the entry
    itself (seed, created), then the result metrics."""
    config = entry.get("config") or {}
    if field in config:
        return config[field]
    if field in entry:
        return entry[field]
    return (entry.get("result") or {}).get(field)


def _matches(entry: Dict[str, Any], where: Dict[str, Any]) -> bool:
    for key, want in where.items():
        field, _, op_name = key.partition("__")
        value = _entry_value(entry, field)
        if callable(want):
            if not want(value):
                return False
            continue
        op = _OPS.get(op_name or "eq")
        if op is None:
            raise StoreError(f"unknown query operator {op_name!r} "
                             f"(pick from {sorted(_OPS)})")
        try:
            if value is None or not op(value, want):
                return False
        except TypeError:
            return False
    return True


def _load(store: RunStore, digest: str) -> Dict[str, Any]:
    cached = store.get(digest)
    if cached is None:
        raise StoreError(f"no store entry matches {digest!r}")
    return _doc(cached)


def _doc(cached: CachedRun) -> Dict[str, Any]:
    return {
        "digest": cached.digest,
        "config": cached.entry.get("config", {}),
        "seed": cached.entry.get("seed"),
        "created": cached.entry.get("created"),
        "result": cached.result_doc,
    }


def query(store: RunStore, where: Optional[Dict[str, Any]] = None,
          limit: Optional[int] = None) -> List[Dict[str, Any]]:
    """Stored runs whose config/metrics match ``where``.

    ``where`` maps field names (optionally suffixed ``__lt``,
    ``__ge``, ...) to values or predicates; fields resolve against the
    config document first, then entry metadata, then result metrics
    (``{"launcher": "flux", "n_nodes__ge": 64,
    "throughput_avg__gt": 1000.0}``).  Returns full documents
    (config + metrics), newest first.
    """
    rows = store.entries()
    rows.sort(key=lambda r: r.get("created") or 0.0, reverse=True)
    out: List[Dict[str, Any]] = []
    for row in rows:
        cached = store.get(row["digest"])
        if cached is None:
            continue
        doc = _doc(cached)
        if where and not _matches(doc, where):
            continue
        out.append(doc)
        if limit is not None and len(out) >= limit:
            break
    return out


def metric_vector(doc: Dict[str, Any]) -> List[float]:
    """The run's embedding: its headline metrics, in
    :data:`METRIC_FIELDS` order.  ``throughput`` nests avg/peak in
    the result document; both forms are accepted."""
    result = doc.get("result") or doc
    throughput = result.get("throughput") or {}
    values = {
        "throughput_avg": result.get("throughput_avg",
                                     throughput.get("avg")),
        "throughput_peak": result.get("throughput_peak",
                                      throughput.get("peak")),
        "utilization_cores": result.get("utilization_cores"),
        "makespan": result.get("makespan"),
        "n_tasks": result.get("n_tasks"),
    }
    return [float(values[f] or 0.0) for f in METRIC_FIELDS]


def nearest(store: RunStore, digest: str, k: int = 5,
            where: Optional[Dict[str, Any]] = None
            ) -> List[Tuple[Dict[str, Any], float]]:
    """The ``k`` stored runs most similar to ``digest`` in metric
    space (the query run itself excluded).

    Distances are euclidean over per-dimension z-scores computed
    across the candidate population, so a metric's scale (makespan in
    hundreds of seconds vs utilization in [0, 1]) does not dominate.
    ``where`` pre-filters the candidates.  Returns ``(document,
    distance)`` pairs, nearest first.
    """
    target = _load(store, digest)
    candidates = [doc for doc in query(store, where=where)
                  if doc["digest"] != target["digest"]]
    if not candidates:
        return []
    population = [metric_vector(doc) for doc in candidates]
    population.append(metric_vector(target))
    dims = len(METRIC_FIELDS)
    n = len(population)
    means = [sum(vec[d] for vec in population) / n for d in range(dims)]
    stds = []
    for d in range(dims):
        var = sum((vec[d] - means[d]) ** 2 for vec in population) / n
        stds.append(math.sqrt(var) or 1.0)

    def z(vec: Sequence[float]) -> List[float]:
        return [(vec[d] - means[d]) / stds[d] for d in range(dims)]

    t = z(population[-1])
    scored = []
    for doc, vec in zip(candidates, population):
        zv = z(vec)
        dist = math.sqrt(sum((zv[d] - t[d]) ** 2 for d in range(dims)))
        scored.append((doc, dist))
    scored.sort(key=lambda pair: (pair[1], pair[0]["digest"]))
    return scored[:max(k, 0)]


def compare(store: RunStore, digests: Sequence[str]
            ) -> List[Dict[str, Any]]:
    """Metric profiles of several runs side by side.

    Returns one row per metric field: the value in every named run
    plus ``delta`` — each run's relative difference from the first
    (the comparison baseline).
    """
    if len(digests) < 2:
        raise StoreError("compare needs at least two digests")
    docs = [_load(store, digest) for digest in digests]
    vectors = [metric_vector(doc) for doc in docs]
    rows = []
    for d, field in enumerate(METRIC_FIELDS):
        base = vectors[0][d]
        rows.append({
            "metric": field,
            "values": [vec[d] for vec in vectors],
            "delta": [
                (vec[d] - base) / base if base else
                (0.0 if vec[d] == base else math.inf)
                for vec in vectors],
        })
    return rows
