"""Hierarchical sim-time spans over the runtime's task lifecycle.

A :class:`Span` is a named sim-time interval with a parent, children
and attributes.  Spans come from two sources:

* **online** — code under a running simulation opens spans through a
  :class:`Tracer` (context manager or explicit ``begin``/``end``),
  e.g. the harness wrapping a whole experiment;
* **offline** — :func:`spans_from_events` reconstructs the full
  session → pilot → backend → task → state-phase hierarchy from the
  flat :class:`~repro.analytics.events.TraceEvent` stream the
  :class:`~repro.analytics.profiler.Profiler` already records.

The per-task phase taxonomy maps the four intervals the trace makes
observable (cf. RADICAL-Analytics' state-transition durations):

========== ============================== ==========================
phase      boundary events                what it measures
========== ============================== ==========================
schedule   task_created -> task_scheduled  TMGR accept + agent
                                           dispatch + staging-in
launch     task_scheduled -> exec_start    backend queueing + launch
exec       exec_start -> exec_stop         payload runtime
collect    exec_stop -> final state        completion collection +
                                           staging-out
========== ============================== ==========================

Phase boundaries are clamped monotonically, so the phase durations of
any task sum *exactly* to its lifetime (first event -> final event) —
the invariant the observability tests pin.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING, Any, Dict, Iterable, Iterator, List, Optional, Tuple,
)

from ..analytics import events as tev

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analytics.events import TraceEvent
    from ..sim.kernel import Environment

#: Span categories, used as Perfetto track/categorisation keys.
CAT_SESSION = "session"
CAT_PILOT = "pilot"
CAT_BACKEND = "backend"
CAT_TASK = "task"
CAT_PHASE = "phase"

#: Task phase names, in lifecycle order.
PHASES: Tuple[str, ...] = ("schedule", "launch", "exec", "collect")

_FINAL_EVENTS = {tev.TASK_DONE, tev.TASK_FAILED, tev.TASK_CANCELED}


class Span:
    """One named sim-time interval in the span tree."""

    __slots__ = ("name", "cat", "start", "end", "parent", "children",
                 "attrs")

    def __init__(self, name: str, cat: str, start: float,
                 end: Optional[float] = None,
                 parent: Optional["Span"] = None,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.cat = cat
        self.start = start
        self.end = end
        self.parent = parent
        self.children: List[Span] = []
        self.attrs: Dict[str, Any] = attrs or {}
        if parent is not None:
            parent.children.append(self)

    @property
    def duration(self) -> float:
        """Length [s]; open spans report 0 until closed."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def closed(self) -> bool:
        return self.end is not None

    def child(self, name: str, cat: str, start: float,
              end: Optional[float] = None, **attrs: Any) -> "Span":
        return Span(name, cat, start, end, parent=self, attrs=attrs)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for c in self.children:
            yield from c.walk()

    def find(self, cat: str) -> List["Span"]:
        """All descendant spans (incl. self) of one category."""
        return [s for s in self.walk() if s.cat == cat]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested representation (bundle ``spans.json``)."""
        return {
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        end = f"{self.end:.4f}" if self.end is not None else "..."
        return f"<Span {self.cat}:{self.name} [{self.start:.4f}, {end}]>"


class Tracer:
    """Online span construction against a live simulation clock.

    ``span`` is the context-manager form for sequential code; use
    ``begin``/``end`` from interleaved simulation processes, passing
    the parent explicitly.  Parenting for context-managed spans is the
    span active at *enter* time; exits remove by identity, so
    non-LIFO closing (concurrent processes) cannot corrupt the stack.

    Disabled tracers hand out a shared dummy span and record nothing.
    """

    def __init__(self, env: "Environment", enabled: bool = True) -> None:
        self._env = env
        self.enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._noop = Span("noop", "noop", 0.0, 0.0)

    def begin(self, name: str, cat: str = "span",
              parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Open a span now; close it with :meth:`end`."""
        if not self.enabled:
            return self._noop
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = Span(name, cat, self._env.now, parent=parent, attrs=attrs)
        if parent is None:
            self.roots.append(span)
        return span

    def end(self, span: Span, at: Optional[float] = None) -> None:
        if span is self._noop or not self.enabled:
            return
        span.end = self._env.now if at is None else at

    def span(self, name: str, cat: str = "span", **attrs: Any):
        """``with tracer.span("phase"): ...`` — sim-time scoped."""
        return _SpanContext(self, name, cat, attrs)

    def all_spans(self) -> List[Span]:
        return [s for root in self.roots for s in root.walk()]


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_cat", "_attrs", "_span")

    def __init__(self, tracer: Tracer, name: str, cat: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        self._span = tracer.begin(self._name, self._cat, **self._attrs)
        if tracer.enabled:
            tracer._stack.append(self._span)
        return self._span

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        span = self._span
        if span is None or not tracer.enabled:
            return
        tracer.end(span)
        # Remove by identity; tolerate out-of-order exits.
        for i in range(len(tracer._stack) - 1, -1, -1):
            if tracer._stack[i] is span:
                del tracer._stack[i]
                break


# ---------------------------------------------------------------------------
# Offline reconstruction from trace events
# ---------------------------------------------------------------------------


def _task_boundaries(events: List["TraceEvent"]
                     ) -> Optional[Tuple[List[float], str, Optional[str]]]:
    """(phase boundaries b0..b4, final event name, backend) for a task.

    Boundaries are clamped to be monotonic: a missing intermediate
    event collapses its phase to zero length instead of breaking the
    sum-to-lifetime invariant.  Retried tasks use the first schedule /
    first exec-start / last exec-stop, so retry round-trips show up in
    the launch and exec phases.
    """
    created = scheduled = exec_start = exec_stop = None
    final_t = None
    final_name = None
    backend = None
    for ev in events:
        name = ev.name
        if name == tev.TASK_CREATED:
            if created is None:
                created = ev.time
        elif name == tev.TASK_SCHEDULED:
            if scheduled is None:
                scheduled = ev.time
        elif name == tev.TASK_EXEC_START:
            if exec_start is None:
                exec_start = ev.time
        elif name == tev.TASK_EXEC_STOP:
            exec_stop = ev.time
        if name in _FINAL_EVENTS:
            final_t = ev.time
            final_name = name
        b = ev.meta.get("backend")
        if b:
            backend = b
    if created is None:
        created = events[0].time
    if final_t is None:
        # Task never finalized (e.g. still running when the profile
        # was cut): close the span at its last event.
        final_t = events[-1].time
        final_name = "open"
    b0 = created
    b1 = scheduled if scheduled is not None else b0
    b1 = max(b1, b0)
    b2 = exec_start if exec_start is not None else b1
    b2 = max(b2, b1)
    b3 = exec_stop if exec_stop is not None else b2
    b3 = min(max(b3, b2), final_t) if final_t >= b2 else max(b3, b2)
    b4 = max(final_t, b3)
    return [b0, b1, b2, b3, b4], final_name, backend


def spans_from_events(events: Iterable["TraceEvent"],
                      session_uid: str = "session") -> Span:
    """Reconstruct the span hierarchy from a flat trace-event stream.

    Returns the session root span.  The hierarchy is

        session -> pilot(s) -> backend groups -> tasks -> phases

    with backend *instances* (each Flux partition, each Dragon
    runtime, the srun facility) as ``backend`` spans carrying their
    bootstrap sub-span, and each task attached to the group of the
    backend that executed it (tasks that never reached a backend hang
    off the pilot directly under the ``"unrouted"`` group).
    """
    events = list(events)
    if not events:
        return Span(session_uid, CAT_SESSION, 0.0, 0.0)

    by_entity: Dict[str, List] = {}
    for ev in events:
        by_entity.setdefault(ev.entity, []).append(ev)

    t_lo = min(ev.time for ev in events)
    t_hi = max(ev.time for ev in events)
    root = Span(session_uid, CAT_SESSION, t_lo, t_hi)

    # -- pilots ----------------------------------------------------------
    pilots: List[Span] = []
    for entity, evs in by_entity.items():
        names = {ev.name for ev in evs}
        if tev.PILOT_ACTIVE not in names and tev.PILOT_DONE not in names:
            continue
        start = evs[0].time
        done = [ev for ev in evs if ev.name == tev.PILOT_DONE]
        end = done[-1].time if done else t_hi
        active = [ev for ev in evs if ev.name == tev.PILOT_ACTIVE]
        span = root.child(entity, CAT_PILOT, start, end)
        if active:
            span.child("startup", CAT_PHASE, start, active[0].time)
            span.attrs["nodes"] = active[0].meta.get("nodes")
        pilots.append(span)
    anchor = pilots[0] if len(pilots) == 1 else root

    # -- backend instances ----------------------------------------------
    backend_names = {tev.BACKEND_START, tev.BACKEND_READY,
                     tev.BACKEND_STOP, tev.BACKEND_FAILED}
    groups: Dict[str, Span] = {}

    def group(kind: str) -> Span:
        span = groups.get(kind)
        if span is None:
            span = anchor.child(kind, "backend_group", t_lo, t_hi)
            groups[kind] = span
        return span

    for entity, evs in by_entity.items():
        bevs = [ev for ev in evs if ev.name in backend_names]
        if not bevs:
            continue
        kind = bevs[0].meta.get("kind") or entity.rsplit(".", 1)[-1]
        start = bevs[0].time
        stops = [ev for ev in bevs
                 if ev.name in (tev.BACKEND_STOP, tev.BACKEND_FAILED)]
        end = stops[-1].time if stops else t_hi
        span = group(kind).child(entity, CAT_BACKEND, start, end,
                                 kind=kind)
        ready = [ev for ev in bevs if ev.name == tev.BACKEND_READY]
        if ready:
            span.child("bootstrap", CAT_PHASE, start, ready[0].time)
            span.attrs.update({k: v for k, v in ready[0].meta.items()
                               if k != "kind"})
        if any(ev.name == tev.BACKEND_FAILED for ev in bevs):
            span.attrs["failed"] = True

    # -- tasks + phases ---------------------------------------------------
    task_names = {tev.TASK_CREATED, tev.TASK_SCHEDULED, tev.TASK_EXEC_START,
                  tev.TASK_EXEC_STOP} | _FINAL_EVENTS
    for entity, evs in by_entity.items():
        tevs = [ev for ev in evs if ev.name in task_names]
        if not tevs:
            continue
        bounds, final_name, backend = _task_boundaries(tevs)
        b0, b1, b2, b3, b4 = bounds
        parent = group(backend) if backend else group("unrouted")
        span = parent.child(entity, CAT_TASK, b0, b4,
                            final=final_name, backend=backend)
        span.child("schedule", CAT_PHASE, b0, b1)
        span.child("launch", CAT_PHASE, b1, b2)
        if b3 > b2 or final_name == tev.TASK_DONE:
            span.child("exec", CAT_PHASE, b2, b3)
        span.child("collect", CAT_PHASE, b3, b4)

    return root


def spans_from_profiler(profiler, session_uid: str = "session") -> Span:
    """Convenience wrapper: reconstruct spans from a live profiler."""
    return spans_from_events(iter(profiler), session_uid=session_uid)


def span_from_dict(doc: Dict[str, Any],
                   parent: Optional[Span] = None) -> Span:
    """Rebuild a span (and its subtree) from its ``to_dict`` form.

    The inverse of :meth:`Span.to_dict`, used where span trees cross a
    process boundary — shard workers serialize their locally-recorded
    spans into window results and the coordinator grafts them back
    into the session tracer — and by offline consumers loading a
    bundle's ``spans.json``.
    """
    span = Span(doc["name"], doc.get("cat", "span"), doc["start"],
                doc.get("end"), parent=parent,
                attrs=dict(doc.get("attrs") or {}))
    for child in doc.get("children", ()):
        span_from_dict(child, parent=span)
    return span


def phase_rollup(root: Span) -> Dict[str, Dict[str, float]]:
    """Aggregate task-phase durations across the whole span tree.

    Returns ``{phase: {count, total, mean, max}}`` for the four task
    phases — the derived durations (schedule wait, launch latency,
    execution time, collection) the paper's characterization uses.
    """
    acc: Dict[str, List[float]] = {p: [] for p in PHASES}
    for task in root.find(CAT_TASK):
        for phase in task.children:
            if phase.cat == CAT_PHASE and phase.name in acc:
                acc[phase.name].append(phase.duration)
    out: Dict[str, Dict[str, float]] = {}
    for phase, durations in acc.items():
        n = len(durations)
        total = sum(durations)
        out[phase] = {
            "count": float(n),
            "total": total,
            "mean": total / n if n else 0.0,
            "max": max(durations) if durations else 0.0,
        }
    return out
