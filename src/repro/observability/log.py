"""Structured, sim-clock-stamped logging.

Python's :mod:`logging` stamps records with *wall* time, which is
meaningless inside a discrete-event simulation; this logger stamps
with the simulation clock and scopes every record to the component
that emitted it.  Logging is **off by default** and the disabled path
is one attribute check per call site, so instrumented components can
log unconditionally without a performance tax on normal runs.

Records are structured (``time``, ``level``, ``component``, ``msg``,
free-form fields) and kept in memory; an optional stream sink mirrors
them as formatted text for interactive debugging::

    session.obs.enable_logging(stream=sys.stderr, level="debug")
    log = session.obs.logger("agent.0000")
    log.info("backend ready", backend="flux", instances=4)
    # [     12.8310s] INFO  agent.0000: backend ready backend=flux ...
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING, Any, Dict, List, NamedTuple, Optional, TextIO,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.kernel import Environment

#: Numeric severities (subset of stdlib logging levels).
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30,
                          "error": 40}


class LogRecord(NamedTuple):
    """One structured log record, stamped in simulated seconds."""

    time: float
    level: str
    component: str
    msg: str
    fields: Dict[str, Any]

    def format(self) -> str:
        tail = "".join(f" {k}={v}" for k, v in self.fields.items())
        return (f"[{self.time:12.4f}s] {self.level.upper():<7} "
                f"{self.component}: {self.msg}{tail}")


class LogSink:
    """Shared per-session record store + optional stream mirror."""

    def __init__(self, env: "Environment") -> None:
        self._env = env
        self.enabled = False
        self.threshold = LEVELS["info"]
        self.records: List[LogRecord] = []
        self._stream: Optional[TextIO] = None

    def enable(self, level: str = "info",
               stream: Optional[TextIO] = None) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r} (choose from {list(LEVELS)})")
        self.enabled = True
        self.threshold = LEVELS[level]
        self._stream = stream

    def disable(self) -> None:
        self.enabled = False

    def emit(self, level: str, component: str, msg: str,
             fields: Dict[str, Any]) -> None:
        if LEVELS[level] < self.threshold:
            return
        record = LogRecord(self._env.now, level, component, msg, fields)
        self.records.append(record)
        if self._stream is not None:
            self._stream.write(record.format() + "\n")

    def records_for(self, component: str) -> List[LogRecord]:
        return [r for r in self.records if r.component == component]


class SimLogger:
    """A component-scoped handle onto the session's :class:`LogSink`.

    Cheap to create (components make one at init) and near-free when
    logging is disabled: each call is a single flag check.
    """

    __slots__ = ("_sink", "component")

    def __init__(self, sink: LogSink, component: str) -> None:
        self._sink = sink
        self.component = component

    def debug(self, msg: str, **fields: Any) -> None:
        if self._sink.enabled:
            self._sink.emit("debug", self.component, msg, fields)

    def info(self, msg: str, **fields: Any) -> None:
        if self._sink.enabled:
            self._sink.emit("info", self.component, msg, fields)

    def warning(self, msg: str, **fields: Any) -> None:
        if self._sink.enabled:
            self._sink.emit("warning", self.component, msg, fields)

    def error(self, msg: str, **fields: Any) -> None:
        if self._sink.enabled:
            self._sink.emit("error", self.component, msg, fields)
