"""Run manifests and observability bundles.

A *bundle* is the machine-readable record of what a run **was** —
enough to re-run it and to analyse it offline without the process
that produced it:

.. code-block:: text

    <bundle>/
      manifest.json   config, seed, platform, package versions, results
      metrics.json    metrics-registry snapshot
      spans.json      nested span tree (sim-time)
      trace.json      Perfetto / chrome://tracing export of the spans
      profile.jsonl   raw trace events (loadable via analytics.load_events)
      telemetry.jsonl live progress records (when the run streamed any)

``manifest.json`` is the index: every other file is listed under
``"files"`` so consumers can discover what a (possibly partial)
bundle contains.
"""

from __future__ import annotations

import dataclasses
import json
import platform as _platform
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

#: Bundle format version, bumped on layout changes.
BUNDLE_VERSION = 1

MANIFEST_NAME = "manifest.json"

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.session import Session
    from ..experiments.configs import ExperimentConfig
    from .spans import Span

PathLike = Union[str, Path]


def _git_revision(start: Optional[Path] = None) -> Optional[str]:
    """Best-effort code revision from ``.git`` (no subprocess).

    Walks up from this file to the repository root and resolves HEAD
    one level of indirection deep; returns ``None`` outside a
    checkout (e.g. an installed wheel).
    """
    here = start if start is not None else Path(__file__).resolve()
    for parent in [here, *here.parents]:
        git = parent / ".git"
        if not git.is_dir():
            continue
        try:
            head = (git / "HEAD").read_text(encoding="utf-8").strip()
            if head.startswith("ref: "):
                ref = git / head[5:]
                if ref.exists():
                    return ref.read_text(encoding="utf-8").strip()
                packed = git / "packed-refs"
                if packed.exists():
                    for line in packed.read_text(
                            encoding="utf-8").splitlines():
                        if line.endswith(head[5:]):
                            return line.split(" ", 1)[0]
                return None
            return head
        except OSError:  # pragma: no cover - unreadable .git
            return None
    return None


def package_versions() -> Dict[str, str]:
    """Versions of everything that can change the numbers."""
    from .. import __version__

    versions = {
        "repro": __version__,
        "python": _platform.python_version(),
    }
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass
    rev = _git_revision()
    if rev:
        versions["git"] = rev
    return versions


def build_manifest(config: Optional["ExperimentConfig"] = None,
                   session: Optional["Session"] = None,
                   result: Optional[Any] = None,
                   extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the manifest dict for one run.

    Everything is optional so partial bundles (e.g. a trace exported
    from a bare profile file) still get a valid manifest.
    """
    manifest: Dict[str, Any] = {
        "bundle_version": BUNDLE_VERSION,
        "kind": "repro-run",
        "versions": package_versions(),
        "host": {
            "platform": _platform.platform(),
            "machine": _platform.machine(),
            "python_executable": sys.executable,
        },
    }
    if config is not None:
        cfg = dataclasses.asdict(config)
        manifest["config"] = cfg
        manifest["seed"] = cfg.get("seed")
    if session is not None:
        cluster = session.cluster
        manifest["cluster"] = {
            "n_nodes": cluster.n_nodes,
            "cores_per_node": cluster.cores_per_node,
            "gpus_per_node": cluster.gpus_per_node,
        }
        manifest["session_uid"] = session.uid
        manifest["sim_end_time"] = session.now
        manifest["trace_events"] = len(session.profiler)
    if result is not None:
        manifest["result"] = {
            "n_tasks": result.n_tasks,
            "n_done": result.n_done,
            "n_failed": result.n_failed,
            "throughput_avg": result.throughput.avg,
            "throughput_peak": result.throughput.peak,
            "utilization_cores": result.utilization_cores,
            "utilization_gpus": result.utilization_gpus,
            "makespan": result.makespan,
            "wall_seconds": result.wall_seconds,
        }
        # Host-side recovery ledger (supervised shard runs that healed
        # a crashed/hung worker) — absent on incident-free runs, so
        # manifests only change when the supervisor actually acted.
        recovery = getattr(result, "host_recovery", None)
        if recovery:
            manifest["host_recovery"] = recovery
        # Run-store provenance — recorded only when a store was in
        # play, so store-off manifests stay byte-identical to runs
        # predating the cache entirely.
        provenance = getattr(result, "provenance", "fresh")
        cache = getattr(result, "cache", None)
        if cache is not None or provenance != "fresh":
            manifest["result"]["provenance"] = provenance
            if cache is not None:
                manifest["result"]["cache"] = dict(cache)
    if extra:
        manifest.update(extra)
    return manifest


def write_bundle(directory: PathLike,
                 manifest: Dict[str, Any],
                 registry=None,
                 spans: Optional["Span"] = None,
                 profiler=None,
                 telemetry=None,
                 extra_files: Optional[Dict[str, PathLike]] = None
                 ) -> Dict[str, Path]:
    """Write a bundle; returns ``{artifact name: path}``.

    Only the artifacts whose source was passed are written — the
    manifest always; metrics/spans/trace/profile/telemetry when
    available — and the manifest's ``files`` section lists exactly
    what landed.  ``telemetry`` is a sequence of live progress records
    (see :mod:`repro.observability.telemetry`).  ``extra_files`` names
    artifacts already sitting inside the bundle directory (e.g. an
    ensemble's per-seed profiles) so the manifest indexes them too.
    """
    from ..analytics.export import save_profile
    from ..resilience.atomic import atomic_write_text
    from .export import write_chrome_trace, write_metrics, write_telemetry

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}

    if registry is not None:
        written["metrics"] = write_metrics(
            registry, directory / "metrics.json")
    if spans is not None:
        spans_path = directory / "spans.json"
        atomic_write_text(
            spans_path,
            json.dumps(spans.to_dict(), sort_keys=True) + "\n")
        written["spans"] = spans_path
        written["trace"] = write_chrome_trace(
            spans, directory / "trace.json")
    if profiler is not None:
        profile_path = directory / "profile.jsonl"
        save_profile(profiler, profile_path)
        written["profile"] = profile_path
    if telemetry:
        written["telemetry"] = write_telemetry(
            telemetry, directory / "telemetry.jsonl")
    for name, path in (extra_files or {}).items():
        written[name] = Path(path)

    manifest = dict(manifest)
    manifest["files"] = {name: path.name for name, path in written.items()}
    manifest_path = directory / MANIFEST_NAME
    atomic_write_text(
        manifest_path,
        json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    written["manifest"] = manifest_path
    return written


def read_manifest(directory: PathLike) -> Dict[str, Any]:
    """Load and sanity-check a bundle's manifest."""
    path = Path(directory) / MANIFEST_NAME
    manifest = json.loads(path.read_text(encoding="utf-8"))
    if manifest.get("kind") != "repro-run":
        raise ValueError(f"{path}: not a repro run manifest")
    return manifest
