"""Exporters: Perfetto/Chrome ``trace_event`` JSON and metric snapshots.

``chrome_trace`` turns a span tree into the Trace Event Format that
both ``chrome://tracing`` and https://ui.perfetto.dev open directly:
complete (``"ph": "X"``) events with microsecond timestamps, one
process per backend group and one thread per task, plus metadata
records naming them.  ``validate_chrome_trace`` is the schema check
the tests (and the CLI's ``trace inspect``) run against any produced
document.

Metrics export in two shapes: ``prometheus_text`` (the plain-text
exposition format, scrape-compatible) and ``metrics_json`` (the
bundle's ``metrics.json``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..resilience.atomic import atomic_write_text, atomic_writer
from .metrics import MetricsRegistry
from .spans import CAT_PHASE, CAT_TASK, Span

PathLike = Union[str, Path]

#: Trace Event Format phase codes we emit.
_PH_COMPLETE = "X"
_PH_METADATA = "M"


def chrome_trace(root: Span, time_unit: float = 1e6) -> Dict[str, Any]:
    """Convert a span tree to a Chrome/Perfetto trace document.

    Sim-time seconds are scaled by ``time_unit`` into the format's
    microsecond timestamps.  Track layout: the session, pilots and
    backend instances live on process 0 ("runtime"); each backend
    group becomes its own process with one thread (track) per task, so
    Perfetto renders per-backend task Gantt lanes with the four
    lifecycle phases nested inside each task slice.
    """
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[int, Dict[str, int]] = {}

    def pid_for(group: str) -> int:
        pid = pids.get(group)
        if pid is None:
            pid = len(pids)
            pids[group] = pid
            tids[pid] = {}
            events.append({
                "name": "process_name", "ph": _PH_METADATA, "pid": pid,
                "tid": 0, "args": {"name": group},
            })
        return pid

    def tid_for(pid: int, track: str) -> int:
        lanes = tids[pid]
        tid = lanes.get(track)
        if tid is None:
            tid = len(lanes)
            lanes[track] = tid
        return tid

    def emit(span: Span, pid: int, tid: int) -> None:
        end = span.end if span.end is not None else span.start
        args = {k: v for k, v in span.attrs.items() if v is not None}
        events.append({
            "name": span.name,
            "cat": span.cat,
            "ph": _PH_COMPLETE,
            "ts": span.start * time_unit,
            "dur": (end - span.start) * time_unit,
            "pid": pid,
            "tid": tid,
            "args": args,
        })

    runtime_pid = pid_for("runtime")

    def walk(span: Span, group: Optional[str]) -> None:
        if span.cat == "backend_group":
            group = span.name
            pid_for(group)
        elif span.cat == CAT_TASK and group is not None:
            pid = pids[group]
            tid = tid_for(pid, span.name)
            emit(span, pid, tid)
            for phase in span.children:
                if phase.cat == CAT_PHASE:
                    emit(phase, pid, tid)
            return  # phases handled; tasks have no deeper structure
        else:
            emit(span, runtime_pid, tid_for(runtime_pid, span.cat))
        for child in span.children:
            walk(child, group)

    walk(root, None)
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.observability"}}


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Check a document against the trace_event schema we rely on.

    Returns a list of human-readable violations (empty = valid): the
    shape Perfetto's JSON importer requires — ``traceEvents`` array,
    per-event ``name``/``ph``/``ts``/``pid``/``tid`` with the right
    types, a ``dur`` on complete events, and non-negative times.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "M", "C", "i"):
            problems.append(f"{where}: unsupported ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                problems.append(f"{where}: {field} not an int")
        if ph == _PH_METADATA:
            if not isinstance(ev.get("args"), dict):
                problems.append(f"{where}: metadata event without args")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == _PH_COMPLETE:
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: args not an object")
    return problems


def write_chrome_trace(root: Span, path: PathLike) -> Path:
    """Export a span tree as a Perfetto-openable JSON file."""
    path = Path(path)
    doc = chrome_trace(root)
    problems = validate_chrome_trace(doc)
    if problems:  # pragma: no cover - internal consistency guard
        raise ValueError(f"invalid trace produced: {problems[:3]}")
    atomic_write_text(path, json.dumps(doc))
    return path


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def _fmt_labels(names, values) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{v}"' for n, v in zip(names, values))
    return "{" + inner + "}"


def _fmt_value(v: float) -> str:
    return repr(v) if isinstance(v, float) and not v.is_integer() \
        else str(int(v))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus exposition format."""
    lines: List[str] = []
    for fam in sorted(registry.families(), key=lambda f: f.name):
        if fam.help:
            lines.append(f"# HELP {fam.name} {fam.help}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for values, child in fam.items():
            labels = _fmt_labels(fam.label_names, values)
            if fam.kind == "histogram":
                cumulative = child.cumulative()
                for bound, count in zip([*child.bounds, float("inf")],
                                        cumulative):
                    le = "+Inf" if bound == float("inf") else repr(bound)
                    extra = (labels[:-1] + f',le="{le}"}}' if labels
                             else f'{{le="{le}"}}')
                    lines.append(f"{fam.name}_bucket{extra} {count}")
                lines.append(f"{fam.name}_sum{labels} {child.sum!r}")
                lines.append(f"{fam.name}_count{labels} {child.count}")
            elif fam.kind == "gauge":
                lines.append(
                    f"{fam.name}{labels} {_fmt_value(child.value)}")
            else:
                lines.append(
                    f"{fam.name}{labels} {_fmt_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_json(registry: MetricsRegistry) -> Dict[str, Any]:
    """The registry snapshot used for the bundle's ``metrics.json``."""
    return registry.snapshot()


def write_metrics(registry: MetricsRegistry, path: PathLike,
                  fmt: str = "json") -> Path:
    """Write a metrics snapshot (``fmt``: ``"json"`` or ``"prom"``)."""
    path = Path(path)
    if fmt == "json":
        atomic_write_text(path, json.dumps(metrics_json(registry), indent=2,
                                           sort_keys=True) + "\n")
    elif fmt == "prom":
        atomic_write_text(path, prometheus_text(registry))
    else:
        raise ValueError(f"unknown metrics format {fmt!r}")
    return path


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


def write_telemetry(records, path: PathLike) -> Path:
    """Write telemetry records as JSONL (the bundle's
    ``telemetry.jsonl``) — the same stream ``run --progress jsonl``
    prints live, so ``trace watch`` replays either identically."""
    path = Path(path)
    with atomic_writer(path, encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path
