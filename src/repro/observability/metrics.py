"""The live metrics registry: labeled counters, gauges, histograms.

The trace (:mod:`repro.analytics`) answers questions *after* a run;
the metrics registry answers them *during* one, and cheaply: every
instrumented component holds a pre-bound metric child (one dict
lookup at construction, attribute access afterwards), so the hot path
of an update is one float add — no label hashing, no string
formatting, no allocation.

Naming follows the Prometheus conventions the exporters assume:
``repro_<subsystem>_<quantity>[_total]``, labels as key-value pairs.
Components that may run without observability take ``metrics=None``
and guard each update with an ``is not None`` check, which keeps the
disabled path free of even a method call.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing count (one label combination)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that goes up and down, with high/low watermarks.

    The watermarks make saturation questions ("did the srun ceiling
    ever fill?") answerable from the end-of-run snapshot without
    storing a time series.
    """

    __slots__ = ("value", "max", "min", "_touched")

    def __init__(self) -> None:
        self.value = 0.0
        self.max = 0.0
        self.min = 0.0
        self._touched = False

    def set(self, value: float) -> None:
        self.value = value
        if not self._touched:
            self._touched = True
            self.max = self.min = value
        elif value > self.max:
            self.max = value
        elif value < self.min:
            self.min = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value, "max": self.max, "min": self.min}


#: Default histogram buckets, tuned for latencies in simulated seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe`` is O(log buckets) via bisect on the (small) upper-bound
    list; ``counts[i]`` is the number of observations ``<= bounds[i]``,
    with one implicit ``+Inf`` bucket at the end.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> List[int]:
        """Cumulative counts per bucket (the ``le`` series), +Inf last."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def snapshot(self) -> Dict[str, Any]:
        return {"sum": self.sum, "count": self.count,
                "buckets": dict(zip([*map(str, self.bounds), "+Inf"],
                                    self.cumulative()))}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children (label combinations) of one named metric."""

    __slots__ = ("name", "kind", "help", "label_names", "_children",
                 "_hist_bounds")

    def __init__(self, name: str, kind: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._hist_bounds = tuple(buckets) if buckets is not None else None

    def labels(self, *values: Any, **kv: Any) -> Any:
        """The child for one label combination, created on first use.

        Accepts positional values (in declared order) or keyword
        arguments; both are normalized to the declared order so
        ``labels("flux")`` and ``labels(backend="flux")`` address the
        same child.
        """
        if kv:
            if values:
                raise ValueError(
                    f"{self.name}: mix of positional and keyword labels")
            try:
                values = tuple(kv[n] for n in self.label_names)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name}: missing label {exc.args[0]!r} "
                    f"(declared: {self.label_names})") from None
            if len(kv) != len(self.label_names):
                extra = set(kv) - set(self.label_names)
                raise ValueError(
                    f"{self.name}: unknown labels {sorted(extra)}")
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label "
                f"values {self.label_names}, got {len(values)}")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram" and self._hist_bounds is not None:
                child = Histogram(self._hist_bounds)
            else:
                child = _KINDS[self.kind]()
            self._children[key] = child
        return child

    def items(self) -> Iterator[Tuple[Tuple[str, ...], Any]]:
        """(label values, child) pairs in insertion (creation) order."""
        return iter(self._children.items())

    def __len__(self) -> int:
        return len(self._children)


class MetricsRegistry:
    """The per-session collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create and
    idempotent: re-declaring a family with the same kind and labels
    returns the existing one (components constructed repeatedly — one
    flux instance per partition — share the family and differ only in
    their label values).  Re-declaring with a *different* shape raises,
    catching instrumentation typos early.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _family(self, name: str, kind: str, help: str,
                label_names: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind or fam.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name!r} re-declared as {kind}{tuple(label_names)}"
                    f", existing {fam.kind}{fam.label_names}")
            return fam
        fam = MetricFamily(name, kind, help, label_names, buckets)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Any:
        """A counter family — or, with no labels, its single child."""
        fam = self._family(name, "counter", help, labels)
        return fam if labels else fam.labels()

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Any:
        fam = self._family(name, "gauge", help, labels)
        return fam if labels else fam.labels()

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Any:
        fam = self._family(name, "histogram", help, labels, buckets)
        return fam if labels else fam.labels()

    def families(self) -> Iterator[MetricFamily]:
        return iter(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every family and child (sorted by name)."""
        out: Dict[str, Any] = {}
        for name in sorted(self._families):
            fam = self._families[name]
            out[name] = {
                "kind": fam.kind,
                "help": fam.help,
                "labels": list(fam.label_names),
                "series": [
                    {"labels": dict(zip(fam.label_names, key)),
                     **child.snapshot()}
                    for key, child in fam.items()
                ],
            }
        return out


class KernelInstrument:
    """Per-environment kernel probes, consumed by the instrumented
    dispatch loop in :meth:`repro.sim.kernel.Environment.run`.

    The hot path is O(1) per ``run()`` call, not per event: the
    instrumented loop accumulates event-kind counts and queue-depth
    extremes in plain locals and calls :meth:`flush` once when the
    loop exits.  The flush replays the accumulated state onto the
    metric children in a way that is observably identical to the old
    per-event ``inc``/``set`` sequence (same counter totals, same
    gauge value/max/min watermarks), so exporter output is unchanged
    while the per-event cost drops from four method calls to a few
    local integer operations.  ``account`` converts one ``run()``
    invocation into the wall-per-sim-second gauge.
    """

    __slots__ = ("_events", "_bootstraps", "_callbacks", "_depth",
                 "_runs", "_wall", "_sim", "_ratio")

    def __init__(self, registry: MetricsRegistry) -> None:
        fam = registry.counter("repro_kernel_events_total",
                               "simulation events dispatched",
                               labels=("kind",))
        self._events = fam.labels("event")
        self._bootstraps = fam.labels("bootstrap")
        self._callbacks = fam.labels("callback")
        self._depth = registry.gauge("repro_kernel_queue_depth",
                                     "pending-event queue length")
        self._runs = registry.counter("repro_kernel_runs_total",
                                      "Environment.run invocations")
        self._wall = registry.counter("repro_kernel_wall_seconds_total",
                                      "wall time spent inside run()")
        self._sim = registry.counter("repro_kernel_sim_seconds_total",
                                     "simulated time advanced by run()")
        self._ratio = registry.gauge(
            "repro_kernel_wall_per_sim_second",
            "wall seconds per simulated second (cumulative)")

    def flush(self, n_events: int, n_bootstraps: int, n_callbacks: int,
              depth_max: int, depth_min: int, depth_last: int) -> None:
        """Fold one ``run()`` loop's accumulated samples into the
        metrics.  ``depth_min`` < 0 means no event was dispatched (the
        depth gauge is then left untouched, as the per-event path never
        sampled it either)."""
        if n_events:
            self._events.inc(n_events)
        if n_bootstraps:
            self._bootstraps.inc(n_bootstraps)
        if n_callbacks:
            self._callbacks.inc(n_callbacks)
        if depth_min >= 0:
            # Watermark-equivalent replay of the per-event set() calls:
            # extremes first, the final sample last so ``value`` is the
            # last observed depth.
            self._depth.set(depth_max)
            self._depth.set(depth_min)
            self._depth.set(depth_last)

    def account(self, sim_delta: float, wall_delta: float) -> None:
        self._runs.inc()
        self._wall.inc(wall_delta)
        self._sim.inc(sim_delta)
        if self._sim.value > 0:
            self._ratio.set(self._wall.value / self._sim.value)
