"""Unified observability: spans, metrics, structured logs, manifests.

One :class:`Observability` object per session bundles the four
instruments this package provides:

* a **span model** (:mod:`~repro.observability.spans`) — hierarchical
  sim-time spans over the task lifecycle, built online (tracer) or
  offline from recorded trace events;
* a **metrics registry** (:mod:`~repro.observability.metrics`) —
  labeled counters/gauges/histograms updated live by the kernel,
  executors, Flux instances, the Dragon pool and the srun facility;
* **structured logging** (:mod:`~repro.observability.log`) —
  sim-clock-stamped, component-scoped records, off by default;
* **run manifests** (:mod:`~repro.observability.manifest`) — the
  machine-readable bundle (manifest + metrics + spans + Perfetto
  trace + profile) the harness writes per run.

Observability is **disabled by default** and engineered to be
near-free when off: components hold ``None`` instead of metric
handles and guard each update with one identity check, the kernel's
hot dispatch loops are untouched (the instrumented loop is a separate
code path selected once per ``run()`` call), and same-seed traces are
byte-identical with observability on, off, or absent — instruments
observe the simulation, they never perturb it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, TextIO

from .export import (
    chrome_trace,
    metrics_json,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from .log import LogRecord, LogSink, SimLogger
from .manifest import (
    BUNDLE_VERSION,
    build_manifest,
    package_versions,
    read_manifest,
    write_bundle,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    KernelInstrument,
    MetricFamily,
    MetricsRegistry,
)
from .spans import (
    PHASES,
    Span,
    Tracer,
    phase_rollup,
    span_from_dict,
    spans_from_events,
    spans_from_profiler,
)
from .telemetry import (
    TELEMETRY_SCHEMA,
    EtaEstimator,
    HostProfiler,
    RunTelemetry,
    SessionSampler,
    SweepTelemetry,
    TelemetryBus,
    read_telemetry,
    render_progress_line,
    validate_telemetry,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.kernel import Environment

__all__ = [
    "BUNDLE_VERSION",
    "Counter",
    "EtaEstimator",
    "Gauge",
    "Histogram",
    "HostProfiler",
    "KernelInstrument",
    "LogRecord",
    "LogSink",
    "MetricFamily",
    "MetricsRegistry",
    "Observability",
    "PHASES",
    "RunTelemetry",
    "SessionSampler",
    "SimLogger",
    "Span",
    "SweepTelemetry",
    "TELEMETRY_SCHEMA",
    "TelemetryBus",
    "Tracer",
    "build_manifest",
    "chrome_trace",
    "metrics_json",
    "package_versions",
    "phase_rollup",
    "prometheus_text",
    "read_manifest",
    "read_telemetry",
    "render_progress_line",
    "span_from_dict",
    "spans_from_events",
    "spans_from_profiler",
    "validate_chrome_trace",
    "validate_telemetry",
    "write_bundle",
    "write_chrome_trace",
    "write_metrics",
]


class Observability:
    """Per-session observability facade.

    ``enabled`` gates the metrics registry and tracer; components
    receive ``obs.registry`` (``None`` when disabled) and guard their
    updates on it, so a disabled session pays nothing beyond object
    construction.  Logging has its own switch
    (:meth:`enable_logging`) because log volume is a separate decision
    from metric collection.
    """

    def __init__(self, env: "Environment", enabled: bool = False) -> None:
        self.env = env
        self.enabled = enabled
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if enabled else None)
        self.tracer = Tracer(env, enabled=enabled)
        self.sink = LogSink(env)

    def logger(self, component: str) -> SimLogger:
        """A component-scoped structured logger (cheap; make freely)."""
        return SimLogger(self.sink, component)

    def enable_logging(self, level: str = "info",
                       stream: Optional[TextIO] = None) -> None:
        """Turn structured logging on (independently of metrics)."""
        self.sink.enable(level=level, stream=stream)

    def attach_kernel(self, env: Optional["Environment"] = None) -> None:
        """Instrument a simulation kernel with event/queue metrics.

        Selects the kernel's instrumented dispatch loop; a no-op when
        observability is disabled (the fast loops stay in place).
        """
        if not self.enabled:
            return
        target = env if env is not None else self.env
        assert self.registry is not None
        target._instrument = KernelInstrument(self.registry)
