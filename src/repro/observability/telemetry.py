"""The live telemetry bus: streaming progress snapshots from a run.

The post-hoc instruments in this package answer questions after a run
finished; the telemetry bus answers *"how far along is it?"* while
one is still going.  It is pull-based: nothing in the simulation ever
pushes a record — instead a *sampler* reads live state (task
counters, per-backend occupancy, node health, host wall time, RSS)
and a :class:`TelemetryBus` decides, on a **wall-clock** rate limit,
when a snapshot is actually taken and emitted.  Sampling only reads;
it never schedules events, draws randomness, or touches the simulated
clock, so same-seed traces are byte-identical with telemetry on or
off (pinned by ``tests/observability/test_telemetry.py``).

Emission points, one per execution shape, all speaking the same
record schema (:data:`TELEMETRY_SCHEMA`):

* plain runs — the kernel's instrumented dispatch loop fires a probe
  every :data:`~repro.sim.kernel.PROBE_STRIDE` events
  (:meth:`TelemetryBus.probe`);
* sharded runs — the coordinator additionally polls at every window
  boundary, folding in the per-shard deltas the workers piggyback on
  their :class:`~repro.shard.protocol.WindowResult`;
* ensembles — the engines report per-seed / per-cohort progress;
* ``run_repetitions(parallel=)`` — the parent process emits one
  record per completed repetition.

Records go to any number of subscribers (the CLI line renderer, a
JSONL stream, the in-memory buffer the bundle writer reads) — the
exact feed a service front door would forward over SSE.
"""

from __future__ import annotations

import json
import sys
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, TextIO

__all__ = [
    "TELEMETRY_SCHEMA",
    "TELEMETRY_SOURCES",
    "EtaEstimator",
    "HostProfiler",
    "RunTelemetry",
    "SessionSampler",
    "SweepTelemetry",
    "TelemetryBus",
    "host_rss_mb",
    "jsonl_sink",
    "line_sink",
    "read_telemetry",
    "render_progress_line",
    "validate_telemetry",
]

#: Telemetry record schema version, bumped on field changes.
TELEMETRY_SCHEMA = 1

#: Values the ``source`` field may take — one per execution shape.
TELEMETRY_SOURCES = ("plain", "shard", "ensemble", "parallel")

#: Default wall-clock poll interval [s]: snapshots are taken at most
#: this often no matter how fast the probe or window loop fires.
DEFAULT_INTERVAL = 0.25


def host_rss_mb() -> float:
    """Peak resident-set size of this process [MB] (0.0 off-POSIX).

    Peak, not current — the same ``getrusage`` idiom the shard
    workers already report, and a single cheap syscall.
    """
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    except Exception:  # pragma: no cover - non-POSIX
        return 0.0


class HostProfiler:
    """Wall-clock phase timers + RSS sampling for the host process.

    Sim-time profiling cannot see where *wall* time goes (workload
    construction, the kernel loop, metric computation, bundle
    writing); this accumulates it per named phase so sim-throughput
    vs. wall-throughput divergence is visible live in every telemetry
    record and post-hoc in the final one.  Phases may be re-entered;
    durations accumulate.
    """

    def __init__(self, clock: Callable[[], float] = perf_counter) -> None:
        self._clock = clock
        self._t0 = clock()
        self.phases: Dict[str, float] = {}
        self._open: Dict[str, float] = {}

    def start(self, name: str) -> None:
        self._open[name] = self._clock()

    def stop(self, name: str) -> float:
        """Close one phase; returns the increment added [s]."""
        begun = self._open.pop(name, None)
        if begun is None:
            return 0.0
        delta = self._clock() - begun
        self.phases[name] = self.phases.get(name, 0.0) + delta
        return delta

    def phase(self, name: str) -> "_PhaseContext":
        """``with profiler.phase("run"): ...`` — wall-clock scoped."""
        return _PhaseContext(self, name)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state: elapsed wall, per-phase totals, RSS.

        Open phases are included at their running duration, so a
        snapshot taken mid-run attributes the wall time spent so far.
        """
        now = self._clock()
        phases = dict(self.phases)
        for name, begun in self._open.items():
            phases[name] = phases.get(name, 0.0) + (now - begun)
        return {
            "wall_seconds": round(now - self._t0, 6),
            "phases": {k: round(v, 6) for k, v in sorted(phases.items())},
            "rss_mb": round(host_rss_mb(), 3),
        }


class _PhaseContext:
    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: HostProfiler, name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> None:
        self._profiler.start(self._name)

    def __exit__(self, *exc) -> None:
        self._profiler.stop(self._name)


class EtaEstimator:
    """Remaining-time estimate from the task-completion rate.

    Early in a run the observed rate is noise (or undefined), so the
    estimate blends a *prior* — the
    :class:`~repro.ensemble.surrogate.FluidSurrogate` makespan
    prediction, when one exists for the config — with the observed
    rate, weighting the observation by the completed fraction: at 0%%
    done the ETA is pure prior, at 100%% pure measurement.

    ``estimate`` is a pure function of its arguments (plus the fixed
    total/prior), so the estimator works against either clock: feed it
    sim time for kernel runs, wall time for ensembles.
    """

    def __init__(self, total: Optional[int],
                 prior_makespan: Optional[float] = None) -> None:
        self.total = total
        self.prior = prior_makespan

    def estimate(self, elapsed: float, done: int) -> Optional[float]:
        """Estimated remaining seconds, ``None`` when unknowable."""
        total = self.total
        if total is None or total <= 0:
            return None
        if done >= total:
            return 0.0
        prior_left = (max(self.prior - elapsed, 0.0)
                      if self.prior is not None else None)
        if done <= 0 or elapsed <= 0.0:
            return prior_left
        observed = (total - done) * (elapsed / done)
        if prior_left is None:
            return observed
        weight = done / total
        return weight * observed + (1.0 - weight) * prior_left


class TelemetryBus:
    """Rate-limited snapshot emission to a set of subscribers.

    ``poll`` is the hot entry point: it returns immediately (two
    comparisons) unless ``interval`` wall seconds have passed since
    the last emission, and only then calls the sampler — so sampling
    cost is bounded by wall time, never by event count.  ``emit``
    bypasses the limiter for must-have records (the final one).
    Records are retained on :attr:`records` for the bundle writer.
    """

    def __init__(self, source: str, interval: float = DEFAULT_INTERVAL,
                 sink: Optional[Callable[[Dict[str, Any]], None]] = None,
                 clock: Callable[[], float] = perf_counter) -> None:
        if source not in TELEMETRY_SOURCES:
            raise ValueError(f"unknown telemetry source {source!r}; "
                             f"pick from {TELEMETRY_SOURCES}")
        self.source = source
        self.interval = float(interval)
        self.records: List[Dict[str, Any]] = []
        self._subscribers: List[Callable[[Dict[str, Any]], None]] = []
        if sink is not None:
            self._subscribers.append(sink)
        self._clock = clock
        self._t0 = clock()
        self._last = float("-inf")
        self._seq = 0

    def subscribe(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        self._subscribers.append(sink)

    def elapsed(self) -> float:
        """Wall seconds since the bus was created."""
        return self._clock() - self._t0

    def emit(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp ``fields`` into a record and dispatch it (no limit)."""
        now = self._clock()
        self._last = now
        record = {
            "schema": TELEMETRY_SCHEMA,
            "source": self.source,
            "seq": self._seq,
            "wall_time": round(now - self._t0, 6),
        }
        record.update(fields)
        self._seq += 1
        self.records.append(record)
        for sink in self._subscribers:
            sink(record)
        return record

    def poll(self, sampler: Callable[[], Dict[str, Any]]
             ) -> Optional[Dict[str, Any]]:
        """Emit ``sampler()`` if the poll interval elapsed, else no-op."""
        if self._clock() - self._last < self.interval:
            return None
        return self.emit(sampler())

    def probe(self, sampler: Callable[[], Dict[str, Any]]
              ) -> Callable[[], None]:
        """A zero-argument closure for the kernel's heartbeat hook
        (:attr:`~repro.sim.kernel.Environment._probe`)."""
        def fire() -> None:
            self.poll(sampler)
        return fire


class SessionSampler:
    """Live-state snapshots of one kernel-backed session.

    Reads (never writes) the counters the stack already maintains:
    the agent's task ledger, each executor's active/queued occupancy,
    the allocation's node health, the sim clock, and — on sharded
    runs — the per-shard deltas the workers piggybacked on the last
    window.  Construction is cheap; the sampler is consulted only
    when the bus's rate limiter fires.
    """

    def __init__(self, session, pilot=None,
                 tasks_total: Optional[int] = None,
                 eta: Optional[EtaEstimator] = None,
                 host: Optional[HostProfiler] = None) -> None:
        self.session = session
        self.pilot = pilot
        self.tasks_total = tasks_total
        self.eta = eta if eta is not None else EtaEstimator(tasks_total)
        self.host = host

    def sample(self) -> Dict[str, Any]:
        session = self.session
        sim_time = session.env.now
        agent = self.pilot.agent if self.pilot is not None else None
        done = failed = 0
        backends: Dict[str, Dict[str, int]] = {}
        if agent is not None:
            done = agent.n_done
            failed = agent.n_failed
            for name in sorted(agent.executors):
                ex = agent.executors[name]
                backends[name] = {"active": int(ex.n_active),
                                  "queued": int(ex.outstanding)}
        nodes_down = 0
        if self.pilot is not None and self.pilot.allocation is not None:
            nodes_down = self.pilot.allocation.n_down_nodes
        total = self.tasks_total
        self.eta.total = total
        record: Dict[str, Any] = {
            "sim_time": round(sim_time, 9),
            "tasks_total": total,
            "tasks_done": done,
            "tasks_failed": failed,
            "progress": round(done / total, 6) if total else 0.0,
            "eta_seconds": self.eta.estimate(sim_time, done),
            "eta_basis": "sim",
            "backends": backends,
            "nodes_down": nodes_down,
            "rss_mb": round(host_rss_mb(), 3),
        }
        if self.host is not None:
            record["host"] = self.host.snapshot()
        engine = session.engine
        if engine is not None:
            deltas = [d for d in engine.shard_telemetry if d is not None]
            if deltas:
                record["shards"] = deltas
            # Supervisor healed a crashed/hung shard worker: surface
            # the running incident count (absent on incident-free
            # runs, keeping the record schema unchanged).
            recovery = getattr(engine, "recovery", None)
            if recovery:
                record["host_recoveries"] = len(recovery)
        return record


class RunTelemetry:
    """One run's telemetry plumbing: a bus bound to its sampler.

    The harness hangs this on ``session.telemetry``; the shard
    engine's window loop and the kernel probe both reach it there.
    """

    def __init__(self, bus: TelemetryBus, sampler: SessionSampler) -> None:
        self.bus = bus
        self.sampler = sampler

    @property
    def records(self) -> List[Dict[str, Any]]:
        return self.bus.records

    def tick(self) -> Optional[Dict[str, Any]]:
        """Rate-limited snapshot (window boundaries, probe firings)."""
        return self.bus.poll(self.sampler.sample)

    def flush(self) -> Dict[str, Any]:
        """Unconditional snapshot — every run emits at least one."""
        return self.bus.emit(self.sampler.sample())

    def probe(self) -> Callable[[], None]:
        return self.bus.probe(self.sampler.sample)


class SweepTelemetry:
    """Progress over a multi-member sweep (ensemble seeds, parallel
    repetitions).

    Members are whole experiment runs, so ETA comes from the *wall*
    clock member-completion rate (``eta_basis: "wall"``) — the sim
    clock is meaningless across members.  The vectorized ensemble
    engine also reports intra-cohort task progress via
    :meth:`cohort`, which fills the task counters before any member
    has formally completed.
    """

    def __init__(self, source: str, members_total: int,
                 bus: Optional[TelemetryBus] = None,
                 sink: Optional[Callable[[Dict[str, Any]], None]] = None,
                 interval: float = DEFAULT_INTERVAL) -> None:
        self.bus = bus if bus is not None else TelemetryBus(
            source, interval=interval, sink=sink)
        self.members_total = int(members_total)
        self.members_done = 0
        self.tasks_total: Optional[int] = None
        self.tasks_done = 0
        self.tasks_failed = 0
        #: ``(done, total)`` task counts from a lock-stepped engine's
        #: mid-flight cohort hook; superseded once members complete.
        self._cohort: Optional[tuple] = None
        #: Members delivered without simulating: run-store hits and
        #: sweep-ledger rehydrations (see ``ExperimentResult.provenance``).
        self.members_cached = 0
        self.members_resumed = 0
        self.eta = EtaEstimator(self.members_total)

    @classmethod
    def create(cls, source: str, members_total: int, progress
               ) -> "SweepTelemetry":
        """Coerce a ``run_experiment``-style ``progress`` value (a
        :class:`TelemetryBus`, a callable sink, or a truthy flag)."""
        if isinstance(progress, TelemetryBus):
            return cls(source, members_total, bus=progress)
        return cls(source, members_total,
                   sink=progress if callable(progress) else None)

    @property
    def records(self) -> List[Dict[str, Any]]:
        return self.bus.records

    def _sample(self) -> Dict[str, Any]:
        done, total = self.members_done, self.members_total
        tasks_done, tasks_total = self.tasks_done, self.tasks_total
        if done == 0 and self._cohort is not None:
            tasks_done, tasks_total = self._cohort
        return {
            "members_done": done,
            "members_total": total,
            "tasks_total": tasks_total,
            "tasks_done": tasks_done,
            "tasks_failed": self.tasks_failed,
            "members_cached": self.members_cached,
            "members_resumed": self.members_resumed,
            "progress": round(done / total, 6) if total else 0.0,
            "eta_seconds": self.eta.estimate(self.bus.elapsed(), done),
            "eta_basis": "wall",
            "rss_mb": round(host_rss_mb(), 3),
        }

    def member_done(self, n_tasks: int = 0, n_done: int = 0,
                    n_failed: int = 0,
                    provenance: str = "fresh") -> Optional[Dict[str, Any]]:
        """Record one completed member; emits unconditionally when it
        is the last one so every sweep produces at least one record.

        ``provenance`` mirrors ``ExperimentResult.provenance`` —
        ``"cached"`` (run-store hit) and ``"resumed"`` (sweep-ledger
        rehydration) members are counted separately so the stream
        shows how much of a sweep was actually simulated."""
        self.members_done += 1
        if provenance == "cached":
            self.members_cached += 1
        elif provenance == "resumed":
            self.members_resumed += 1
        self.tasks_total = (self.tasks_total or 0) + int(n_tasks)
        self.tasks_done += int(n_done)
        self.tasks_failed += int(n_failed)
        if self.members_done >= self.members_total:
            return self.bus.emit(self._sample())
        return self.bus.poll(self._sample)

    def cohort(self, tasks_done: int, tasks_total: int
               ) -> Optional[Dict[str, Any]]:
        """Mid-flight task progress from a lock-stepped engine: all
        members advance together, so counts are cohort-index times
        member count.  Rate-limited; read-only on engine state."""
        self._cohort = (int(tasks_done), int(tasks_total))
        return self.bus.poll(self._sample)

    def tick(self) -> Optional[Dict[str, Any]]:
        """Rate-limited heartbeat with the current counters."""
        return self.bus.poll(self._sample)


# ---------------------------------------------------------------------------
# Rendering and consumption
# ---------------------------------------------------------------------------


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def render_progress_line(record: Dict[str, Any]) -> str:
    """One human-readable status line for a telemetry record."""
    done = record.get("tasks_done", 0)
    total = record.get("tasks_total")
    frac = f"{record.get('progress', 0.0):.1%}"
    counts = f"{done}/{total if total is not None else '?'}"
    parts = [f"[{record.get('wall_time', 0.0):8.2f}s]",
             record.get("source", "?"), f"{counts} ({frac})"]
    sim = record.get("sim_time")
    if sim is not None:
        parts.append(f"sim {sim:.1f}s")
    eta = record.get("eta_seconds")
    basis = record.get("eta_basis", "sim")
    parts.append(f"eta[{basis}] {_fmt_eta(eta)}")
    backends = record.get("backends") or {}
    for name, occ in backends.items():
        parts.append(f"{name} a{occ.get('active', 0)}/q{occ.get('queued', 0)}")
    members = record.get("members_total")
    if members is not None:
        parts.append(f"seeds {record.get('members_done', 0)}/{members}")
        cached = record.get("members_cached", 0)
        resumed = record.get("members_resumed", 0)
        if cached:
            parts.append(f"cached {cached}")
        if resumed:
            parts.append(f"resumed {resumed}")
    if record.get("nodes_down"):
        parts.append(f"down {record['nodes_down']}")
    shards = record.get("shards")
    if shards:
        parts.append(f"shards {len(shards)}")
    parts.append(f"rss {record.get('rss_mb', 0.0):.0f}MB")
    return "  ".join(str(p) for p in parts)


def line_sink(stream: Optional[TextIO] = None
              ) -> Callable[[Dict[str, Any]], None]:
    """A subscriber printing one rendered line per record."""
    out = stream if stream is not None else sys.stderr

    def write(record: Dict[str, Any]) -> None:
        print(render_progress_line(record), file=out, flush=True)
    return write


def jsonl_sink(stream: Optional[TextIO] = None
               ) -> Callable[[Dict[str, Any]], None]:
    """A subscriber printing one JSON object per record (the machine
    feed ``run --progress jsonl`` exposes)."""
    out = stream if stream is not None else sys.stderr

    def write(record: Dict[str, Any]) -> None:
        print(json.dumps(record, sort_keys=True), file=out, flush=True)
    return write


def read_telemetry(path) -> List[Dict[str, Any]]:
    """Load a ``telemetry.jsonl`` file (one record per line)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------

_NUMBER = (int, float)


def validate_telemetry(record: Dict[str, Any]) -> List[str]:
    """Schema-check one record; returns a list of problems (empty =
    valid).  This is the stability contract consumers (the CLI
    renderer, the future SSE forwarder) rely on, pinned by the
    observability tests for every execution shape.
    """
    problems: List[str] = []

    def need(field: str, kinds, none_ok: bool = False) -> Any:
        if field not in record:
            problems.append(f"missing field {field!r}")
            return None
        value = record[field]
        if value is None:
            if not none_ok:
                problems.append(f"{field}: must not be null")
            return None
        if not isinstance(value, kinds) or isinstance(value, bool):
            problems.append(f"{field}: bad type {type(value).__name__}")
            return None
        return value

    if need("schema", int) != TELEMETRY_SCHEMA:
        problems.append(f"schema: expected {TELEMETRY_SCHEMA}")
    source = need("source", str)
    if source is not None and source not in TELEMETRY_SOURCES:
        problems.append(f"source: unknown {source!r}")
    seq = need("seq", int)
    if seq is not None and seq < 0:
        problems.append("seq: negative")
    wall = need("wall_time", _NUMBER)
    if wall is not None and wall < 0:
        problems.append("wall_time: negative")
    need("tasks_done", int)
    need("tasks_total", int, none_ok=True)
    need("tasks_failed", int)
    progress = need("progress", _NUMBER)
    if progress is not None and not 0.0 <= progress <= 1.0:
        problems.append(f"progress: {progress} outside [0, 1]")
    need("eta_seconds", _NUMBER, none_ok=True)
    basis = need("eta_basis", str)
    if basis is not None and basis not in ("sim", "wall"):
        problems.append(f"eta_basis: unknown {basis!r}")
    need("rss_mb", _NUMBER)

    if source in ("plain", "shard"):
        need("sim_time", _NUMBER)
        backends = need("backends", dict)
        if backends is not None:
            for name, occ in backends.items():
                if not isinstance(occ, dict) or \
                        not {"active", "queued"} <= set(occ):
                    problems.append(f"backends[{name!r}]: needs "
                                    "active/queued")
        need("nodes_down", int)
    if source == "shard":
        shards = record.get("shards")
        if shards is not None and not isinstance(shards, list):
            problems.append("shards: must be a list")
        for i, delta in enumerate(shards or ()):
            if not isinstance(delta, dict) or "shard" not in delta:
                problems.append(f"shards[{i}]: needs a shard index")
    if source in ("ensemble", "parallel"):
        need("members_done", int)
        need("members_total", int)
    return problems
