"""Unique-identifier generation for sessions, pilots, tasks and jobs.

IDs follow the RADICAL convention ``<prefix>.<NNNN>`` with a
per-prefix monotonic counter scoped to an :class:`IdRegistry`.
Scoping the counters to a registry (one per session) keeps IDs
deterministic within a run and independent across concurrent
sessions — important for reproducible traces.
"""

from __future__ import annotations

from typing import Dict


class IdRegistry:
    """Per-session factory of sequential, prefixed identifiers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def next(self, prefix: str) -> str:
        """Return the next id for ``prefix``, e.g. ``task.000042``."""
        count = self._counters.get(prefix, 0)
        self._counters[prefix] = count + 1
        return f"{prefix}.{count:06d}"

    def count(self, prefix: str) -> int:
        """How many ids have been handed out for ``prefix``."""
        return self._counters.get(prefix, 0)


#: Module-level registry for components created outside a session.
_default_registry = IdRegistry()


def generate_id(prefix: str) -> str:
    """Generate an id from the module-level registry."""
    return _default_registry.next(prefix)
