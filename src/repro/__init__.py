"""repro — reproduction of *Integrating and Characterizing HPC Task
Runtime Systems for hybrid AI-HPC workloads* (SC Workshops '25).

A pilot-job runtime (RADICAL-Pilot analogue) that concurrently drives
Flux-like, Dragon-like and Slurm/srun-like task runtime systems over a
discrete-event-simulated HPC platform, plus the workloads, analytics
and experiment harness that regenerate every figure and table of the
paper's evaluation.

Package layout
--------------
``repro.sim``
    From-scratch discrete-event simulation kernel.
``repro.platform``
    Nodes, clusters, allocations, calibrated latency models.
``repro.rjms``
    Slurm-like controller + srun launch path (112-srun ceiling).
``repro.flux``
    Flux-like hierarchical runtime (ingest, scheduler, lanes, events).
``repro.dragon``
    Dragon-like runtime (global services, worker pools, channels).
``repro.core``
    The pilot runtime: sessions, pilots, tasks, agent, executors.
``repro.workloads``
    Synthetic (null/dummy) and IMPECCABLE campaign generators.
``repro.analytics``
    Trace store and throughput/utilization/overhead metrics.
``repro.experiments``
    Table-1 experiment configurations and the run harness.
"""

__version__ = "1.0.0"

from .core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from .platform import ResourceSpec, frontier

__all__ = [
    "PartitionSpec",
    "PilotDescription",
    "ResourceSpec",
    "Session",
    "TaskDescription",
    "frontier",
    "__version__",
]
