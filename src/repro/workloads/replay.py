"""Workload replay from recorded traces.

A characterization workflow the paper's methodology implies: record a
run's task arrivals (creation times, resource shapes, durations),
then replay the same workload against a *different* runtime
configuration to compare backends on identical input.  Works from a
live :class:`~repro.analytics.profiler.Profiler` or from a JSONL
profile exported with :func:`repro.analytics.save_profile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from ..analytics import events as tev
from ..core.description import MODE_EXECUTABLE, TaskDescription
from ..exceptions import WorkloadError
from ..platform.spec import ResourceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analytics.events import TraceEvent
    from ..core.session import Session
    from ..core.task import Task
    from ..core.task_manager import TaskManager


@dataclass(frozen=True)
class TimedTask:
    """One replayable task: when it arrived and what it needs."""

    arrival: float
    description: TaskDescription


def workload_from_trace(events: Iterable["TraceEvent"]) -> List[TimedTask]:
    """Reconstruct the submitted workload from trace events.

    Arrival = the task's ``task_created`` timestamp (normalized so the
    first arrival is t=0).  Duration = its exec interval; tasks that
    never executed are reconstructed with zero duration.
    """
    created: dict = {}
    exec_start: dict = {}
    exec_stop: dict = {}
    for ev in events:
        if ev.name == tev.TASK_CREATED:
            created[ev.entity] = ev
        elif ev.name == tev.TASK_EXEC_START:
            exec_start.setdefault(ev.entity, ev.time)
        elif ev.name == tev.TASK_EXEC_STOP:
            exec_stop[ev.entity] = ev.time
    if not created:
        raise WorkloadError("trace contains no task_created events")
    t0 = min(ev.time for ev in created.values())
    out: List[TimedTask] = []
    for uid in sorted(created, key=lambda u: (created[u].time, u)):
        ev = created[uid]
        duration = 0.0
        if uid in exec_start and uid in exec_stop:
            duration = max(0.0, exec_stop[uid] - exec_start[uid])
        cores = int(ev.meta.get("cores", 1))
        gpus = int(ev.meta.get("gpus", 0))
        if cores <= 0 and gpus <= 0:
            cores = 1  # degenerate record: fall back to a 1-core task
        mode = str(ev.meta.get("mode", MODE_EXECUTABLE))
        out.append(TimedTask(
            arrival=ev.time - t0,
            description=TaskDescription(
                executable=f"replay:{uid}", mode=mode,
                resources=ResourceSpec(cores=cores, gpus=gpus),
                duration=duration, tags={"replay_of": uid}),
        ))
    return out


class ReplayRunner:
    """Submits a timed workload with its original arrival pattern."""

    def __init__(self, session: "Session", tmgr: "TaskManager",
                 workload: List[TimedTask],
                 time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise WorkloadError(f"time_scale must be > 0, got {time_scale}")
        self.session = session
        self.env = session.env
        self.tmgr = tmgr
        self.workload = sorted(workload, key=lambda t: t.arrival)
        self.time_scale = time_scale
        self.tasks: List["Task"] = []

    def start(self):
        """Kick off the timed submission; returns the all-final event."""
        return self.env.process(self._run())

    def _run(self):
        begin = self.env.now
        for timed in self.workload:
            due = begin + timed.arrival * self.time_scale
            if due > self.env.now:
                yield self.env.timeout(due - self.env.now)
            self.tasks.append(self.tmgr.submit_tasks(timed.description))
        yield self.tmgr.wait_tasks(self.tasks)
