"""Generic workflow DAGs over the pilot runtime.

RP is "used by both general-purpose workflow systems and
domain-specific frameworks" (§1) — the layer above the runtime
expresses dependencies.  This module provides that layer: a validated
task DAG plus a runner that submits each node the moment its
dependencies succeed, with configurable failure semantics
(``skip_dependents`` — downstream nodes of a failed node are canceled
— or ``fail_fast`` — the whole remaining workflow is canceled).

The IMPECCABLE campaign runner is the domain-specific sibling of this
general mechanism (stage-level pipeline vs. task-level DAG).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.description import TaskDescription
from ..exceptions import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.session import Session
    from ..core.task import Task
    from ..core.task_manager import TaskManager

#: Failure policies.
SKIP_DEPENDENTS = "skip_dependents"
FAIL_FAST = "fail_fast"
POLICIES = (SKIP_DEPENDENTS, FAIL_FAST)


@dataclass(frozen=True)
class WorkflowNode:
    """One named task in a workflow DAG."""

    name: str
    description: TaskDescription
    depends_on: Tuple[str, ...] = ()


class Workflow:
    """A validated DAG of named tasks."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._nodes: Dict[str, WorkflowNode] = {}

    def add(self, name: str, description: TaskDescription,
            depends_on: Sequence[str] = ()) -> WorkflowNode:
        """Add a node; dependency names may be added later (validated
        at :meth:`validate` / run time)."""
        if name in self._nodes:
            raise WorkloadError(f"duplicate workflow node {name!r}")
        node = WorkflowNode(name=name, description=description,
                            depends_on=tuple(depends_on))
        self._nodes[name] = node
        return node

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> List[WorkflowNode]:
        return list(self._nodes.values())

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on unknown deps or cycles."""
        for node in self._nodes.values():
            for dep in node.depends_on:
                if dep not in self._nodes:
                    raise WorkloadError(
                        f"{node.name!r} depends on unknown node {dep!r}")
        self.topological_order()

    def topological_order(self) -> List[str]:
        """Kahn's algorithm; raises on cycles."""
        indegree = {name: len(set(node.depends_on))
                    for name, node in self._nodes.items()}
        dependents: Dict[str, List[str]] = {n: [] for n in self._nodes}
        for name, node in self._nodes.items():
            for dep in set(node.depends_on):
                if dep in dependents:
                    dependents[dep].append(name)
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for child in dependents[current]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._nodes):
            cyclic = sorted(n for n, d in indegree.items() if d > 0)
            raise WorkloadError(f"workflow has a cycle involving {cyclic}")
        return order

    def critical_path_length(self) -> float:
        """Sum of durations along the longest dependency chain."""
        order = self.topological_order()
        longest: Dict[str, float] = {}
        for name in order:
            node = self._nodes[name]
            base = max((longest[d] for d in node.depends_on), default=0.0)
            longest[name] = base + node.description.duration
        return max(longest.values(), default=0.0)


@dataclass
class WorkflowResult:
    """Outcome of one workflow execution."""

    tasks: Dict[str, "Task"] = field(default_factory=dict)
    skipped: List[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return (not self.skipped
                and all(t.succeeded for t in self.tasks.values()))


class WorkflowRunner:
    """Executes a workflow on a pilot through a task manager."""

    def __init__(self, session: "Session", tmgr: "TaskManager",
                 workflow: Workflow,
                 failure_policy: str = SKIP_DEPENDENTS) -> None:
        if failure_policy not in POLICIES:
            raise WorkloadError(
                f"unknown failure policy {failure_policy!r}; "
                f"choose from {POLICIES}")
        workflow.validate()
        self.session = session
        self.env = session.env
        self.tmgr = tmgr
        self.workflow = workflow
        self.failure_policy = failure_policy
        self.result = WorkflowResult()
        self._done_events: Dict[str, object] = {}
        self._abort = False

    def start(self):
        """Kick off all node processes; returns the completion event."""
        for node in self.workflow.nodes:
            self._done_events[node.name] = self.env.event()
        procs = [self.env.process(self._run_node(node))
                 for node in self.workflow.nodes]
        return self.env.all_of(procs)

    def _run_node(self, node: WorkflowNode):
        done = self._done_events[node.name]
        deps = [self._done_events[d] for d in node.depends_on]
        if deps:
            yield self.env.all_of(deps)
        dep_failed = any(
            not self._done_events[d].value for d in node.depends_on)
        if self._abort or dep_failed:
            self.result.skipped.append(node.name)
            done.succeed(False)
            return
        task = self.tmgr.submit_tasks(node.description)
        self.result.tasks[node.name] = task
        yield task.completion_event()
        ok = task.succeeded
        if not ok and self.failure_policy == FAIL_FAST:
            self._abort = True
        done.succeed(ok)
