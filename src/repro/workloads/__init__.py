"""Workload generators: synthetic (null/dummy/mixed), IMPECCABLE and
generic workflow DAGs."""

from .dag import (
    FAIL_FAST,
    SKIP_DEPENDENTS,
    Workflow,
    WorkflowNode,
    WorkflowResult,
    WorkflowRunner,
)
from .patterns import (
    bag_of_tasks,
    ensemble,
    pipeline_with_feedback,
    strong_scaling_sweep,
)
from .replay import ReplayRunner, TimedTask, workload_from_trace
from .impeccable import (
    IMPECCABLE_STAGES,
    CampaignResult,
    CampaignRunner,
    StageTemplate,
    campaign_plan,
    make_stage_tasks,
    min_scalable_tasks,
    stage_task_count,
)
from .synthetic import (
    DEFAULT_WAVES,
    dummy_workload,
    mixed_workload,
    null_workload,
    task_count,
)

__all__ = [
    "DEFAULT_WAVES",
    "FAIL_FAST",
    "IMPECCABLE_STAGES",
    "ReplayRunner",
    "SKIP_DEPENDENTS",
    "TimedTask",
    "Workflow",
    "WorkflowNode",
    "WorkflowResult",
    "WorkflowRunner",
    "bag_of_tasks",
    "CampaignResult",
    "CampaignRunner",
    "StageTemplate",
    "campaign_plan",
    "dummy_workload",
    "ensemble",
    "make_stage_tasks",
    "min_scalable_tasks",
    "mixed_workload",
    "null_workload",
    "pipeline_with_feedback",
    "stage_task_count",
    "strong_scaling_sweep",
    "task_count",
    "workload_from_trace",
]
