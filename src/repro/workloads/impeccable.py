"""The IMPECCABLE.v2 drug-discovery campaign (dummy-task form).

The paper evaluates IMPECCABLE with "representative dummy tasks"
preserving the campaign's heterogeneity, task structure and execution
dynamics (§4).  We reproduce exactly that: six workflows per
generation, with the published resource shapes —

========================  =================================================
workflow                   shape (at 256 nodes, per generation; *scalable*
                           counts grow linearly with allocation size)
========================  =================================================
docking                    12* x 56 cores (1 node, CPU-only, <=128 nodes)
sst_train                  1 x 4 nodes + 32 GPUs
sst_inference              8* x 1 node + 8 GPUs
scoring_mmpbsa             8 x 7168 cores + 512 GPUs (128 nodes, MPI)
ampl                       4 x 1 node + 8 GPUs
esmacs                     12* x 25 nodes + 200 GPUs (ensemble)
reinvent                   1 x 1 node + 8 GPUs (generative model)
========================  =================================================

The counts are reverse-engineered from the paper's aggregate figures:
~550 tasks at 256 nodes / ~1800 at 1024 nodes over the campaign, task
sizes spanning 1-7,168 cores and up to 1,024 GPUs, and a core-seconds
budget consistent with the reported utilizations (68 %/33 % CPU/GPU at
256 nodes under Flux) and makespans (~22,000 s at 256 nodes) — which
require the campaign to be dominated by the large physics-based
scoring and ensemble-simulation tasks (~2,000 cores per task on
average), exactly as §2 describes for ESMACS and Dock-Min-MMPBSA.

Every task sleeps 180 s.  Dependencies form the learning/sampling
feedback loop: docking of generation *g* waits on REINVENT of *g-1*;
within a generation the stages chain docking -> train -> inference ->
{scoring, ampl} -> esmacs -> reinvent.

Adaptive scheduling (§4.2): when enabled, the scalable stages size
themselves at submission time from the currently-idle fraction of the
pilot, subject to the paper's consistency lower bound of 102 tasks
per 128 nodes across the scalable stages of each generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.description import MODE_EXECUTABLE, TaskDescription
from ..exceptions import WorkloadError
from ..platform.spec import ResourceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pilot import Pilot
    from ..core.session import Session
    from ..core.task import Task
    from ..core.task_manager import TaskManager

#: Reference allocation the per-generation counts are quoted at.
REFERENCE_NODES = 256
#: Paper: dummy tasks sleep for 180 s.
TASK_DURATION = 180.0
#: Paper: consistency lower bound on scalable task counts.
MIN_TASKS_PER_128_NODES = 102


@dataclass(frozen=True)
class StageTemplate:
    """One IMPECCABLE workflow stage (per generation)."""

    name: str
    count: int                  #: tasks per generation at 256 nodes
    cores: int
    gpus: int = 0
    exclusive: bool = False     #: whole-node co-scheduling (MPI)
    scalable: bool = True       #: count scales with allocation size
    #: Count scaling exponent: count * (nodes/256) ** exponent.  The
    #: widest MPI stages grow sublinearly (the ligand batches get
    #: bigger, not more numerous).
    scale_exponent: float = 1.0
    depends_on: Tuple[str, ...] = ()
    #: Depends on stages of an *earlier* generation (feedback loop).
    depends_on_prev: Tuple[str, ...] = ()
    #: How many generations back the feedback reaches.  A lag of 2
    #: lets adjacent generations overlap (asynchronous execution of
    #: multiple workflows, §4.2) while preserving the learning loop.
    prev_lag: int = 1


#: The six IMPECCABLE workflows (scoring is split into its two
#: components, Dock-Min-MMPBSA and AMPL, as in §2 item 4).
IMPECCABLE_STAGES: Tuple[StageTemplate, ...] = (
    StageTemplate("docking", count=10, cores=56, scalable=True,
                  depends_on_prev=("reinvent",), prev_lag=2),
    StageTemplate("sst_train", count=1, cores=224, gpus=32, scalable=False,
                  depends_on=("docking",)),
    StageTemplate("sst_inference", count=6, cores=56, gpus=8, scalable=True,
                  depends_on=("sst_train",)),
    StageTemplate("scoring_mmpbsa", count=8, cores=7168, gpus=512,
                  exclusive=True, scalable=True, scale_exponent=0.5,
                  depends_on=("sst_inference",)),
    StageTemplate("ampl", count=4, cores=56, gpus=8, scalable=False,
                  depends_on=("sst_inference",)),
    StageTemplate("esmacs", count=10, cores=1400, gpus=200, scalable=True,
                  scale_exponent=0.8, depends_on=("scoring_mmpbsa", "ampl")),
    StageTemplate("reinvent", count=1, cores=56, gpus=8, scalable=False,
                  depends_on=("esmacs",)),
)


def stage_task_count(stage: StageTemplate, n_nodes: int,
                     free_fraction: Optional[float] = None) -> int:
    """Task count for one stage instance.

    Scalable stages grow linearly with the allocation; with adaptive
    scheduling (``free_fraction`` given) they additionally expand by
    up to 25 % to soak idle resources.
    """
    if not stage.scalable:
        return stage.count
    scale = (n_nodes / REFERENCE_NODES) ** stage.scale_exponent
    count = max(1, round(stage.count * scale))
    if free_fraction is not None:
        count = max(count, round(count * (1.0 + 0.25 * free_fraction)))
    return count


def min_scalable_tasks(n_nodes: int) -> int:
    """The paper's lower bound: 102 tasks per 128 nodes."""
    return MIN_TASKS_PER_128_NODES * max(1, n_nodes // 128)


def make_stage_tasks(stage: StageTemplate, count: int, generation: int,
                     max_cores: Optional[int] = None,
                     max_gpus: Optional[int] = None) -> List[TaskDescription]:
    """Materialize one stage instance as task descriptions.

    ``max_cores`` / ``max_gpus`` clamp the per-task width to the
    hosting allocation (the campaign shrinks its widest MPI jobs on
    machines smaller than the stage's native footprint, as the real
    campaign does when deployed below 128 nodes).
    """
    if count < 0:
        raise WorkloadError(f"negative count for stage {stage.name}")
    cores = stage.cores if max_cores is None else min(stage.cores, max_cores)
    gpus = stage.gpus if max_gpus is None else min(stage.gpus, max_gpus)
    spec = ResourceSpec(cores=cores, gpus=gpus,
                        exclusive_nodes=stage.exclusive)
    return [
        TaskDescription(
            executable=stage.name, mode=MODE_EXECUTABLE, resources=spec,
            duration=TASK_DURATION,
            tags={"workflow": stage.name, "generation": generation},
        )
        for _ in range(count)
    ]


def campaign_plan(n_nodes: int, generations: int = 12
                  ) -> List[Dict[str, List[TaskDescription]]]:
    """Static (non-adaptive) campaign: stage -> tasks per generation."""
    if generations < 1:
        raise WorkloadError(f"generations must be >= 1, got {generations}")
    plan = []
    for g in range(generations):
        stages = {}
        for stage in IMPECCABLE_STAGES:
            count = stage_task_count(stage, n_nodes)
            stages[stage.name] = make_stage_tasks(stage, count, g)
        plan.append(stages)
    return plan


@dataclass
class CampaignResult:
    """Everything the Fig. 8 analysis needs from one campaign run."""

    tasks: List["Task"] = field(default_factory=list)
    stage_spans: Dict[Tuple[int, str], Tuple[float, float]] = field(
        default_factory=dict)

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)


class CampaignRunner:
    """Executes the campaign on a pilot, honoring stage dependencies.

    Each (generation, stage) runs as a simulation process: it waits for
    its dependencies, sizes itself (adaptively, if enabled), submits
    its tasks, and signals completion when all of them finish.
    """

    def __init__(self, session: "Session", tmgr: "TaskManager",
                 pilot: "Pilot", n_nodes: int, generations: int = 12,
                 adaptive: bool = True,
                 stages: Sequence[StageTemplate] = IMPECCABLE_STAGES) -> None:
        self.session = session
        self.env = session.env
        self.tmgr = tmgr
        self.pilot = pilot
        self.n_nodes = n_nodes
        self.generations = generations
        self.adaptive = adaptive
        self.stages = tuple(stages)
        self.result = CampaignResult()
        self._done_events: Dict[Tuple[int, str], object] = {}

    def start(self):
        """Kick off all stage processes; returns the completion event."""
        for g in range(self.generations):
            for stage in self.stages:
                self._done_events[(g, stage.name)] = self.env.event()
        procs = [
            self.env.process(self._run_stage(g, stage))
            for g in range(self.generations)
            for stage in self.stages
        ]
        return self.env.all_of(procs)

    # -- internals ----------------------------------------------------------

    def _free_fraction(self) -> float:
        alloc = self.pilot.allocation
        if alloc is None or alloc.total_cores == 0:
            return 0.0
        return alloc.free_cores / alloc.total_cores

    def _deps(self, g: int, stage: StageTemplate) -> List[object]:
        deps = [self._done_events[(g, name)] for name in stage.depends_on]
        prev = g - stage.prev_lag
        if prev >= 0:
            deps.extend(self._done_events[(prev, name)]
                        for name in stage.depends_on_prev)
        return deps

    def _run_stage(self, g: int, stage: StageTemplate):
        done = self._done_events[(g, stage.name)]
        deps = self._deps(g, stage)
        if deps:
            yield self.env.all_of(deps)
        yield self.pilot.active_event()
        free = self._free_fraction() if self.adaptive else None
        count = stage_task_count(stage, self.n_nodes, free_fraction=free)
        t_begin = self.env.now
        # Clamp task width to the widest single backend instance: a
        # task cannot span Flux/Dragon partition boundaries.
        max_cores = max_gpus = None
        if self.pilot.agent is not None:
            max_cores, max_gpus = self.pilot.agent.max_task_capacity()
        tasks = self.tmgr.submit_tasks(make_stage_tasks(
            stage, count, g, max_cores=max_cores, max_gpus=max_gpus))
        self.result.tasks.extend(tasks)
        yield self.tmgr.wait_tasks(tasks)
        self.result.stage_spans[(g, stage.name)] = (t_begin, self.env.now)
        done.succeed()
