"""Canonical workload patterns from the paper's workload taxonomy (§2).

The paper classifies IMPECCABLE-style work into coupling classes:
loosely coupled high-throughput bags, tightly coupled multi-node
ensembles, and data-coupled pipelines with feedback.  These builders
produce each class as ready-to-submit task lists or
:class:`~repro.workloads.dag.Workflow` DAGs, parameterized the way
the paper's §4 experiments parameterize theirs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.description import (
    MODE_EXECUTABLE,
    MODE_FUNCTION,
    TaskDescription,
)
from ..exceptions import WorkloadError
from ..platform.spec import ResourceSpec
from .dag import Workflow


def bag_of_tasks(n_tasks: int, duration: float = 180.0, cores: int = 1,
                 duration_cv: float = 0.0, seed: int = 0,
                 mode: str = MODE_EXECUTABLE) -> List[TaskDescription]:
    """Loosely coupled high-throughput bag (docking / inference class).

    ``duration_cv`` > 0 draws lognormal durations around the mean —
    the paper's synthetic workloads use fixed durations; real bags
    are skewed.
    """
    if n_tasks < 0:
        raise WorkloadError(f"negative task count {n_tasks}")
    if duration_cv < 0:
        raise WorkloadError(f"negative duration_cv {duration_cv}")
    if duration_cv == 0:
        durations = [duration] * n_tasks
    else:
        rng = np.random.default_rng(seed)
        sigma2 = np.log(1 + duration_cv ** 2)
        mu = np.log(max(duration, 1e-12)) - sigma2 / 2
        durations = rng.lognormal(mu, np.sqrt(sigma2), size=n_tasks).tolist()
    return [
        TaskDescription(executable="bag-member", mode=mode,
                        resources=ResourceSpec(cores=cores),
                        duration=float(d), tags={"pattern": "bag"})
        for d in durations
    ]


def ensemble(n_members: int, nodes_per_member: int, cores_per_node: int,
             duration: float, gpus_per_node: int = 0,
             exclusive: bool = True) -> List[TaskDescription]:
    """Tightly coupled ensemble (ESMACS class): co-scheduled multi-node
    members."""
    if n_members < 1 or nodes_per_member < 1:
        raise WorkloadError("ensemble needs >= 1 member and node")
    spec = ResourceSpec(
        cores=nodes_per_member * cores_per_node,
        gpus=nodes_per_member * gpus_per_node,
        exclusive_nodes=exclusive)
    return [
        TaskDescription(executable="ensemble-member", mode=MODE_EXECUTABLE,
                        resources=spec, duration=duration,
                        tags={"pattern": "ensemble", "member": i})
        for i in range(n_members)
    ]


def pipeline_with_feedback(generations: int, fan_out: int,
                           sim_duration: float = 180.0,
                           learn_duration: float = 300.0,
                           gpus_for_learning: int = 8) -> Workflow:
    """Data-coupled learning loop (REINVENT/SST class) as a DAG.

    Each generation: ``fan_out`` sampling functions feed one GPU
    learning task; the next generation's samplers depend on it.
    """
    if generations < 1 or fan_out < 1:
        raise WorkloadError("need >= 1 generation and sampler")
    wf = Workflow("learning-loop")
    prev_learn: Optional[str] = None
    for g in range(generations):
        sampler_names = []
        for i in range(fan_out):
            name = f"g{g}.sample{i}"
            deps = (prev_learn,) if prev_learn else ()
            wf.add(name, TaskDescription(
                executable="sampler", mode=MODE_FUNCTION,
                duration=sim_duration,
                tags={"pattern": "feedback", "generation": g}),
                depends_on=deps)
            sampler_names.append(name)
        learn = f"g{g}.learn"
        wf.add(learn, TaskDescription(
            executable="learner", mode=MODE_EXECUTABLE,
            resources=ResourceSpec(cores=56, gpus=gpus_for_learning),
            duration=learn_duration,
            tags={"pattern": "feedback", "generation": g}),
            depends_on=tuple(sampler_names))
        prev_learn = learn
    return wf


def strong_scaling_sweep(base_cores: int, steps: int,
                         total_work: float) -> List[TaskDescription]:
    """A strong-scaling series: the same total work split over
    doublings of core count (duration halves as cores double)."""
    if steps < 1 or base_cores < 1 or total_work <= 0:
        raise WorkloadError("invalid strong-scaling parameters")
    out = []
    for step in range(steps):
        cores = base_cores * (2 ** step)
        out.append(TaskDescription(
            executable=f"scaling-{cores}c", mode=MODE_EXECUTABLE,
            resources=ResourceSpec(cores=cores),
            duration=total_work / cores,
            tags={"pattern": "strong-scaling", "step": step}))
    return out
