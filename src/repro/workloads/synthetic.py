"""Synthetic workloads: null, dummy(sleep) and mixed task sets.

The paper's three workload classes (§4):

* **null** — empty tasks that return immediately, stressing only the
  middleware stack (throughput measurements);
* **dummy** — fixed-duration sleep tasks that keep the execution
  queues saturated (utilization measurements);
* **mixed** — executables + Python functions in one workload (the
  hybrid flux+dragon experiment).

Task counts follow Table 1: ``n_nodes * cores_per_node * waves`` with
``waves = 4`` (four complete core-filling waves).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.description import (
    MODE_EXECUTABLE,
    MODE_FUNCTION,
    TaskDescription,
)
from ..platform.spec import ResourceSpec

#: Table 1: every synthetic experiment sizes the workload as 4 waves
#: of single-core tasks over the allocation.
DEFAULT_WAVES = 4


def task_count(n_nodes: int, cores_per_node: int,
               waves: int = DEFAULT_WAVES) -> int:
    """Table-1 task count: ``n_nodes * cpn * waves``."""
    if n_nodes < 1 or cores_per_node < 1 or waves < 1:
        raise ValueError("n_nodes, cores_per_node and waves must be >= 1")
    return n_nodes * cores_per_node * waves


def null_workload(n_tasks: int, mode: str = MODE_EXECUTABLE,
                  cores: int = 1, backend: Optional[str] = None
                  ) -> List[TaskDescription]:
    """``n_tasks`` empty tasks (zero duration)."""
    return dummy_workload(n_tasks, duration=0.0, mode=mode, cores=cores,
                          backend=backend)


def dummy_workload(n_tasks: int, duration: float = 180.0,
                   mode: str = MODE_EXECUTABLE, cores: int = 1,
                   gpus: int = 0, backend: Optional[str] = None
                   ) -> List[TaskDescription]:
    """``n_tasks`` sleep tasks of fixed ``duration``."""
    if n_tasks < 0:
        raise ValueError(f"negative task count {n_tasks}")
    spec = ResourceSpec(cores=cores, gpus=gpus)
    label = "null" if duration == 0 else f"sleep-{duration:g}"
    # TaskDescription is frozen, so the identical description can be
    # shared by every task: one construction + validation instead of
    # tens of thousands for the large synthetic workloads.
    description = TaskDescription(executable=label, mode=mode,
                                  resources=spec, duration=duration,
                                  backend=backend)
    return [description] * n_tasks


def mixed_workload(n_exec: int, n_func: int, duration: float = 360.0,
                   interleave: bool = True) -> List[TaskDescription]:
    """Executable + function tasks for the hybrid experiment.

    ``interleave`` alternates the two types so both backends receive
    work from the start (rather than one backend idling through the
    first half of the submission stream).
    """
    execs = dummy_workload(n_exec, duration=duration, mode=MODE_EXECUTABLE)
    funcs = dummy_workload(n_func, duration=duration, mode=MODE_FUNCTION)
    if not interleave:
        return execs + funcs
    out: List[TaskDescription] = []
    for pair in zip(execs, funcs):
        out.extend(pair)
    longer = execs if n_exec > n_func else funcs
    out.extend(longer[min(n_exec, n_func):])
    return out
