"""Deterministic canonical merge of shard-local trace/metric streams.

A sharded run records trace events in several places at once: the
coordinator's profiler (task lifecycle, agent, srun, faults) and one
profiler per shard (Flux backend lifecycle, shard-side fault
injections).  The merged profile orders everything by the canonical
key ``(sim time, entity, per-entity sequence)``:

* *time* first — the profile reads as a timeline;
* *entity* breaks time ties between independent entities in a way
  that no scheduling accident can perturb;
* the *per-entity sequence number* (the running count of that
  entity's events, in the order its owning stream recorded them)
  breaks same-time ties within one entity while preserving causal
  record order.

Every entity is recorded by exactly one stream (task uids, agent,
nodes and srun by the coordinator; each Flux instance by its owning
shard), so per-entity sequence numbers are well-defined, and — the
point of the whole exercise — the key is a pure function of the
simulation, never of how instances were grouped into shards or
whether a shard ran in-process or across a pipe.  Two sharded runs
with the same seed produce byte-identical merged profiles for *any*
worker count.

The merger has two modes mirroring the profiler's: in-memory (keyed
stable sort, re-run cheaply at every ``Session.run`` end) and
spill-to-disk (key-annotated sorted runs + a streaming k-way
``heapq.merge``, keeping memory bounded by one chunk).
"""

from __future__ import annotations

import json
from heapq import merge as heap_merge
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple

from ..analytics.export import _sanitize
from ..analytics.profiler import Profiler

#: Record lines open with the entity field (``sort_keys`` order).
_ENTITY_PREFIX = '{"entity": "'


def canonical_sort_key(event, seq: int) -> Tuple[float, str, int]:
    """The merge key for one trace event with per-entity sequence ``seq``."""
    return (event.time, event.entity, seq)


def format_event_line(ev) -> str:
    """One event in the exact wire format of ``write_event_lines``."""
    record = {
        "time": ev.time,
        "entity": ev.entity,
        "name": ev.name,
        "meta": ev.meta,
    }
    try:
        return json.dumps(record, sort_keys=True, allow_nan=False) + "\n"
    except (ValueError, TypeError):
        return json.dumps(_sanitize(record), sort_keys=True,
                          allow_nan=False) + "\n"


def _line_key(line: str) -> Tuple[float, str]:
    """(time, entity) of a record line, without a full JSON decode.

    ``sort_keys`` serialization puts ``entity`` first and ``time``
    last, so both are extractable by string slicing; ``float(repr(x))``
    round-trips exactly, making sliced keys bit-equal to in-memory
    ones.  Any structural surprise (escaped entity, exotic meta) falls
    back to ``json.loads``.
    """
    try:
        if line.startswith(_ENTITY_PREFIX):
            end = line.index('"', 12)
            entity = line[12:end]
            if "\\" not in entity:
                idx = line.rindex('"time": ')
                return float(line[idx + 8:line.rindex("}")]), entity
    except ValueError:
        pass
    record = json.loads(line)
    return float(record["time"]), str(record["entity"])


class ProfileMerger:
    """Folds shard trace events into a session profiler, canonically.

    One merger lives for the whole session: per-entity sequence
    counters persist across ``merge`` calls, so a profile merged after
    several ``Session.run`` invocations sorts exactly as if it had
    been merged once at the end.
    """

    def __init__(self, profiler: Profiler) -> None:
        self.profiler = profiler
        self._seq: Dict[str, int] = {}
        # In-memory mode: the keyed, sorted view of profiler._events.
        self._keyed: List[Tuple[float, str, int, Any]] = []
        # Spill mode: key-annotated sorted run files (kept across
        # merges — re-merging streams from runs, never from the merged
        # chunks, so repeated merges stay correct).
        self._runs: List[Path] = []
        self._generation = 0
        self._n_merged_chunks = 0

    # -- keying ------------------------------------------------------------

    def _key_events(self, events) -> List[Tuple[float, str, int, Any]]:
        seqs = self._seq
        out = []
        for ev in events:
            entity = ev[1]
            s = seqs.get(entity, 0)
            seqs[entity] = s + 1
            out.append((ev[0], entity, s, ev))
        return out

    # -- merge -------------------------------------------------------------

    def merge(self, shard_events: List[Any]) -> None:
        """Merge ``shard_events`` plus any coordinator events recorded
        since the last call into canonical order, in place."""
        if self.profiler.spilling:
            self._merge_spilled(shard_events)
        else:
            self._merge_memory(shard_events)

    def _merge_memory(self, shard_events: List[Any]) -> None:
        prof = self.profiler
        new = prof._events[len(self._keyed):]
        if not new and not shard_events:
            return
        keyed = self._keyed
        keyed.extend(self._key_events(new))
        keyed.extend(self._key_events(shard_events))
        # Mostly-sorted after the first merge; timsort makes the
        # re-sort nearly linear.  (time, entity, seq) is unique, so
        # the comparison never reaches the event itself.
        keyed.sort()
        prof._events[:] = [entry[3] for entry in keyed]
        self._reset_indexes(prof)

    def _merge_spilled(self, shard_events: List[Any]) -> None:
        prof = self.profiler
        prof.flush()  # push the in-memory tail into a chunk
        new_chunks = prof._chunks[self._n_merged_chunks:]
        if not new_chunks and not shard_events:
            return
        # 1. Key-annotate each new coordinator chunk into one sorted
        #    run (memory stays bounded by a single chunk).  Chunks are
        #    streamed through the sequence counters in record order,
        #    which reproduces exactly the seqs the in-memory path
        #    would have assigned.
        seqs = self._seq
        for chunk in new_chunks:
            entries = []
            with chunk.open("r", encoding="utf-8") as src:
                for line in src:
                    if line == "\n":
                        continue
                    when, entity = _line_key(line)
                    s = seqs.get(entity, 0)
                    seqs[entity] = s + 1
                    entries.append((when, entity, s, line))
            self._runs.append(self._write_run(entries))
        if shard_events:
            entries = [(when, entity, s, format_event_line(ev))
                       for when, entity, s, ev
                       in self._key_events(shard_events)]
            self._runs.append(self._write_run(entries))
        # 2. Streaming k-way merge of every run into fresh merged
        #    chunks that replace the profiler's chunk list.
        cap = prof._spill_threshold
        if not cap < float("inf"):  # pragma: no cover - spill implies finite
            cap = 200_000
        merged: List[Path] = []
        out = None
        n = total = 0
        try:
            for entry in heap_merge(*map(_read_run, self._runs)):
                if out is None or n >= cap:
                    if out is not None:
                        out.close()
                    path = (prof._spill_dir /
                            f"merged-{self._generation:04d}"
                            f"-{len(merged):06d}.jsonl")
                    merged.append(path)
                    out = path.open("w", encoding="utf-8")
                    n = 0
                out.write(entry[3])
                n += 1
                total += 1
        finally:
            if out is not None:
                out.close()
        self._generation += 1
        prof._chunks = merged
        prof._n_spilled = total
        self._n_merged_chunks = len(merged)
        self._reset_indexes(prof)

    def _write_run(self, entries: List[Tuple[float, str, int, str]]) -> Path:
        entries.sort()
        prof = self.profiler
        prof._spill_dir.mkdir(parents=True, exist_ok=True)
        path = prof._spill_dir / f"run-{len(self._runs):06d}.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            for when, entity, s, line in entries:
                fh.write(json.dumps([when, entity, s, line]))
                fh.write("\n")
        return path

    @staticmethod
    def _reset_indexes(prof: Profiler) -> None:
        prof._by_name.clear()
        prof._by_entity.clear()
        prof._indexed_name = 0
        prof._indexed_entity = 0


def _read_run(path: Path) -> Iterator[Tuple[float, str, int, str]]:
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            when, entity, s, record = json.loads(line)
            yield (when, entity, s, record)


# -- metrics -----------------------------------------------------------------

def dump_metrics(registry) -> List[dict]:
    """Serialize a registry's full state for the pipe (see
    :func:`load_metrics`)."""
    out = []
    for fam in registry.families():
        children = []
        for key, child in fam.items():
            if fam.kind == "counter":
                state: List[Any] = [child.value]
            elif fam.kind == "gauge":
                state = [child.value, child.max, child.min, child._touched]
            else:
                state = [list(child.bounds), list(child.counts),
                         child.sum, child.count]
            children.append([list(key), state])
        bounds = fam._hist_bounds
        out.append({"name": fam.name, "kind": fam.kind, "help": fam.help,
                    "labels": list(fam.label_names),
                    "buckets": list(bounds) if bounds is not None else None,
                    "children": children})
    return out


def load_metrics(registry, dumps: List[dict]) -> None:
    """Replace-merge shard metric series into a coordinator registry.

    Shard-side series (per-instance Flux gauges/counters) have exactly
    one writer — their shard — so merging is plain state replacement,
    which is also idempotent across repeated end-of-run syncs.  Shard
    workers deliberately do not run a kernel instrument, so the
    ``repro_kernel_*`` families never collide here.
    """
    for dump in dumps:
        fam = registry._family(dump["name"], dump["kind"], dump["help"],
                               tuple(dump["labels"]),
                               buckets=dump["buckets"])
        for key, state in dump["children"]:
            child = fam.labels(*key)
            if fam.kind == "counter":
                child.value = state[0]
            elif fam.kind == "gauge":
                child.value, child.max, child.min, child._touched = state
            else:
                child.bounds = tuple(state[0])
                child.counts = list(state[1])
                child.sum = state[2]
                child.count = state[3]
