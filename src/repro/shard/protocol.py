"""Coordinator <-> shard-worker wire protocol.

Everything crossing the process boundary is a flat, picklable value
type defined here: the one-shot :class:`ShardConfig` that tells a
worker which slice of the machine it owns, the timestamped messages
the coordinator buffers during a window and delivers in bulk at the
window boundary, and the :class:`WindowResult` a worker returns after
simulating up to that boundary.

Determinism contract: messages carry *simulated* timestamps and are
re-scheduled inside the worker at exactly those times, so a shard's
event interleaving is independent of when (in wall time) the pipe
delivered them — and identical when no pipe is involved at all (the
inline host used by the digest-equality tests).
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Tuple


class InstanceSpec(NamedTuple):
    """One Flux instance a shard must host."""

    index: int            #: global instance index within the hierarchy
    instance_id: str      #: e.g. ``"agent.0000.flux.003"``
    node_indices: Tuple[int, ...]  #: global node indices of its partition
    policy: str           #: scheduler policy name


class ShardConfig(NamedTuple):
    """Everything a worker needs to rebuild its slice of the machine."""

    shard_index: int
    seed: int
    start_time: float     #: coordinator clock at hierarchy creation
    latencies: Any        #: LatencyModel (frozen dataclass, picklable)
    cluster_name: str
    cores_per_node: int
    gpus_per_node: int
    mem_gb_per_node: float
    instances: Tuple[InstanceSpec, ...]
    lean: bool
    trace: bool
    observe: bool
    faults: Any           #: Optional[FaultSpec] (frozen dataclass)
    #: Live telemetry on: workers piggyback an occupancy/RSS delta on
    #: every window result (defaulted so pickled configs from older
    #: coordinators keep working).
    telemetry: bool = False
    #: Wall-seconds between worker heartbeats on the pipe (0 = none).
    #: Heartbeats are pure liveness signals for the coordinator's
    #: watchdog — they carry no simulation state and the sim never
    #: sees them, so traces are identical at any heartbeat rate.
    heartbeat: float = 1.0


# -- coordinator -> worker messages ---------------------------------------
#
# Each carries the simulated time it must take effect at.  ``SpecMsg``
# interns a Jobspec once per (spec, shard); submits then reference it
# by id, so a 500k-task wave ships each distinct spec exactly once.

class SpecMsg(NamedTuple):
    spec_id: int
    spec: Any             #: flux.jobspec.Jobspec (frozen dataclass)


class StartMsg(NamedTuple):
    time: float


class SubmitMsg(NamedTuple):
    time: float
    instance: int         #: global instance index
    spec_id: int
    job_id: str           #: coordinator-mirrored id; worker asserts match


class CancelMsg(NamedTuple):
    time: float
    instance: int
    job_id: str
    reason: str


class CrashMsg(NamedTuple):
    time: float
    instance: int
    reason: str


class RestartMsg(NamedTuple):
    time: float
    instance: int


class ShutdownMsg(NamedTuple):
    time: float
    instance: int


class FailNodeMsg(NamedTuple):
    time: float
    node_index: int


class RecoverNodeMsg(NamedTuple):
    time: float
    node_index: int


# -- worker -> coordinator results ----------------------------------------

class JobReport(NamedTuple):
    """One job event (start/finish/exception) captured inside a shard.

    ``seq`` is the per-instance capture sequence number; the
    coordinator applies reports sorted by ``(time, instance, seq)``,
    which is a pure function of the simulation (never of the shard
    grouping), so retry and routing decisions downstream of a report
    are grouping-invariant too.
    """

    time: float           #: delivery time of the event inside the shard
    instance: int         #: global instance index
    seq: int
    job_id: str
    name: str             #: flux.events.EV_* constant
    meta: Dict[str, Any]


class StateReport(NamedTuple):
    """An instance's lifecycle state observed at the window boundary."""

    instance: int
    state: str


class WindowResult(NamedTuple):
    """What a worker hands back after simulating one window."""

    next_time: float              #: shard-local ``env.peek()`` (inf = idle)
    reports: List[JobReport]
    states: List[StateReport]
    events: List[Any]             #: drained shard-local TraceEvents
    #: Closed worker-side span trees (``Span.to_dict`` form), drained
    #: each window; the coordinator grafts them into the session
    #: tracer so sharded bundles carry complete spans.
    spans: Tuple[Any, ...] = ()
    #: Occupancy/RSS snapshot for the cluster-wide telemetry view
    #: (``None`` when telemetry is off).
    telemetry: Optional[Dict[str, Any]] = None


class ShardStats(NamedTuple):
    """End-of-run ledger sync (faults, metrics, memory)."""

    fault_injected: Dict[str, int]
    fault_log: List[Tuple[float, str, str]]
    metrics: Optional[List[dict]]  #: raw family dumps, None when observe off
    peak_rss_mb: float


class HeartbeatMsg(NamedTuple):
    """Worker liveness beacon, interleaved with results on the pipe.

    Sent from a daemon thread every ``ShardConfig.heartbeat`` wall
    seconds (under the same send lock as results, so frames never
    interleave).  The coordinator's receive loop consumes them
    silently; a worker whose beats *and* results stall past the hang
    deadline is declared hung by the watchdog.
    """

    wall_time: float      #: sender's ``time.monotonic()``


class ErrorMsg(NamedTuple):
    """A worker-side exception, with its traceback rendered to text."""

    kind: str
    message: str
    traceback: str
