"""The shard coordinator: proxies, hosts, and the window engine.

The coordinator side of partition-sharded execution.  The agent keeps
running unchanged on the session kernel; its Flux hierarchy is
replaced by :class:`ProxyHierarchy` — lightweight
:class:`InstanceProxy` mirrors whose routing-relevant state
(lifecycle, usable capacity, outstanding counts) tracks the real
instances living in shard workers.  :class:`ShardEngine` drives the
conservative window protocol:

1. run the coordinator kernel to the window boundary, buffering every
   instance-bound message (submit, cancel, crash, ...) with its exact
   simulated timestamp;
2. hand each shard its message batch and the boundary; shards deliver
   the messages at their timestamps and simulate to the boundary;
3. apply the returned job reports at the boundary in canonical
   ``(time, instance, seq)`` order — a pure function of the
   simulation, never of the shard grouping.

The boundary advances by the lookahead window past the earliest
pending event on any kernel, so idle stretches are skipped in one hop
and busy stretches are windowed finely enough that report latency is
bounded by the window.

Hosts come in two flavours with one contract: :class:`ProcessHost`
(a worker process over a pipe) and :class:`InlineHost` (the same
:class:`~repro.shard.worker.ShardRunner` called directly).  The
digest-equality tests run both and compare bytes.
"""

from __future__ import annotations

import atexit
import os
import time
import weakref
from typing import Any, Dict, List, Optional, Tuple, Union

from ..exceptions import (
    ConfigurationError,
    HostFailureError,
    RuntimeStartupError,
    SimulationError,
)
from ..flux.instance import InstanceState
from ..sim.events import Event
from .merge import ProfileMerger, load_metrics
from .protocol import (
    CancelMsg,
    CrashMsg,
    ErrorMsg,
    HeartbeatMsg,
    InstanceSpec,
    RestartMsg,
    ShardConfig,
    ShutdownMsg,
    SpecMsg,
    StartMsg,
    SubmitMsg,
)

__all__ = ["InstanceProxy", "ProxyHierarchy", "InlineHost", "ProcessHost",
           "ShardEngine", "resolve_shards"]

_INF = float("inf")


# -- orphan prevention -------------------------------------------------------
#
# Every live worker process is tracked in a weak set; one atexit hook
# reaps whatever is still alive when the interpreter exits.  This is
# the backstop for paths that never reach ``ProcessHost.close`` — a
# test runner (pytest-xdist included) tearing down mid-run, an
# exception unwinding past the engine, a ``--parallel`` pool worker
# dying with shard hosts open — so orphaned shard workers cannot
# outlive the interpreter that spawned them.

_LIVE_WORKERS: "weakref.WeakSet" = weakref.WeakSet()
_REAPER_ARMED = False


def _reap_workers() -> None:  # pragma: no cover - interpreter teardown
    procs = [p for p in list(_LIVE_WORKERS) if p.is_alive()]
    for proc in procs:
        try:
            proc.terminate()
        except Exception:
            pass
    deadline = time.monotonic() + 2.0
    for proc in procs:
        try:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(1.0)
        except Exception:
            pass


def _track_worker(proc) -> None:
    global _REAPER_ARMED
    if not _REAPER_ARMED:
        atexit.register(_reap_workers)
        _REAPER_ARMED = True
    _LIVE_WORKERS.add(proc)


class _WorkerLost(Exception):
    """Internal watchdog signal: a worker crashed (dead pid / EOF) or
    hung (no heartbeat or result past the deadline).  Either recovered
    by :meth:`ProcessHost.recover` or surfaced as
    :class:`~repro.exceptions.HostFailureError`."""

    def __init__(self, kind: str, detail: str) -> None:
        super().__init__(detail)
        self.kind = kind  #: "crash" | "hang"
        self.detail = detail


def resolve_shards(shards: Union[int, str, None] = None) -> int:
    """Turn a ``--shards`` style argument into a shard count.

    ``None`` means *sharding off* (resolves to 1, the sequential
    path); ``0`` and ``"auto"`` mean *one shard per core*; an integer
    requests exactly that many shards.  The engine later clamps to the
    instance count (more shards than instances is pure overhead).
    """
    if shards is None:
        return 1
    if shards == 0 or shards == "auto":
        return os.cpu_count() or 1
    try:
        resolved = int(shards)
    except (TypeError, ValueError):
        raise ConfigurationError(f"bad shard count {shards!r}")
    if resolved < 0:
        raise ConfigurationError(f"negative shard count {shards}")
    if resolved == 0:
        return os.cpu_count() or 1
    return resolved


class ShardWorkerError(SimulationError):
    """A shard worker died; carries the worker-side traceback."""

    def __init__(self, err: ErrorMsg) -> None:
        super().__init__(
            f"shard worker failed: {err.kind}: {err.message}\n"
            f"--- worker traceback ---\n{err.traceback}")


class InstanceProxy:
    """Coordinator-side mirror of one shard-hosted Flux instance.

    Holds exactly the state the agent's routing and fault paths read
    synchronously: lifecycle state, submitted/completed/failed
    counters (completion counters go stale by at most one window — the
    documented fidelity cost), and the partition allocation over the
    coordinator's *real* node objects, so node failures update usable
    capacity for routing exactly as they do on the sequential path.

    Job ids are mirrored locally (same ``<instance>.job.NNNNNN``
    scheme as :class:`~repro.ids.IdRegistry`) and asserted against the
    worker's, so the coordinator can key reports without a round-trip.
    """

    __slots__ = ("engine", "host", "index", "instance_id", "allocation",
                 "state", "n_submitted", "n_completed", "n_failed",
                 "_job_count", "_restart_event")

    def __init__(self, engine: "ShardEngine", host: Any, index: int,
                 instance_id: str, allocation) -> None:
        self.engine = engine
        self.host = host
        self.index = index
        self.instance_id = instance_id
        self.allocation = allocation
        self.state = InstanceState.INIT
        self.n_submitted = 0
        self.n_completed = 0
        self.n_failed = 0
        self._job_count = 0
        self._restart_event: Optional[Event] = None

    @property
    def is_ready(self) -> bool:
        return self.state == InstanceState.READY

    @property
    def outstanding(self) -> int:
        return self.n_submitted - self.n_completed - self.n_failed

    def submit(self, spec) -> str:
        """Mirror of ``FluxInstance.submit``: same state check, same
        synchronous spec validation, same job-id sequence — then the
        submit itself ships to the owning shard.  Returns the job id.
        """
        if self.state != InstanceState.READY:
            raise RuntimeStartupError(
                f"{self.instance_id}: submit in state {self.state}")
        spec.validate_against(self.allocation.usable_cores,
                              self.allocation.usable_gpus)
        job_id = f"{self.instance_id}.job.{self._job_count:06d}"
        self._job_count += 1
        self.n_submitted += 1
        engine = self.engine
        engine.post(self.host, SubmitMsg(
            engine.env._now, self.index,
            engine.intern_spec(self.host, spec), job_id))
        return job_id

    def cancel(self, job_id: str, reason: str = "canceled") -> bool:
        engine = self.engine
        engine.post(self.host, CancelMsg(engine.env._now, self.index,
                                         job_id, reason))
        return True

    def crash(self, reason: str = "broker died") -> None:
        if self.state in (InstanceState.STOPPED, InstanceState.FAILED):
            return
        self.state = InstanceState.FAILED
        engine = self.engine
        engine.post(self.host, CrashMsg(engine.env._now, self.index, reason))

    def restart(self):
        """Generator: restart the crashed instance; returns once the
        shard reports it READY (quantized to a window boundary)."""
        if self.state != InstanceState.FAILED:
            raise RuntimeStartupError(
                f"{self.instance_id}: restart() called in state {self.state}")
        self.state = InstanceState.STARTING
        engine = self.engine
        engine.post(self.host, RestartMsg(engine.env._now, self.index))
        self._restart_event = engine.env.event()
        yield self._restart_event

    def shutdown(self) -> None:
        if self.state in (InstanceState.STOPPED, InstanceState.FAILED):
            return
        self.state = InstanceState.STOPPED
        engine = self.engine
        engine.post(self.host, ShutdownMsg(engine.env._now, self.index))


class ProxyHierarchy:
    """Drop-in for :class:`~repro.flux.hierarchy.FluxHierarchy` whose
    instances are :class:`InstanceProxy` mirrors.

    ``least_loaded`` replicates the sequential implementation line for
    line (same capacity filter, same outstanding counts, same
    round-robin tie-break), so given the same observed state it picks
    the same instance.
    """

    def __init__(self, engine: "ShardEngine", name: str,
                 proxies: List[InstanceProxy]) -> None:
        self.engine = engine
        self.name = name
        self.instances = proxies
        self._rr = 0
        self._start_event: Optional[Event] = None

    @property
    def n_instances(self) -> int:
        return len(self.instances)

    @property
    def all_ready(self) -> bool:
        return all(inst.is_ready for inst in self.instances)

    def start_all(self):
        """Generator: tell every shard to bootstrap its instances
        concurrently; returns once all shards report READY."""
        engine = self.engine
        now = engine.env._now
        for host in dict.fromkeys(p.host for p in self.instances):
            engine.post(host, StartMsg(now))
        self._start_event = engine.env.event()
        yield self._start_event
        if not self.all_ready:  # pragma: no cover - start cannot fail today
            raise RuntimeStartupError(f"{self.name}: not all instances ready")

    def shutdown_all(self) -> None:
        for inst in self.instances:
            inst.shutdown()

    def least_loaded(self, min_cores: int = 0,
                     min_gpus: int = 0) -> InstanceProxy:
        ready = InstanceState.READY
        low = None
        candidates = []
        for inst in self.instances:
            if inst.state != ready:
                continue
            alloc = inst.allocation
            if alloc._usable_cores < min_cores \
                    or alloc._usable_gpus < min_gpus:
                continue
            outstanding = (inst.n_submitted - inst.n_completed
                           - inst.n_failed)
            if low is None or outstanding < low:
                low = outstanding
                candidates = [inst]
            elif outstanding == low:
                candidates.append(inst)
        if not candidates:
            raise RuntimeStartupError(
                f"{self.name}: no ready instance can host "
                f"{min_cores}c/{min_gpus}g")
        self._rr = (self._rr + 1) % len(candidates)
        return candidates[self._rr]


class InlineHost:
    """A shard executed on the coordinator's own thread.

    Functionally identical to :class:`ProcessHost` — the runner and
    the message protocol are shared — but with no process, no pipe and
    no pickling.  Used by the determinism tests (inline == process is
    the core equality) and as the fallback when processes are
    unavailable.
    """

    def __init__(self, config: ShardConfig) -> None:
        from .worker import ShardRunner

        self.runner = ShardRunner(config)
        self._result = None

    def post_specs(self, specs: List[SpecMsg]) -> None:
        self.runner.post_specs(specs)

    def post(self, boundary: float, msgs: List[Any]) -> None:
        self._result = self.runner.run_window(boundary, msgs)

    def collect(self):
        result, self._result = self._result, None
        return result

    def stats(self):
        return self.runner.stats()

    def close(self) -> None:
        pass


class ProcessHost:
    """A shard worker process driven over a multiprocessing pipe.

    ``post``/``collect`` are split so the engine can post every
    shard's window before collecting any result — that split is where
    the multi-core parallelism comes from.

    The receive path doubles as the watchdog: it consumes heartbeat
    frames, detects a dead pid or EOF ("crash") and a worker whose
    beats and results both stall past the hang deadline ("hang").
    With supervision on (``policy.supervise``), every inbound message
    batch is journaled and a lost worker is respawned *on the same
    host object* — engine bookkeeping is keyed by host identity — and
    deterministically replayed from the journal: the worker's state is
    a pure function of its config and ordered message sequence, so the
    replayed worker is bit-identical to the lost one at the last
    window boundary, and the run's trace is unchanged.  Without
    supervision the journal is empty (zero memory overhead) and a lost
    worker raises :class:`~repro.exceptions.HostFailureError`.
    """

    def __init__(self, config: ShardConfig, policy=None,
                 on_incident=None) -> None:
        if policy is None:
            from ..resilience.supervisor import SupervisorPolicy

            policy = SupervisorPolicy()
        self.config = config
        self.policy = policy
        self.on_incident = on_incident
        #: Inbound-message journal (supervision only): spec batches in
        #: send order, plus every posted ``(boundary, messages)``
        #: window.  Replaying config -> specs -> windows rebuilds the
        #: worker's exact state at the last completed boundary.
        self._journal_specs: List[List[SpecMsg]] = []
        self._journal_windows: List[Tuple[float, List[Any]]] = []
        self._in_flight = False
        self.respawns = 0
        self.proc = None
        self.conn = None
        self._spawn()

    # -- process lifecycle -------------------------------------------------

    def _spawn(self) -> None:
        import multiprocessing

        from .worker import worker_main

        method = os.environ.get("REPRO_SHARD_START_METHOD")
        if method:
            ctx = multiprocessing.get_context(method)
        else:
            try:
                # fork keeps worker startup cheap; the worker rebuilds
                # its whole simulation from the config anyway, so
                # nothing inherited is load-bearing.
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                ctx = multiprocessing.get_context("spawn")
        parent, child = ctx.Pipe()
        self.proc = ctx.Process(target=worker_main, args=(child,),
                                daemon=True)
        self.proc.start()
        child.close()
        self.conn = parent
        _track_worker(self.proc)
        self.conn.send(self.config)
        self._recv()  # ("ready", None) — or an ErrorMsg, re-raised

    def _kill(self) -> None:
        """Force the current worker down (recovery path: it is already
        presumed dead or wedged, so no polite shutdown attempt)."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.proc is not None and self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2)
            if self.proc.is_alive():  # pragma: no cover - wedged hard
                self.proc.kill()
                self.proc.join(timeout=2)

    # -- supervised receive ------------------------------------------------

    def _recv(self):
        """Next non-heartbeat message, with crash/hang detection.

        Polls in short steps instead of blocking so a dead pid is
        noticed promptly; heartbeat frames refresh the hang clock and
        are consumed silently.  Detection is always on — it costs a
        few wakeups per window and turns an indefinite hang on a dead
        pipe into a diagnosable failure — recovery is the part gated
        by ``policy.supervise``.
        """
        conn, proc = self.conn, self.proc
        hang = self.policy.hang_deadline
        step = min(0.25, self.policy.heartbeat_interval)
        last = time.monotonic()
        while True:
            try:
                if conn.poll(step):
                    reply = conn.recv()
                    last = time.monotonic()
                    if isinstance(reply, HeartbeatMsg):
                        continue
                    if isinstance(reply, ErrorMsg):
                        raise ShardWorkerError(reply)
                    return reply
            except (EOFError, BrokenPipeError, OSError):
                raise _WorkerLost(
                    "crash", f"shard {self.config.shard_index}: worker "
                    f"pid {proc.pid} closed the pipe")
            if not proc.is_alive():
                # One last zero-timeout poll: the worker may have
                # written its reply and then exited.
                if conn.poll(0):
                    continue
                raise _WorkerLost(
                    "crash", f"shard {self.config.shard_index}: worker "
                    f"pid {proc.pid} died "
                    f"(exit code {proc.exitcode})")
            if time.monotonic() - last > hang:
                raise _WorkerLost(
                    "hang", f"shard {self.config.shard_index}: worker "
                    f"pid {proc.pid} sent no heartbeat for "
                    f"{hang:.0f}s")

    def _send(self, payload) -> None:
        try:
            self.conn.send(payload)
        except (BrokenPipeError, OSError):
            # Worker death is detected (and possibly recovered) on the
            # receive side; the payload is journaled when supervising.
            pass

    # -- the host contract -------------------------------------------------

    def post_specs(self, specs: List[SpecMsg]) -> None:
        if self.policy.supervise:
            self._journal_specs.append(specs)
        self._send(("specs", specs))

    def post(self, boundary: float, msgs: List[Any]) -> None:
        if self.policy.supervise:
            self._journal_windows.append((boundary, msgs))
        self._in_flight = True
        self._send(("window", boundary, msgs))

    def collect(self):
        try:
            reply = self._recv()
        except _WorkerLost as lost:
            reply = self.recover(lost)
        self._in_flight = False
        return reply

    def stats(self):
        self._send(("stats",))
        try:
            return self._recv()
        except _WorkerLost as lost:
            self.recover(lost)
            self._send(("stats",))
            return self._recv()

    def recover(self, lost: _WorkerLost):
        """Respawn the worker and replay it back to currency.

        Replays the journal in original order (config, spec batches,
        then every window — including the one in flight, if any);
        results of already-applied windows are discarded, and the
        in-flight window's result is returned for normal application.
        Raises :class:`~repro.exceptions.HostFailureError` when
        supervision is off or the respawn budget is exhausted.
        """
        if not self.policy.supervise:
            raise HostFailureError(
                f"{lost.detail} (supervision off; run with supervision "
                "to respawn and replay lost workers)") from lost
        if self.respawns >= self.policy.max_respawns:
            raise HostFailureError(
                f"{lost.detail} (respawn budget of "
                f"{self.policy.max_respawns} exhausted)") from lost
        wall0 = time.monotonic()
        self._kill()
        backoff = self.policy.respawn_backoff * (2 ** self.respawns)
        if backoff > 0:
            time.sleep(backoff)
        self.respawns += 1
        self._spawn()
        for specs in self._journal_specs:
            self._send(("specs", specs))
        result = None
        for boundary, msgs in self._journal_windows:
            self._send(("window", boundary, msgs))
            try:
                result = self._recv()
            except _WorkerLost as again:
                # Died again mid-replay (e.g. a crash hook without a
                # one-shot marker); recurse within the respawn budget.
                return self.recover(again)
        if self.on_incident is not None:
            from ..resilience.supervisor import RecoveryIncident

            n_replayed = len(self._journal_windows)
            self.on_incident(RecoveryIncident(
                shard=self.config.shard_index,
                kind=lost.kind,
                boundary=(self._journal_windows[-1][0]
                          if self._in_flight and self._journal_windows
                          else None),
                windows_replayed=n_replayed,
                recovery_seconds=time.monotonic() - wall0,
                respawn_count=self.respawns))
        # Without an in-flight window the last replayed result was
        # already applied before the loss; the caller must not apply
        # it twice.
        return result if self._in_flight else None

    def close(self) -> None:
        try:
            self.conn.send(("shutdown",))
        except (BrokenPipeError, OSError):  # pragma: no cover - worker died
            pass
        self.proc.join(timeout=10)
        if self.proc.is_alive():  # pragma: no cover - wedged worker
            self.proc.terminate()
            self.proc.join(timeout=5)
            if self.proc.is_alive():
                # terminate() sends SIGTERM, which a worker stuck in
                # uninterruptible state can survive; SIGKILL cannot be
                # ignored.
                self.proc.kill()
                self.proc.join(timeout=5)
        self.conn.close()
        _LIVE_WORKERS.discard(self.proc)


class ShardEngine:
    """Owns the shard hosts and runs the session through the window
    protocol.

    Created eagerly by :class:`~repro.core.session.Session` when
    sharding is requested; :meth:`Session.run` then delegates here.
    The engine mirrors ``Environment.run`` semantics exactly —
    ``until`` may be ``None``, a number or an event, with the same
    return values and the same error messages — so harness code cannot
    tell which loop it is on.
    """

    def __init__(self, session, n_shards: int, window: float = 0.25,
                 inline: bool = False, resilience=None) -> None:
        if n_shards < 2:
            raise ConfigurationError(
                f"shard engine needs >= 2 shards, got {n_shards}")
        if not window > 0.0:
            raise ConfigurationError(
                f"shard window must be positive, got {window!r}")
        from ..resilience.supervisor import (
            HostRecoveryReport,
            SupervisorPolicy,
        )

        self.session = session
        self.env = session.env
        self.n_shards = n_shards
        self.window = float(window)
        self.inline = inline
        if resilience is not None:
            self.policy = SupervisorPolicy(
                supervise=resilience.supervise,
                heartbeat_interval=resilience.heartbeat_interval,
                hang_deadline=resilience.hang_deadline,
                max_respawns=resilience.max_respawns,
                respawn_backoff=resilience.respawn_backoff)
        else:
            self.policy = SupervisorPolicy()
        #: Host-side recovery ledger — every crash/hang incident the
        #: supervisor healed, surfaced in results and bundles.
        self.recovery = HostRecoveryReport()
        self.hosts: List[Any] = []
        #: Peak RSS per shard worker [MB], refreshed at every run end.
        self.shard_peak_rss_mb: List[float] = []
        #: Latest per-shard telemetry delta (index = shard index,
        #: ``None`` until that shard reported one); read by the
        #: session sampler for the cluster-wide progress view.
        self.shard_telemetry: List[Optional[dict]] = []
        self._hierarchies: List[ProxyHierarchy] = []
        self._outbox: Dict[Any, List[Any]] = {}
        self._next_times: Dict[Any, float] = {}
        self._host_executor: Dict[Any, Any] = {}
        # Jobspec interning: each distinct spec object crosses to each
        # shard exactly once; the refs list pins the objects so their
        # id() cannot be recycled.
        self._spec_ids: Dict[int, int] = {}
        self._spec_refs: List[Any] = []
        self._spec_sent: Dict[Any, set] = {}
        self._spec_pending: Dict[Any, List[SpecMsg]] = {}
        self._merger = ProfileMerger(session.profiler)
        self._shard_events: List[Any] = []
        # Fault-ledger sync state: per-host last-seen injection counts
        # and merged log length, so repeated end-of-run syncs apply
        # deltas exactly once.
        self._fault_counts: Dict[Any, Dict[str, int]] = {}
        self._fault_log_merged: Dict[Any, int] = {}
        self._closed = False

    # -- topology ----------------------------------------------------------

    def wants(self, n_instances: int) -> bool:
        """Should a hierarchy with ``n_instances`` be sharded at all?"""
        return min(self.n_shards, n_instances) >= 2

    def build_hierarchy(self, executor, allocation, n_instances: int,
                        policy: str, name: str) -> ProxyHierarchy:
        """Partition ``allocation``, spread the instances over shard
        hosts in contiguous blocks, and hand back the proxy hierarchy.

        Instance ids, partition boundaries and scheduler policy match
        the sequential :class:`~repro.flux.hierarchy.FluxHierarchy`
        construction exactly.
        """
        session = self.session
        partitions = allocation.partition(n_instances)
        n_eff = min(self.n_shards, n_instances)
        base, extra = divmod(n_instances, n_eff)
        cluster = session.cluster
        fault_spec = session.faults.spec if session.faults is not None \
            else None
        proxies: List[InstanceProxy] = []
        cursor = 0
        for s in range(n_eff):
            size = base + (1 if s < extra else 0)
            block = range(cursor, cursor + size)
            cursor += size
            config = ShardConfig(
                shard_index=len(self.hosts),
                seed=session.seed,
                start_time=self.env._now,
                latencies=session.latencies,
                cluster_name=cluster.name,
                cores_per_node=cluster.cores_per_node,
                gpus_per_node=cluster.gpus_per_node,
                mem_gb_per_node=cluster.mem_gb_per_node,
                instances=tuple(
                    InstanceSpec(i, f"{name}.{i:03d}",
                                 tuple(node.index
                                       for node in partitions[i].nodes),
                                 policy)
                    for i in block),
                lean=session.lean,
                trace=session.profiler.enabled,
                observe=session.obs.registry is not None,
                faults=fault_spec,
                telemetry=session.telemetry is not None,
                heartbeat=self.policy.heartbeat_interval)
            host = (InlineHost(config) if self.inline
                    else ProcessHost(config, policy=self.policy,
                                     on_incident=self.recovery.record))
            self.hosts.append(host)
            self.shard_telemetry.append(None)
            self._outbox[host] = []
            self._next_times[host] = _INF
            self._host_executor[host] = executor
            self._spec_sent[host] = set()
            self._spec_pending[host] = []
            for i in block:
                proxies.append(InstanceProxy(self, host, i,
                                             f"{name}.{i:03d}",
                                             partitions[i]))
        hierarchy = ProxyHierarchy(self, name, proxies)
        self._hierarchies.append(hierarchy)
        return hierarchy

    # -- outbound messages -------------------------------------------------

    def post(self, host, msg) -> None:
        """Buffer one timestamped message for delivery at the next
        window boundary."""
        self._outbox[host].append(msg)

    def intern_spec(self, host, spec) -> int:
        sid = self._spec_ids.get(id(spec))
        if sid is None:
            sid = len(self._spec_refs)
            self._spec_ids[id(spec)] = sid
            self._spec_refs.append(spec)
        sent = self._spec_sent[host]
        if sid not in sent:
            sent.add(sid)
            self._spec_pending[host].append(SpecMsg(sid, spec))
        return sid

    # -- the window protocol -----------------------------------------------

    def _next_time(self) -> float:
        """Earliest pending event across the coordinator and all shards."""
        t = self.env.peek()
        for host in self.hosts:
            nt = self._next_times[host]
            if nt < t:
                t = nt
        return t

    def _pending_messages(self) -> bool:
        for host in self.hosts:
            if self._outbox[host] or self._spec_pending[host]:
                return True
        return False

    def _round(self, boundary: float, stop: Optional[Event] = None) -> bool:
        """One window: coordinator to ``boundary``, then every shard.

        Returns ``True`` when ``stop`` was processed (the shards are
        then *not* advanced — exactly where ``run(until=stop)`` leaves
        the sequential kernel; the next round catches them up).
        """
        if self.env.run_bounded(boundary, stop):
            return True
        hosts = self.hosts
        if not hosts:
            return False
        for host in hosts:
            pending = self._spec_pending[host]
            if pending:
                self._spec_pending[host] = []
                host.post_specs(pending)
            msgs = self._outbox[host]
            self._outbox[host] = []
            host.post(boundary, msgs)
        results = [host.collect() for host in hosts]
        reports: List[Tuple[Any, Any]] = []
        tracer = self.session.obs.tracer
        for host, result in zip(hosts, results):
            self._next_times[host] = result.next_time
            executor = self._host_executor[host]
            hierarchy = executor.hierarchy
            for sr in result.states:
                self._apply_state(hierarchy.instances[sr.instance], sr.state)
            if result.events:
                self._shard_events.extend(result.events)
            if result.spans and tracer.enabled:
                # Graft worker-recorded spans (instance bootstraps)
                # into the session tracer; the bundle writer orders
                # live roots canonically, so grouping cannot leak
                # into the artifact.
                from ..observability.spans import span_from_dict

                for doc in result.spans:
                    tracer.roots.append(span_from_dict(doc))
            if result.telemetry is not None:
                self.shard_telemetry[result.telemetry["shard"]] = \
                    result.telemetry
            for rep in result.reports:
                reports.append((rep, executor))
        # Canonical application order: a pure function of the
        # simulation (event time, then global instance index, then the
        # instance's own capture sequence) — identical for any shard
        # grouping, so everything downstream of a report (retries,
        # routing, task states) is grouping-invariant too.
        reports.sort(key=lambda entry: (entry[0].time, entry[0].instance,
                                        entry[0].seq))
        for rep, executor in reports:
            executor.apply_report(rep)
        for hierarchy in self._hierarchies:
            ev = hierarchy._start_event
            if ev is not None and hierarchy.all_ready:
                hierarchy._start_event = None
                ev.succeed()
        # The window boundary is the sharded path's telemetry
        # heartbeat (the kernel probe only sees coordinator events);
        # the bus rate-limits on wall time, so fine windows stay cheap.
        telemetry = self.session.telemetry
        if telemetry is not None:
            telemetry.tick()
        return False

    @staticmethod
    def _apply_state(proxy: InstanceProxy, state: str) -> None:
        proxy.state = state
        if state == InstanceState.READY \
                and proxy._restart_event is not None:
            ev = proxy._restart_event
            proxy._restart_event = None
            ev.succeed()

    # -- run ---------------------------------------------------------------

    def run(self, until: Optional[Any] = None) -> Any:
        """Drive the sharded simulation; mirrors ``Environment.run``."""
        if until is None:
            self._run_drain()
            self._finish_run()
            return None
        if isinstance(until, Event):
            stop = until
            self._run_until_event(stop)
            self._finish_run()
            if stop._ok:
                return stop._value
            if isinstance(stop._value, BaseException):
                raise stop._value
            raise SimulationError(f"awaited event failed: {stop._value!r}")
        self._run_horizon(float(until))
        self._finish_run()
        return None

    def _run_drain(self) -> None:
        env = self.env
        window = self.window
        while True:
            next_t = self._next_time()
            if next_t == _INF:
                if not self._pending_messages():
                    return
                base = env._now
            else:
                base = next_t if next_t > env._now else env._now
            self._round(base + window)

    def _run_until_event(self, stop: Event) -> None:
        env = self.env
        window = self.window
        while stop.callbacks is not None:  # i.e. not yet processed
            next_t = self._next_time()
            if next_t == _INF:
                if not self._pending_messages():
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)"
                    )
                base = env._now
            else:
                base = next_t if next_t > env._now else env._now
            if self._round(base + window, stop):
                return

    def _run_horizon(self, horizon: float) -> None:
        env = self.env
        if horizon < env._now:
            raise SimulationError(
                f"cannot run until {horizon} (already at {env._now})"
            )
        window = self.window
        while True:
            next_t = self._next_time()
            if next_t > horizon and not self._pending_messages():
                break
            base = next_t if next_t > env._now else env._now
            if base > horizon:
                base = horizon
            boundary = base + window
            if boundary > horizon:
                boundary = horizon
            self._round(boundary)
        if horizon > env._now:
            env.run(until=horizon)

    # -- end-of-run sync ---------------------------------------------------

    def _finish_run(self) -> None:
        """Merge shard streams into the session's ledgers: trace events
        (canonical sort), fault counters and schedule log (deltas),
        metric series (state replacement), per-shard peak RSS.

        Runs at the end of every successful ``run()`` call, so
        everything the harness reads before ``session.close()`` —
        reports, profiles, bundles — sees the merged state.

        With no hosts (sharding requested but no hierarchy sharded —
        non-Flux launchers, single-instance runs) this is a no-op: the
        coordinator's profile must stay byte-identical to the
        sequential path's, untouched by the canonical re-sort.
        """
        if not self.hosts:
            return
        stats = [host.stats() for host in self.hosts]
        self.shard_peak_rss_mb = [s.peak_rss_mb for s in stats]
        faults = self.session.faults
        registry = self.session.obs.registry
        log_dirty = False
        for host, s in zip(self.hosts, stats):
            if faults is not None:
                last = self._fault_counts.get(host, {})
                for kind, count in sorted(s.fault_injected.items()):
                    delta = count - last.get(kind, 0)
                    if delta > 0:
                        faults.injected[kind] = (
                            faults.injected.get(kind, 0) + delta)
                        if faults._m_injections is not None:
                            faults._m_injections.labels(kind=kind) \
                                .inc(delta)
                self._fault_counts[host] = dict(s.fault_injected)
                merged = self._fault_log_merged.get(host, 0)
                fresh = s.fault_log[merged:]
                if fresh:
                    faults.schedule_log.extend(
                        tuple(entry) for entry in fresh)
                    self._fault_log_merged[host] = len(s.fault_log)
                    log_dirty = True
            if registry is not None and s.metrics is not None:
                load_metrics(registry, s.metrics)
        if log_dirty:
            # Chronological like the sequential model's log; the
            # full-tuple key makes the order grouping-invariant.
            faults.schedule_log.sort()
        events, self._shard_events = self._shard_events, []
        self._merger.merge(events)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for host in self.hosts:
            try:
                host.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
