"""Partition-sharded simulation: multi-core single-run DES.

The paper's Flux hierarchy runs up to 64 *independent* instances on
disjoint node partitions; this package exploits that independence to
run each group of instances — scheduler, lanes, node accounting and
all — in its own worker process on a shard-local kernel, while the RP
Agent (routing, bulk admission, retry/failover) stays on the
coordinator.  Shards synchronize through a conservative lookahead
window and their trace streams are merged by a deterministic canonical
sort, so a sharded run is a pure function of the seed regardless of
worker count or process boundaries.

Enable with ``Session(shards=...)`` or ``run --shards auto``; see
``docs/MODEL.md`` ("Partition-sharded execution") for the protocol and
its fidelity argument.
"""

from .coordinator import ShardEngine, resolve_shards
from .merge import canonical_sort_key
from .protocol import ShardConfig

__all__ = [
    "ShardConfig",
    "ShardEngine",
    "canonical_sort_key",
    "resolve_shards",
]
