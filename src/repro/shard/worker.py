"""The shard worker: a slice of the machine on its own kernel.

A :class:`ShardRunner` rebuilds, from one :class:`ShardConfig`, the
Flux instances of its shard — replica nodes (same global indices and
names), allocations, schedulers, lanes — on a private
:class:`~repro.sim.Environment`, and advances them window by window:
deliver the coordinator's buffered messages at their exact simulated
timestamps, run to the window boundary, hand back job reports, state
changes and drained trace events.

The same class backs both execution modes.  The inline host calls
:meth:`run_window` directly on the coordinator's thread; the process
host drives it through :func:`worker_main` over a pipe.  Nothing in
the runner knows which mode it is in — that symmetry is what makes
"process-parallel equals inline-serial" a structural property rather
than something to test into existence.

RNG: each instance draws through a :class:`~repro.sim.ScopedRng`
prefixed with its globally-unique instance id, so every draw is a
pure function of ``(seed, instance id, stream name)`` — grouping- and
process-invariant by construction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..analytics.events import FAULT_INJECTED
from ..analytics.profiler import Profiler
from ..exceptions import JobspecError, RuntimeStartupError, SimulationError
from ..faults.model import LaunchFault
from ..flux.events import EV_EXCEPTION, EV_FINISH, EV_START
from ..flux.instance import FluxInstance
from ..platform.cluster import Allocation
from ..platform.node import Node
from ..sim import Environment, RngStreams, ScopedRng
from .protocol import (
    CancelMsg,
    CrashMsg,
    FailNodeMsg,
    JobReport,
    RecoverNodeMsg,
    RestartMsg,
    ShardConfig,
    ShardStats,
    ShutdownMsg,
    SpecMsg,
    StartMsg,
    StateReport,
    SubmitMsg,
    WindowResult,
)


class _ShardCluster:
    """Stand-in for the coordinator's Cluster inside a worker.

    Allocations only hold their cluster for re-partitioning and node
    naming; the instances themselves never call back into it, so the
    replica needs nothing but the name.
    """

    def __init__(self, name: str) -> None:
        self.name = name


class _LaunchFaults:
    """Shard-side mirror of ``FaultModel.launch_outcome``.

    One adapter per instance, drawing from that instance's scoped
    ``faults.launch`` stream and logging injections with the instance
    id as both schedule target and trace entity (the coordinator's
    model uses the backend name; inside a shard the instance id keeps
    merge entities unique per stream).  Counters and log entries are
    shipped to the coordinator's FaultModel in the end-of-run stats
    sync.
    """

    def __init__(self, rng: ScopedRng, spec, profiler: Optional[Profiler],
                 env: Environment, instance_id: str,
                 injected: Dict[str, int], log: List) -> None:
        self._rng = rng
        self.spec = spec
        self._profiler = profiler
        self._env = env
        self._instance_id = instance_id
        self._injected = injected
        self._log = log

    def launch_outcome(self, backend: str) -> Optional[LaunchFault]:
        spec = self.spec
        p_fail = spec.p_launch_fail
        p_timeout = spec.p_launch_timeout
        if p_fail <= 0.0 and p_timeout <= 0.0:
            return None
        u = self._rng.uniform("faults.launch", 0.0, 1.0)
        if u < p_fail:
            self._record("launch_fail")
            return LaunchFault("launch_fail", 0.0,
                               f"{backend}: launch failed (injected)")
        if u < p_fail + p_timeout:
            self._record("launch_timeout")
            return LaunchFault("launch_timeout", spec.launch_timeout,
                               f"{backend}: launch timed out (injected)")
        return None

    def _record(self, kind: str) -> None:
        self._injected[kind] = self._injected.get(kind, 0) + 1
        self._log.append((self._env.now, kind, self._instance_id))
        if self._profiler is not None:
            self._profiler.record(self._instance_id, FAULT_INJECTED,
                                  kind=kind)


class ShardRunner:
    """One shard's simulation state and window-protocol endpoint."""

    def __init__(self, config: ShardConfig) -> None:
        self.config = config
        self.env = Environment(initial_time=config.start_time)
        self.rng = RngStreams(config.seed)
        self.profiler = Profiler(self.env, enabled=config.trace)
        self.metrics = None
        self.tracer = None
        if config.observe:
            from ..observability.metrics import MetricsRegistry
            from ..observability.spans import Tracer

            # Per-instance flux series only: the kernel instrument
            # stays coordinator-side so the repro_kernel_* families
            # keep a single writer.
            self.metrics = MetricsRegistry()
            # Worker-side live spans (instance bootstraps): closed
            # roots are drained into every window result and grafted
            # into the coordinator's tracer, so sharded bundles carry
            # the same spans as sequential ones.
            self.tracer = Tracer(self.env, enabled=True)
        self.fault_injected: Dict[str, int] = {}
        self.fault_log: List = []

        cluster = _ShardCluster(config.cluster_name)
        self._nodes: Dict[int, Node] = {}
        #: global instance index -> FluxInstance
        self.instances: Dict[int, FluxInstance] = {}
        #: global instance index -> owning node-index set
        self._owned: Dict[int, frozenset] = {}
        for spec in config.instances:
            nodes = []
            for index in spec.node_indices:
                node = self._nodes.get(index)
                if node is None:
                    node = Node(index, config.cores_per_node,
                                config.gpus_per_node,
                                mem_gb=config.mem_gb_per_node,
                                name=f"{config.cluster_name}-{index:05d}")
                    self._nodes[index] = node
                nodes.append(node)
            alloc = Allocation(cluster, nodes,
                               job_id=f"{spec.instance_id}.shard")
            rng = ScopedRng(self.rng, spec.instance_id)
            faults = None
            fspec = config.faults
            if fspec is not None and (fspec.p_launch_fail > 0.0
                                      or fspec.p_launch_timeout > 0.0):
                faults = _LaunchFaults(rng, fspec, self.profiler, self.env,
                                       spec.instance_id,
                                       self.fault_injected, self.fault_log)
            self.instances[spec.index] = FluxInstance(
                self.env, alloc, config.latencies, rng,
                instance_id=spec.instance_id, policy=spec.policy,
                profiler=self.profiler, metrics=self.metrics,
                faults=faults, lean=config.lean, tracer=self.tracer)
        self._specs: Dict[int, Any] = {}
        self._reports: List[JobReport] = []
        self._report_seq: Dict[int, int] = {i: 0 for i in self.instances}
        self._last_state: Dict[int, str] = {
            i: inst.state for i, inst in self.instances.items()}
        self._index_of = {inst.instance_id: i
                          for i, inst in self.instances.items()}
        for index, inst in self.instances.items():
            inst.events.subscribe_callback(
                self._capture(index), names=(EV_START, EV_FINISH,
                                             EV_EXCEPTION))

    # -- event capture -----------------------------------------------------

    def _capture(self, index: int):
        def on_event(event) -> None:
            seq = self._report_seq[index]
            self._report_seq[index] = seq + 1
            # env.now is the delivery time — the moment the legacy
            # executor's _on_event would have observed the event.
            self._reports.append(JobReport(
                self.env._now, index, seq, event.job_id, event.name,
                event.meta))
        return on_event

    def _report_error(self, index: int, job_id: str, exc: Exception) -> None:
        """Synthesize the exception report for a submit-time error the
        coordinator's proxy could not see (e.g. a crash racing a
        buffered submit)."""
        seq = self._report_seq[index]
        self._report_seq[index] = seq + 1
        self._reports.append(JobReport(
            self.env._now, index, seq, job_id, EV_EXCEPTION,
            {"reason": str(exc),
             "infra": isinstance(exc, RuntimeStartupError)}))

    # -- message application -------------------------------------------------

    def _apply(self, msg) -> None:
        kind = type(msg)
        if kind is SubmitMsg:
            inst = self.instances[msg.instance]
            try:
                job = inst.submit(self._specs[msg.spec_id])
            except (JobspecError, RuntimeStartupError) as exc:
                self._report_error(msg.instance, msg.job_id, exc)
                return
            if job.job_id != msg.job_id:  # pragma: no cover - protocol bug
                raise SimulationError(
                    f"shard job id {job.job_id} != coordinator-mirrored "
                    f"{msg.job_id}")
        elif kind is CancelMsg:
            self.instances[msg.instance].cancel(msg.job_id, msg.reason)
        elif kind is StartMsg:
            for inst in self.instances.values():
                self.env.process(inst.start())
        elif kind is CrashMsg:
            self.instances[msg.instance].crash(msg.reason)
        elif kind is RestartMsg:
            self.env.process(self.instances[msg.instance].restart())
        elif kind is ShutdownMsg:
            self.instances[msg.instance].shutdown()
        elif kind is FailNodeMsg:
            node = self._nodes.get(msg.node_index)
            if node is None:
                return
            node.fail()
            for index, inst in self.instances.items():
                if msg.node_index in inst.allocation._by_index:
                    inst.fail_node(node)
        elif kind is RecoverNodeMsg:
            node = self._nodes.get(msg.node_index)
            if node is None:
                return
            node.recover()
            for inst in self.instances.values():
                if msg.node_index in inst.allocation._by_index:
                    inst._kick()
        else:  # pragma: no cover - protocol bug
            raise SimulationError(f"unknown shard message {msg!r}")

    # -- the window protocol -------------------------------------------------

    def post_specs(self, specs: List[SpecMsg]) -> None:
        for msg in specs:
            self._specs[msg.spec_id] = msg.spec

    def run_window(self, boundary: float, messages: List[Any]
                   ) -> WindowResult:
        """Deliver ``messages`` at their timestamps, run to ``boundary``."""
        env = self.env
        now = env._now
        for msg in messages:
            # Exact-time delivery keeps the shard's event interleaving
            # a pure function of simulated time, not of pipe batching.
            env.schedule_callback(msg.time - now, self._apply, msg)
        env.run(until=boundary)
        states: List[StateReport] = []
        for index, inst in self.instances.items():
            state = inst.state
            if state != self._last_state[index]:
                self._last_state[index] = state
                states.append(StateReport(index, state))
        reports, self._reports = self._reports, []
        return WindowResult(env.peek(), reports, states,
                            self._drain_events(), self._drain_spans(),
                            self._telemetry_delta())

    def _drain_spans(self):
        """Closed root spans since the last window, in ``to_dict``
        form (spans stay worker-side until they close)."""
        tracer = self.tracer
        if tracer is None or not tracer.roots:
            return ()
        closed = [s for s in tracer.roots if s.closed]
        if not closed:
            return ()
        tracer.roots = [s for s in tracer.roots if not s.closed]
        return tuple(s.to_dict() for s in closed)

    def _telemetry_delta(self) -> Optional[Dict[str, Any]]:
        """This shard's occupancy/RSS snapshot for the cluster-wide
        telemetry view (``None`` when telemetry is off)."""
        if not self.config.telemetry:
            return None
        try:
            import resource

            rss_mb = (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                      / 1024.0)
        except Exception:  # pragma: no cover - non-POSIX
            rss_mb = 0.0
        return {
            "shard": self.config.shard_index,
            "active": sum(inst.n_running for inst in
                          self.instances.values()),
            "queued": sum(inst.outstanding for inst in
                          self.instances.values()),
            "rss_mb": round(rss_mb, 3),
        }

    def _drain_events(self) -> List[Any]:
        prof = self.profiler
        events = prof._events
        if not events:
            return []
        prof._events = []
        prof._by_name.clear()
        prof._by_entity.clear()
        prof._indexed_name = 0
        prof._indexed_entity = 0
        return events

    def stats(self) -> ShardStats:
        """End-of-run ledger snapshot (fault totals, metrics, RSS)."""
        try:
            import resource

            rss_mb = (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                      / 1024.0)
        except Exception:  # pragma: no cover - non-POSIX
            rss_mb = 0.0
        metrics = None
        if self.metrics is not None:
            from .merge import dump_metrics

            metrics = dump_metrics(self.metrics)
        return ShardStats(dict(self.fault_injected), list(self.fault_log),
                          metrics, rss_mb)


def _start_heartbeat(conn, send_lock, interval: float):
    """Start the worker's wall-clock heartbeat thread.

    A daemon thread sends a :class:`HeartbeatMsg` every ``interval``
    seconds under ``send_lock`` (shared with the main loop, so beat
    and result frames never interleave on the pipe).  Python threads
    preempt even while the main loop is deep in a simulation window,
    so beats keep flowing during long computes — which is exactly what
    lets the coordinator distinguish *busy* from *wedged*.  Returns a
    stop function.
    """
    import threading
    import time as _time

    from .protocol import HeartbeatMsg

    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval):
            try:
                with send_lock:
                    conn.send(HeartbeatMsg(_time.monotonic()))
            except (BrokenPipeError, OSError):
                return  # coordinator is gone; the main loop will exit

    thread = threading.Thread(target=beat, name="shard-heartbeat",
                              daemon=True)
    thread.start()
    return stop.set


def worker_main(conn) -> None:
    """Entry point of a shard worker process.

    Protocol: first message is the :class:`ShardConfig`; afterwards
    ``("specs", [SpecMsg...])``, ``("window", boundary, [msg...])``,
    ``("stats",)`` and ``("shutdown",)`` requests, each answered in
    order.  Worker-side exceptions are shipped back as
    :class:`ErrorMsg` and re-raised on the coordinator.

    Process workers additionally emit wall-clock heartbeats (see
    :func:`_start_heartbeat`) and honor the ``REPRO_CRASH_AT=shard:<t>``
    crash-injection hook.  Both live *here* rather than in
    :class:`ShardRunner` on purpose: the inline host shares the
    coordinator's process, where a heartbeat is meaningless and an
    injected ``os._exit`` would kill the run under test.
    """
    import threading

    from .protocol import ErrorMsg

    send_lock = threading.Lock()
    stop_heartbeat = None
    runner = None
    try:
        runner = ShardRunner(conn.recv())
        interval = float(getattr(runner.config, "heartbeat", 0.0) or 0.0)
        if interval > 0.0:
            stop_heartbeat = _start_heartbeat(conn, send_lock, interval)
        with send_lock:
            conn.send(("ready", None))
    except BaseException as exc:  # pragma: no cover - config error
        import traceback

        conn.send(ErrorMsg(type(exc).__name__, str(exc),
                           traceback.format_exc()))
        return
    from ..resilience.crash import crash_point, crash_shard_index, crash_value

    crash_armed = (crash_value("shard") is not None
                   and runner.config.shard_index == crash_shard_index())
    try:
        while True:
            try:
                req = conn.recv()
            except EOFError:
                return
            op = req[0]
            if op == "shutdown":
                return
            try:
                if op == "specs":
                    runner.post_specs(req[1])
                    continue  # fire-and-forget: no reply
                if op == "window":
                    if crash_armed:
                        # Die mid-window: the window's messages are
                        # received but never simulated or answered —
                        # the coordinator must replay them.
                        crash_point("shard", req[1])
                    result = runner.run_window(req[1], req[2])
                    with send_lock:
                        conn.send(result)
                elif op == "stats":
                    stats = runner.stats()
                    with send_lock:
                        conn.send(stats)
                else:  # pragma: no cover - protocol bug
                    raise SimulationError(f"unknown worker request {op!r}")
            except BaseException as exc:
                import traceback

                with send_lock:
                    conn.send(ErrorMsg(type(exc).__name__, str(exc),
                                       traceback.format_exc()))
                return
    finally:
        if stop_heartbeat is not None:
            stop_heartbeat()
