"""Whole-session summaries: per-backend breakdowns and latency stats.

RADICAL-Analytics' most common use is a per-run report: how many
tasks ran where, how long each lifecycle phase took, and the
percentile structure of scheduling/launch delays.  This module builds
that from :class:`~repro.core.task.Task` lists, complementing the
single-number metrics in :mod:`repro.analytics.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.states import TaskState
from .metrics import task_throughput, utilization
from .report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.task import Task


@dataclass(frozen=True)
class PhaseStats:
    """Distribution of one lifecycle-phase duration across tasks."""

    name: str
    n: int
    mean: float
    p50: float
    p95: float
    max: float

    @staticmethod
    def from_samples(name: str, samples: Iterable[float]) -> "PhaseStats":
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            return PhaseStats(name, 0, 0.0, 0.0, 0.0, 0.0)
        return PhaseStats(
            name=name, n=int(arr.size), mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            max=float(arr.max()))


@dataclass(frozen=True)
class BackendSummary:
    """Per-backend slice of a run."""

    backend: str
    n_tasks: int
    n_done: int
    n_failed: int
    n_canceled: int
    throughput_avg: float
    throughput_peak: float


@dataclass(frozen=True)
class SessionSummary:
    """Everything a run report needs, in one object."""

    n_tasks: int
    n_done: int
    n_failed: int
    n_canceled: int
    backends: Tuple[BackendSummary, ...]
    phases: Tuple[PhaseStats, ...]
    utilization_cores: Optional[float] = None

    def to_text(self) -> str:
        """Render as the tables a run report prints."""
        out: List[str] = []
        out.append(format_table(
            ["tasks", "done", "failed", "canceled"],
            [(self.n_tasks, self.n_done, self.n_failed, self.n_canceled)]))
        if self.backends:
            out.append("")
            out.append(format_table(
                ["backend", "tasks", "done", "failed", "canceled",
                 "avg/s", "peak/s"],
                [(b.backend, b.n_tasks, b.n_done, b.n_failed, b.n_canceled,
                  b.throughput_avg, b.throughput_peak)
                 for b in self.backends]))
        if self.phases:
            out.append("")
            out.append(format_table(
                ["phase [s]", "n", "mean", "p50", "p95", "max"],
                [(p.name, p.n, p.mean, p.p50, p.p95, p.max)
                 for p in self.phases]))
        if self.utilization_cores is not None:
            out.append("")
            out.append(f"core utilization: "
                       f"{100 * self.utilization_cores:.1f} %")
        return "\n".join(out)


def _phase_durations(tasks: List["Task"], begin_state: str,
                     end_state: str) -> List[float]:
    """start-to-start durations between two states, where both occur."""
    out = []
    for task in tasks:
        begin = end = None
        for ts, state in task.state_history:
            if begin is None and state == begin_state:
                begin = ts
            elif begin is not None and state == end_state:
                end = ts
                break
        if begin is not None and end is not None:
            out.append(end - begin)
    return out


def summarize(tasks: Iterable["Task"],
              total_cores: Optional[int] = None) -> SessionSummary:
    """Build a :class:`SessionSummary` from a task list."""
    tasks = list(tasks)
    by_backend: Dict[str, List["Task"]] = {}
    for task in tasks:
        by_backend.setdefault(task.backend or "(unrouted)", []).append(task)

    backends = []
    for backend in sorted(by_backend):
        group = by_backend[backend]
        stats = task_throughput(group)
        backends.append(BackendSummary(
            backend=backend,
            n_tasks=len(group),
            n_done=sum(t.state == TaskState.DONE for t in group),
            n_failed=sum(t.state == TaskState.FAILED for t in group),
            n_canceled=sum(t.state == TaskState.CANCELED for t in group),
            throughput_avg=stats.avg if np.isfinite(stats.avg) else 0.0,
            throughput_peak=stats.peak,
        ))

    phases = (
        PhaseStats.from_samples(
            "queue (tmgr->sched)",
            _phase_durations(tasks, TaskState.TMGR_SCHEDULING,
                             TaskState.AGENT_SCHEDULING)),
        PhaseStats.from_samples(
            "launch (sched->exec)",
            _phase_durations(tasks, TaskState.AGENT_SCHEDULING,
                             TaskState.AGENT_EXECUTING)),
        PhaseStats.from_samples(
            "execution",
            [t.exec_stop - t.exec_start for t in tasks
             if t.exec_start is not None and t.exec_stop is not None]),
    )

    return SessionSummary(
        n_tasks=len(tasks),
        n_done=sum(t.state == TaskState.DONE for t in tasks),
        n_failed=sum(t.state == TaskState.FAILED for t in tasks),
        n_canceled=sum(t.state == TaskState.CANCELED for t in tasks),
        backends=tuple(backends),
        phases=phases,
        utilization_cores=(utilization(tasks, total_cores)
                           if total_cores else None),
    )
