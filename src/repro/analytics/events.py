"""Trace-event records, mirroring RADICAL-Analytics' profile format.

Every component in the stack (agent, executors, Flux instances, Dragon
runtime, Slurm controller) appends :class:`TraceEvent` records to a
shared :class:`~repro.analytics.profiler.Profiler`.  All performance
metrics in :mod:`repro.analytics.metrics` are pure functions of these
traces, exactly as RADICAL-Analytics derives the paper's plots from
RP profiles.
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple

# -- canonical event names -----------------------------------------------------
# Task lifecycle (subset of RP's event model that the metrics consume).
TASK_CREATED = "task_created"          #: task description accepted by the TMGR
TASK_SCHEDULED = "task_scheduled"      #: agent scheduler assigned resources/backend
TASK_SUBMITTED = "task_submitted"      #: handed to the backend launcher
TASK_EXEC_START = "task_exec_start"    #: application process began executing
TASK_EXEC_STOP = "task_exec_stop"      #: application process finished
TASK_DONE = "task_done"                #: final state DONE recorded by RP
TASK_FAILED = "task_failed"            #: final state FAILED recorded by RP
TASK_CANCELED = "task_canceled"        #: final state CANCELED recorded by RP

# Pilot / infrastructure lifecycle.
PILOT_ACTIVE = "pilot_active"          #: allocation granted, agent bootstrapped
PILOT_DONE = "pilot_done"              #: pilot shut down
BACKEND_START = "backend_start"        #: runtime-instance bootstrap began
BACKEND_READY = "backend_ready"        #: runtime instance ready for tasks
BACKEND_STOP = "backend_stop"          #: runtime instance shut down
BACKEND_FAILED = "backend_failed"      #: runtime instance crashed / timed out

# Fault injection and recovery (see :mod:`repro.faults`).
TASK_ATTEMPT_FAILED = "task_attempt_failed"  #: one execution attempt failed
NODE_FAILED = "node_failed"            #: compute node taken DOWN by a fault
NODE_RECOVERED = "node_recovered"      #: compute node repaired, back UP
FAULT_INJECTED = "fault_injected"      #: fault model injected an event
BACKEND_RESTART = "backend_restart"    #: crashed runtime instance restarted
BACKEND_BLACKLISTED = "backend_blacklisted"  #: backend removed from routing


class TraceEvent(NamedTuple):
    """One timestamped event about one entity.

    A named tuple rather than a (frozen) dataclass: one is allocated
    per recorded trace event — hundreds of thousands per experiment —
    and tuple construction is several times cheaper.

    Parameters
    ----------
    time:
        Simulated time [s].
    entity:
        Id of the task / pilot / instance the event concerns.
    name:
        One of the canonical event names above (free-form allowed).
    meta:
        Event-specific payload, e.g. ``cores``, ``backend``, ``gpus``.
    """

    time: float
    entity: str
    name: str
    meta: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return f"<{self.name} {self.entity} @ {self.time:.4f}>"
