"""Trace persistence: dump/load profiles as JSON lines.

RADICAL-Analytics operates on profile files written by RP at runtime;
this module provides the equivalent round-trip so traces can be
archived and analysed offline (``save_profile`` after a run,
``load_events`` in the analysis notebook/script).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from .events import TraceEvent
from .profiler import Profiler

PathLike = Union[str, Path]


def save_profile(profiler: Profiler, path: PathLike) -> int:
    """Write every trace event as one JSON object per line.

    Returns the number of events written.
    """
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for ev in profiler:
            fh.write(json.dumps({
                "time": ev.time,
                "entity": ev.entity,
                "name": ev.name,
                "meta": ev.meta,
            }, sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def load_events(path: PathLike) -> List[TraceEvent]:
    """Read a JSON-lines profile back into trace events (in file order)."""
    path = Path(path)
    events: List[TraceEvent] = []
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                events.append(TraceEvent(
                    time=float(record["time"]),
                    entity=str(record["entity"]),
                    name=str(record["name"]),
                    meta=dict(record.get("meta", {})),
                ))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{line_no}: malformed profile record: {exc}"
                ) from exc
    return events
