"""Trace persistence: dump/load profiles as JSON lines.

RADICAL-Analytics operates on profile files written by RP at runtime;
this module provides the equivalent round-trip so traces can be
archived and analysed offline (``save_profile`` after a run,
``load_events`` in the analysis notebook/script).

Profiles start with a one-line schema header
(``{"format": "repro-profile", "version": 2}``); the loader also
accepts headerless version-1 files written before the header existed.
Metadata values survive the trip even when they are not plain JSON:
non-finite floats (``inf`` walltimes, ``nan`` placeholders) are
encoded as ``{"__nonfinite__": ...}`` markers, numpy scalars collapse
to their Python values, and anything else falls back to ``repr`` so a
single exotic value cannot make a whole profile unwritable.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, List, Union

from .events import TraceEvent
from .profiler import Profiler

PathLike = Union[str, Path]

#: Schema identifier in the profile header line.
PROFILE_FORMAT = "repro-profile"

#: Current profile schema version (1 = headerless legacy files).
PROFILE_VERSION = 2

_NONFINITE_KEY = "__nonfinite__"

#: First characters of a schema header line (``sort_keys`` puts
#: ``format`` first, so this prefix is stable across versions).  Used
#: to drop stray headers when concatenating chunks from multiple
#: writers — shard workers each emit one at the top of their spill.
_HEADER_PREFIX = json.dumps({"format": PROFILE_FORMAT})[:-1]


def _sanitize(value: Any) -> Any:
    """Make one value JSON-encodable without information loss.

    Non-finite floats become ``{"__nonfinite__": "nan"|"inf"|"-inf"}``
    markers (plain JSON has no spelling for them), numpy scalars are
    unwrapped via ``.item()``, containers recurse, and unknown types
    degrade to their ``repr`` rather than failing the export.
    """
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        if math.isnan(value):
            return {_NONFINITE_KEY: "nan"}
        return {_NONFINITE_KEY: "inf" if value > 0 else "-inf"}
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_sanitize(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _sanitize(item())
        except (TypeError, ValueError):
            pass
    return repr(value)


def _restore(value: Any) -> Any:
    """Undo :func:`_sanitize`'s non-finite markers."""
    if isinstance(value, dict):
        if len(value) == 1 and _NONFINITE_KEY in value:
            return float(value[_NONFINITE_KEY])
        return {k: _restore(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_restore(v) for v in value]
    return value


def write_event_lines(fh, events) -> int:
    """Serialize trace events to ``fh``, one JSON object per line.

    The single point of truth for the record wire format: full-profile
    export and the streaming profiler's spill chunks both write
    through here, which is what makes chunk files verbatim slices of a
    profile.  Returns the number of lines written.
    """
    count = 0
    for ev in events:
        record = {
            "time": ev.time,
            "entity": ev.entity,
            "name": ev.name,
            "meta": ev.meta,
        }
        try:
            line = json.dumps(record, sort_keys=True, allow_nan=False)
        except (ValueError, TypeError):
            line = json.dumps(_sanitize(record), sort_keys=True,
                              allow_nan=False)
        fh.write(line)
        fh.write("\n")
        count += 1
    return count


def iter_event_lines(fh, contains: str = None):
    """Parse profile record lines from ``fh`` into trace events.

    The loader twin of :func:`write_event_lines` (no header handling):
    used by the streaming profiler to re-read its spill chunks.

    ``contains`` is a raw-line prefilter: lines without that substring
    are skipped *before* JSON decoding, which is what makes filtered
    queries over spilled chunks cheap (decoding dominates re-read
    cost).  It may over-match — e.g. the substring appearing inside a
    meta value — so callers still check the decoded field; it must
    never under-match, so build it from the same ``json.dumps`` the
    writer used (see :meth:`Profiler._named`).
    """
    for line in fh:
        if contains is not None and contains not in line:
            continue
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        yield TraceEvent(
            time=float(record["time"]),
            entity=str(record["entity"]),
            name=str(record["name"]),
            meta=_restore(dict(record.get("meta", {}))),
        )


def save_profile(profiler: Profiler, path: PathLike) -> int:
    """Write every trace event as one JSON object per line.

    The first line is the schema header; it does not count toward the
    returned number of events written.  A streaming (spill-to-disk)
    profiler's chunks are concatenated verbatim — they are already in
    the record format — so the output is byte-identical to an
    in-memory profiler's, without materializing the trace.

    The write is crash-safe: the profile is staged to a temp file in
    the target directory and atomically renamed into place, so a kill
    mid-export leaves either the previous profile or the new one —
    never a truncated file (see :mod:`repro.resilience.atomic`).
    """
    from ..resilience.atomic import atomic_writer

    path = Path(path)
    count = 0
    with atomic_writer(path, encoding="utf-8") as fh:
        fh.write(json.dumps({"format": PROFILE_FORMAT,
                             "version": PROFILE_VERSION}, sort_keys=True))
        fh.write("\n")
        if getattr(profiler, "spilling", False):
            for chunk in profiler.spilled_chunks:
                with chunk.open("r", encoding="utf-8") as src:
                    for line in src:
                        if line.startswith(_HEADER_PREFIX):
                            # A chunk produced by another writer (shard
                            # worker spills) may lead with its own
                            # schema header; the output gets exactly
                            # one, written above.
                            continue
                        fh.write(line)
                        count += 1
            count += write_event_lines(fh, profiler._events)
        else:
            count += write_event_lines(fh, profiler)
    return count


def load_events(path: PathLike) -> List[TraceEvent]:
    """Read a JSON-lines profile back into trace events (in file order).

    Accepts current (headered) and legacy (headerless) profiles; a
    header from a *newer* schema than this code understands raises so
    half-parsed data never masquerades as a clean load.
    """
    path = Path(path)
    events: List[TraceEvent] = []
    first = True
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if first:
                    first = False
                    if (isinstance(record, dict)
                            and record.get("format") == PROFILE_FORMAT):
                        version = record.get("version")
                        if not isinstance(version, int) \
                                or version > PROFILE_VERSION:
                            raise ValueError(
                                f"unsupported profile version {version!r}")
                        continue
                events.append(TraceEvent(
                    time=float(record["time"]),
                    entity=str(record["entity"]),
                    name=str(record["name"]),
                    meta=_restore(dict(record.get("meta", {}))),
                ))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{line_no}: malformed profile record: {exc}"
                ) from exc
    return events
