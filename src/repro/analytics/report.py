"""Plain-text report rendering for experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that formatting in one place (usable from the CLI,
the benchmarks and EXPERIMENTS.md regeneration).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table (no external deps)."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    sep = "  ".join("-" * w for w in widths)
    out = [line(list(headers)), sep]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_series(times: Sequence[float], values: Sequence[float],
                  width: int = 50, label: str = "") -> str:
    """A crude ASCII sparkline of a time series (for Fig. 8 panels)."""
    vals = list(values)
    if not vals:
        return f"{label}: (empty)"
    peak = max(vals) or 1.0
    blocks = " .:-=+*#%@"
    chars = []
    stride = max(1, len(vals) // width)
    for i in range(0, len(vals), stride):
        chunk = vals[i:i + stride]
        level = int((max(chunk) / peak) * (len(blocks) - 1))
        chars.append(blocks[level])
    t0, t1 = times[0], times[-1]
    return (f"{label} [{t0:,.0f}s..{t1:,.0f}s] peak={peak:,.1f}\n"
            f"  |{''.join(chars)}|")
