"""Trace validation: lint a session's event stream for invariant
violations.

Useful both as a debugging aid for users extending the stack and as a
strong end-of-run assertion in tests: a correct run must produce a
trace where every task is conserved (created once, finalized once),
per-entity timestamps are monotone, execution intervals are sane, and
the recorded concurrent resource usage never exceeds the allocation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

import numpy as np

from . import events as tev

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .profiler import Profiler

_FINAL_EVENTS = (tev.TASK_DONE, tev.TASK_FAILED, tev.TASK_CANCELED)


@dataclass(frozen=True)
class Violation:
    """One detected trace inconsistency."""

    rule: str
    entity: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.entity}: {self.detail}"


def validate_trace(profiler: "Profiler",
                   total_cores: Optional[int] = None) -> List[Violation]:
    """Check all invariants; returns the (possibly empty) violation list."""
    violations: List[Violation] = []
    violations.extend(_check_task_conservation(profiler))
    violations.extend(_check_monotone_timestamps(profiler))
    violations.extend(_check_exec_intervals(profiler))
    violations.extend(_check_backend_lifecycles(profiler))
    if total_cores is not None:
        violations.extend(_check_core_usage(profiler, total_cores))
    return violations


def assert_valid_trace(profiler: "Profiler",
                       total_cores: Optional[int] = None) -> None:
    """Raise ``AssertionError`` listing every violation found."""
    violations = validate_trace(profiler, total_cores=total_cores)
    if violations:
        summary = "\n".join(str(v) for v in violations[:20])
        raise AssertionError(
            f"{len(violations)} trace violations:\n{summary}")


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------

def _task_events(profiler: "Profiler") -> Dict[str, list]:
    by_task: Dict[str, list] = defaultdict(list)
    for ev in profiler:
        if ev.name.startswith("task_"):
            by_task[ev.entity].append(ev)
    return by_task


def _check_task_conservation(profiler: "Profiler") -> List[Violation]:
    out = []
    for entity, events in _task_events(profiler).items():
        created = sum(1 for e in events if e.name == tev.TASK_CREATED)
        finals = sum(1 for e in events if e.name in _FINAL_EVENTS)
        if created != 1:
            out.append(Violation("conservation", entity,
                                 f"{created} creation events"))
        if finals != 1:
            out.append(Violation("conservation", entity,
                                 f"{finals} final events"))
    return out


def _check_monotone_timestamps(profiler: "Profiler") -> List[Violation]:
    out = []
    last_seen: Dict[str, float] = {}
    for ev in profiler:
        prev = last_seen.get(ev.entity)
        if prev is not None and ev.time < prev - 1e-12:
            out.append(Violation(
                "monotone-time", ev.entity,
                f"{ev.name} at {ev.time} after {prev}"))
        last_seen[ev.entity] = ev.time
    return out


def _check_exec_intervals(profiler: "Profiler") -> List[Violation]:
    out = []
    for entity, events in _task_events(profiler).items():
        starts = [e.time for e in events if e.name == tev.TASK_EXEC_START]
        stops = [e.time for e in events if e.name == tev.TASK_EXEC_STOP]
        for begin, end in zip(starts, stops):
            if end < begin:
                out.append(Violation(
                    "exec-interval", entity,
                    f"stop {end} before start {begin}"))
        if len(stops) > len(starts):
            out.append(Violation("exec-interval", entity,
                                 "more stops than starts"))
    return out


def _check_backend_lifecycles(profiler: "Profiler") -> List[Violation]:
    out = []
    started = {e.entity: e.time
               for e in profiler.events_named(tev.BACKEND_START)}
    for ev in profiler.events_named(tev.BACKEND_READY):
        begin = started.get(ev.entity)
        if begin is None:
            out.append(Violation("backend-lifecycle", ev.entity,
                                 "ready without start"))
        elif ev.time < begin:
            out.append(Violation("backend-lifecycle", ev.entity,
                                 "ready before start"))
    return out


def _check_core_usage(profiler: "Profiler",
                      total_cores: int) -> List[Violation]:
    """Concurrent core usage from exec intervals never exceeds the
    machine (sweep-line over start/stop events)."""
    deltas = []
    open_cores: Dict[str, float] = {}
    for ev in profiler:
        if ev.name == tev.TASK_EXEC_START:
            cores = float(ev.meta.get("cores", 1))
            open_cores[ev.entity] = cores
            deltas.append((ev.time, cores))
        elif ev.name == tev.TASK_EXEC_STOP:
            cores = open_cores.pop(ev.entity, None)
            if cores is not None:
                deltas.append((ev.time, -cores))
    if not deltas:
        return []
    arr = np.array(sorted(deltas), dtype=float)
    # Process stops before starts at equal times (a freed core may be
    # reused in the same instant).
    order = np.lexsort((arr[:, 1], arr[:, 0]))
    running = np.cumsum(arr[order, 1])
    peak = float(running.max())
    if peak > total_cores + 1e-9:
        return [Violation("core-usage", "(machine)",
                          f"peak concurrent cores {peak} > {total_cores}")]
    return []
