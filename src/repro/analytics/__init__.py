"""Trace recording and performance metrics (RADICAL-Analytics analogue)."""

from . import events
from .critical_path import CriticalStep, critical_path, format_critical_path
from .events import TraceEvent
from .export import load_events, save_profile
from .metrics import (
    ThroughputStats,
    exec_intervals,
    exec_start_times,
    makespan,
    pilot_startup_overhead,
    startup_overheads,
    task_throughput,
    throughput,
    utilization,
    utilization_from_intervals,
)
from .profiler import Profiler
from .summary import (
    BackendSummary,
    PhaseStats,
    SessionSummary,
    summarize,
)
from .timeseries import (
    Series,
    concurrency_series,
    resource_usage_series,
    start_rate_series,
    state_occupancy_series,
)
from .validate import Violation, assert_valid_trace, validate_trace

__all__ = [
    "BackendSummary",
    "CriticalStep",
    "PhaseStats",
    "Profiler",
    "Series",
    "SessionSummary",
    "summarize",
    "ThroughputStats",
    "TraceEvent",
    "Violation",
    "assert_valid_trace",
    "concurrency_series",
    "critical_path",
    "events",
    "format_critical_path",
    "exec_intervals",
    "exec_start_times",
    "load_events",
    "makespan",
    "save_profile",
    "pilot_startup_overhead",
    "resource_usage_series",
    "start_rate_series",
    "startup_overheads",
    "state_occupancy_series",
    "task_throughput",
    "throughput",
    "utilization",
    "utilization_from_intervals",
    "validate_trace",
]
