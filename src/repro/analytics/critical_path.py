"""Critical-path extraction over a run's span tree.

The span hierarchy (session → pilot → backend group → backend → task
→ phase, see :mod:`repro.observability.spans`) records *where* time
went; the critical path answers *what actually gated the makespan*:
the chain of spans ending latest at every level, from the session
root down to the leaf phase whose completion released the final
result.  On a healthy run that is the last-finishing task's collect
phase; on a degraded one it may be a backend that bootstrapped late
or a pilot that stalled in startup — the chain makes the blocker and
its per-level contribution explicit.

Spans are consumed duck-typed (``name``/``cat``/``start``/``end``/
``children`` attributes), so this module works on live
:class:`~repro.observability.spans.Span` trees, on trees rebuilt from
a bundle's ``spans.json`` via
:func:`~repro.observability.spans.span_from_dict`, and on anything
shaped like them — without importing the observability package (the
dependency points the other way: observability builds on analytics).

The walk is deterministic: a child qualifies for the chain only if it
ends at-or-after its parent (earlier-ending children cannot gate the
parent's completion); among qualifiers the latest-ending wins, ties
broken by the longest continuing chain (so the path reaches the task
and phase leaves instead of stopping at a container span), then by
latest start, then by name — the same tree always yields the same
chain (``trace critical`` reruns are reproducible, and the fixture
test pins the exact chain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

__all__ = ["CriticalStep", "critical_path", "format_critical_path"]


@dataclass(frozen=True)
class CriticalStep:
    """One level of the blocking chain."""

    name: str
    cat: str
    start: float
    end: float
    duration: float       #: inclusive span length [s]
    #: Time this level contributed *beyond* its on-path child [s]:
    #: ``duration - child.duration``, clamped at zero (a child may
    #: start before its parent in grafted trees).  For the leaf this
    #: is the whole duration.  The exclusive column is where to look
    #: for the actual blocker.
    exclusive: float
    depth: int            #: 0 = root


def _closed(span: Any) -> bool:
    return getattr(span, "end", None) is not None


def _gating(span: Any) -> List[Any]:
    """Children that can gate ``span``'s completion: closed and ending
    at-or-after it (grafted subtrees may legitimately overhang)."""
    return [c for c in span.children if _closed(c) and c.end >= span.end]


def _chain_len(span: Any, memo: dict) -> int:
    """Longest gating chain rooted at ``span`` (memoized by id)."""
    key = id(span)
    length = memo.get(key)
    if length is None:
        tails = _gating(span)
        length = 1 + (max(_chain_len(c, memo) for c in tails)
                      if tails else 0)
        memo[key] = length
    return length


def critical_path(root: Any) -> List[CriticalStep]:
    """The root→leaf chain of spans that gated the run's completion.

    At each level the on-path child is chosen among the gating
    children (closed, ending at-or-after the parent) by latest
    ``end``, then longest continuing chain, then latest ``start``,
    then greatest ``name``; the walk stops when no child gates the
    parent — its own tail was the blocker.  Open spans never gate a
    finished run and are skipped.  Returns one :class:`CriticalStep`
    per level, root first.
    """
    steps: List[CriticalStep] = []
    memo: dict = {}
    span = root
    depth = 0
    while span is not None and _closed(span):
        child = max(
            _gating(span),
            key=lambda c: (c.end, _chain_len(c, memo), c.start, c.name),
            default=None)
        duration = span.end - span.start
        exclusive = (max(duration - (child.end - child.start), 0.0)
                     if child is not None else duration)
        steps.append(CriticalStep(
            name=span.name, cat=getattr(span, "cat", "span"),
            start=span.start, end=span.end, duration=duration,
            exclusive=exclusive, depth=depth))
        span = child
        depth += 1
    return steps


def format_critical_path(steps: List[CriticalStep]) -> str:
    """Fixed-width table of the chain, indented by depth."""
    from .report import format_table

    rows = [("  " * step.depth + step.name, step.cat, step.start,
             step.end, step.duration, step.exclusive)
            for step in steps]
    return format_table(
        ["span", "cat", "start[s]", "end[s]", "dur[s]", "excl[s]"], rows)
