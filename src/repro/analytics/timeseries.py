"""Time-series views of a run: concurrency and launch-rate curves.

These regenerate the paper's Fig. 8 panels: running-task concurrency
(green, left axis) and execution start rate (red, right axis) over
the workflow's lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Tuple

import numpy as np

from .metrics import exec_intervals, exec_start_times

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.task import Task


@dataclass(frozen=True)
class Series:
    """A sampled time series (times[i] -> values[i])."""

    times: np.ndarray
    values: np.ndarray

    def max(self) -> float:
        return float(self.values.max()) if self.values.size else 0.0

    def mean(self) -> float:
        return float(self.values.mean()) if self.values.size else 0.0


def concurrency_series(tasks: Iterable["Task"],
                       resolution: float = 60.0) -> Series:
    """Number of concurrently *running* tasks sampled every
    ``resolution`` seconds (the paper's green curves)."""
    iv = exec_intervals(tasks)
    if iv.shape[0] == 0:
        return Series(np.empty(0), np.empty(0))
    t0, t1 = float(iv[:, 0].min()), float(iv[:, 1].max())
    samples = np.arange(t0, t1 + resolution, resolution)
    # Vectorized interval stabbing: count starts <= t < stops.
    starts = np.sort(iv[:, 0])
    stops = np.sort(iv[:, 1])
    running = (np.searchsorted(starts, samples, side="right")
               - np.searchsorted(stops, samples, side="right"))
    return Series(samples, running.astype(float))


def start_rate_series(tasks: Iterable["Task"],
                      bin_width: float = 60.0) -> Series:
    """Task launch rate [tasks/s] in fixed bins (the red curves)."""
    ts = exec_start_times(tasks)
    if ts.size == 0:
        return Series(np.empty(0), np.empty(0))
    edges = np.arange(ts[0], ts[-1] + bin_width, bin_width)
    if edges.size < 2:
        edges = np.array([ts[0], ts[0] + bin_width])
    counts, _ = np.histogram(ts, bins=edges)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return Series(centers, counts / bin_width)


def state_occupancy_series(tasks: Iterable["Task"], state: str,
                           resolution: float = 60.0) -> Series:
    """How many tasks sit in ``state`` over time.

    Used to reproduce Fig. 8's scheduled-vs-running gap: with a slow
    launcher, tasks pile up in AGENT_SCHEDULING while the running
    count trails behind.
    """
    rows = []
    horizon = 0.0
    for task in tasks:
        history = task.state_history
        horizon = max(horizon, history[-1][0])
        for i, (ts, name) in enumerate(history):
            if name != state:
                continue
            stop = (history[i + 1][0] if i + 1 < len(history)
                    else float("inf"))
            rows.append((ts, stop))
    if not rows:
        return Series(np.empty(0), np.empty(0))
    iv = np.array(rows, dtype=float)
    iv[:, 1] = np.minimum(iv[:, 1], horizon)
    t0, t1 = float(iv[:, 0].min()), float(iv[:, 1].max())
    samples = np.arange(t0, t1 + resolution, resolution)
    starts = np.sort(iv[:, 0])
    stops = np.sort(iv[:, 1])
    occupancy = (np.searchsorted(starts, samples, side="right")
                 - np.searchsorted(stops, samples, side="right"))
    return Series(samples, occupancy.astype(float))


def resource_usage_series(tasks: Iterable["Task"], total: int,
                          resolution: float = 60.0,
                          resource: str = "cores") -> Series:
    """Fraction of the allocation's cores/gpus busy over time."""
    col = {"cores": 2, "gpus": 3}[resource]
    iv = exec_intervals(tasks)
    if iv.shape[0] == 0 or total <= 0:
        return Series(np.empty(0), np.empty(0))
    t0, t1 = float(iv[:, 0].min()), float(iv[:, 1].max())
    samples = np.arange(t0, t1 + resolution, resolution)
    order_start = np.argsort(iv[:, 0])
    order_stop = np.argsort(iv[:, 1])
    starts = iv[order_start, 0]
    stops = iv[order_stop, 1]
    w_start = np.concatenate([[0.0], np.cumsum(iv[order_start, col])])
    w_stop = np.concatenate([[0.0], np.cumsum(iv[order_stop, col])])
    started = w_start[np.searchsorted(starts, samples, side="right")]
    stopped = w_stop[np.searchsorted(stops, samples, side="right")]
    return Series(samples, (started - stopped) / total)
