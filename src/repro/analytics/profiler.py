"""The trace recorder shared by all stack components.

One :class:`Profiler` exists per session.  Components call
:meth:`Profiler.record`; analysis code queries with
:meth:`Profiler.events_named` / :meth:`Profiler.timeline` or converts
to numpy arrays for the metric functions.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

import numpy as np

from .events import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.kernel import Environment

#: Default number of in-memory events before a spilling profiler
#: writes a chunk to disk (~40 MB of records at typical meta sizes).
SPILL_THRESHOLD = 200_000


class Profiler:
    """Append-only trace store keyed by event name and entity.

    ``record`` sits on the per-task hot path (5+ events per task), so
    it does the minimum possible work: construct the record and append
    it to one list.  The by-name / by-entity indexes that the query
    methods need are built lazily, catching up on the un-indexed tail
    the first time a query runs after new records arrived.

    Parameters
    ----------
    enabled:
        Off switch for no-trace runs: when ``False``, ``record`` is a
        near-free no-op.  Metrics computed from :class:`Task` state
        (throughput, utilization, makespan) still work; only
        trace-derived data (startup overheads, exported profiles) is
        empty.
    spill_dir:
        Streaming mode for full-machine runs whose traces do not fit
        in memory: every ``spill_threshold`` records the in-memory
        tail is flushed to a chunked JSONL file (standard profile
        record format, no header) under this directory, bounding RSS
        at O(threshold) regardless of run size.  Queries transparently
        re-read the chunks — lazily, keeping only matching events —
        and :func:`~repro.analytics.export.save_profile` concatenates
        the chunks verbatim, so exported profiles are byte-identical
        to the in-memory profiler's.
    """

    def __init__(self, env: "Environment", enabled: bool = True,
                 spill_dir: Optional[Any] = None,
                 spill_threshold: int = SPILL_THRESHOLD) -> None:
        self._env = env
        self.enabled = enabled
        self._events: List[TraceEvent] = []
        self._by_name: Dict[str, List[TraceEvent]] = {}
        self._by_entity: Dict[str, List[TraceEvent]] = {}
        # Watermarks into _events up to which each index is current.
        # They advance independently: metric pipelines typically only
        # query by name, so the (larger) per-entity index is often
        # never built at all.
        self._indexed_name = 0
        self._indexed_entity = 0
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        # Infinity when not spilling: the per-record threshold compare
        # then never passes, keeping the hot path one int comparison.
        self._spill_threshold = (max(1, int(spill_threshold))
                                 if spill_dir is not None else float("inf"))
        self._chunks: List[Path] = []
        self._n_spilled = 0

    # -- spilling ---------------------------------------------------------

    @property
    def spilling(self) -> bool:
        """True when this profiler streams chunks to disk."""
        return self._spill_dir is not None

    @property
    def spilled_chunks(self) -> List[Path]:
        """Paths of the chunk files written so far (record order)."""
        return list(self._chunks)

    def _maybe_spill(self) -> None:
        if len(self._events) >= self._spill_threshold:
            self._spill()

    def _spill(self) -> None:
        """Flush the in-memory tail to the next chunk file."""
        if not self._events:
            return
        from .export import write_event_lines

        self._spill_dir.mkdir(parents=True, exist_ok=True)
        path = self._spill_dir / f"chunk-{len(self._chunks):06d}.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            write_event_lines(fh, self._events)
        self._chunks.append(path)
        self._n_spilled += len(self._events)
        self._events.clear()
        # Spilled events leave the lazy indexes: queries on a spilling
        # profiler stream the chunks instead (see _iter_spilled).
        self._by_name.clear()
        self._by_entity.clear()
        self._indexed_name = 0
        self._indexed_entity = 0

    def flush(self) -> None:
        """Force any in-memory tail out to disk (spilling mode only)."""
        if self._spill_dir is not None:
            self._spill()

    def _iter_spilled(self, contains: str = None) -> Iterator[TraceEvent]:
        """Lazily re-read spilled chunks as trace events.

        ``contains`` prefilters raw lines before JSON decoding (see
        :func:`~repro.analytics.export.iter_event_lines`).
        """
        from .export import iter_event_lines

        for path in self._chunks:
            with path.open("r", encoding="utf-8") as fh:
                yield from iter_event_lines(fh, contains=contains)

    # -- recording --------------------------------------------------------

    def record(self, entity: str, name: str, at: Optional[float] = None,
               **meta: Any) -> Optional[TraceEvent]:
        """Record ``name`` for ``entity``.

        ``at`` overrides the timestamp (default: current simulated
        time) — used when the observing component learns about an
        event after it physically happened (e.g. completion messages
        arriving over a pipe), so traces carry the true event time.

        Returns the recorded event, or ``None`` when tracing is
        disabled.
        """
        if not self.enabled:
            return None
        ev = TraceEvent(time=self._env._now if at is None else at,
                        entity=entity, name=name, meta=meta)
        self._events.append(ev)
        if len(self._events) >= self._spill_threshold:
            self._spill()
        return ev

    def record_event(self, entity: str, name: str, meta: Dict[str, Any],
                     at: Optional[float] = None) -> Optional[TraceEvent]:
        """Like :meth:`record`, but takes the meta dict directly.

        The hottest recording sites (task state transitions) build
        their payload dict anyway; passing it by reference skips the
        ``**kwargs`` re-packing of :meth:`record`.  The caller must
        hand over a fresh dict (it is stored, not copied).
        """
        if not self.enabled:
            return None
        ev = TraceEvent(self._env._now if at is None else at,
                        entity, name, meta)
        self._events.append(ev)
        if len(self._events) >= self._spill_threshold:
            self._spill()
        return ev

    def _index_names(self) -> None:
        """Bring the by-name index up to date."""
        events = self._events
        start = self._indexed_name
        if start == len(events):
            return
        by_name = self._by_name.setdefault
        for ev in events[start:]:
            by_name(ev[2], []).append(ev)     # ev.name
        self._indexed_name = len(events)

    def _index_entities(self) -> None:
        """Bring the by-entity index up to date."""
        events = self._events
        start = self._indexed_entity
        if start == len(events):
            return
        by_entity = self._by_entity.setdefault
        for ev in events[start:]:
            by_entity(ev[1], []).append(ev)   # ev.entity
        self._indexed_entity = len(events)

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return self._n_spilled + len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        if self._n_spilled:
            return self._iter_all()
        return iter(self._events)

    def _iter_all(self) -> Iterator[TraceEvent]:
        yield from self._iter_spilled()
        yield from self._events

    def _named(self, name: str) -> List[TraceEvent]:
        """All events with the given name (internal, no defensive copy).

        A spilling profiler streams its chunks and keeps only the
        matches, so a query's footprint is O(matches), not O(trace).
        """
        if self._n_spilled:
            import json

            # The writer serializes with sort_keys + this exact
            # spelling, so the needle never under-matches; the field
            # check below handles needle text inside meta values.
            needle = '"name": ' + json.dumps(name)
            out = [ev for ev in self._iter_spilled(needle)
                   if ev[2] == name]
            out.extend(ev for ev in self._events if ev[2] == name)
            return out
        self._index_names()
        return self._by_name.get(name, [])

    def events_named(self, name: str) -> List[TraceEvent]:
        """All events with the given name, in record order."""
        return list(self._named(name))

    def events_for(self, entity: str) -> List[TraceEvent]:
        """All events of one entity, in record order."""
        return list(self._for_entity(entity))

    def _for_entity(self, entity: str) -> List[TraceEvent]:
        if self._n_spilled:
            import json

            needle = '"entity": ' + json.dumps(entity)
            out = [ev for ev in self._iter_spilled(needle)
                   if ev[1] == entity]
            out.extend(ev for ev in self._events if ev[1] == entity)
            return out
        self._index_entities()
        return self._by_entity.get(entity, [])

    def times(self, name: str) -> np.ndarray:
        """Timestamps of all events named ``name`` as a sorted array."""
        ts = np.array([ev.time for ev in self._named(name)], dtype=float)
        ts.sort()
        return ts

    def first(self, name: str) -> Optional[TraceEvent]:
        evs = self._named(name)
        return evs[0] if evs else None

    def last(self, name: str) -> Optional[TraceEvent]:
        evs = self._named(name)
        return evs[-1] if evs else None

    def duration(self, entity: str, start_name: str, stop_name: str) -> float:
        """Time between two events of one entity (first occurrences).

        Raises ``KeyError`` when either event is missing.
        """
        start = stop = None
        for ev in self._for_entity(entity):
            if start is None and ev.name == start_name:
                start = ev.time
            elif start is not None and ev.name == stop_name:
                stop = ev.time
                break
        if start is None or stop is None:
            raise KeyError(
                f"{entity}: missing {start_name!r}..{stop_name!r} interval"
            )
        return stop - start

    def timeline(self, entity: str) -> List[tuple]:
        """(time, name) pairs for one entity, in record order."""
        return [(ev.time, ev.name) for ev in self._for_entity(entity)]
