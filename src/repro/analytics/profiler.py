"""The trace recorder shared by all stack components.

One :class:`Profiler` exists per session.  Components call
:meth:`Profiler.record`; analysis code queries with
:meth:`Profiler.events_named` / :meth:`Profiler.timeline` or converts
to numpy arrays for the metric functions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

import numpy as np

from .events import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.kernel import Environment


class Profiler:
    """Append-only in-memory trace store keyed by event name and entity.

    ``record`` sits on the per-task hot path (5+ events per task), so
    it does the minimum possible work: construct the record and append
    it to one list.  The by-name / by-entity indexes that the query
    methods need are built lazily, catching up on the un-indexed tail
    the first time a query runs after new records arrived.

    Parameters
    ----------
    enabled:
        Off switch for no-trace runs: when ``False``, ``record`` is a
        near-free no-op.  Metrics computed from :class:`Task` state
        (throughput, utilization, makespan) still work; only
        trace-derived data (startup overheads, exported profiles) is
        empty.
    """

    def __init__(self, env: "Environment", enabled: bool = True) -> None:
        self._env = env
        self.enabled = enabled
        self._events: List[TraceEvent] = []
        self._by_name: Dict[str, List[TraceEvent]] = {}
        self._by_entity: Dict[str, List[TraceEvent]] = {}
        # Watermarks into _events up to which each index is current.
        # They advance independently: metric pipelines typically only
        # query by name, so the (larger) per-entity index is often
        # never built at all.
        self._indexed_name = 0
        self._indexed_entity = 0

    # -- recording --------------------------------------------------------

    def record(self, entity: str, name: str, at: Optional[float] = None,
               **meta: Any) -> Optional[TraceEvent]:
        """Record ``name`` for ``entity``.

        ``at`` overrides the timestamp (default: current simulated
        time) — used when the observing component learns about an
        event after it physically happened (e.g. completion messages
        arriving over a pipe), so traces carry the true event time.

        Returns the recorded event, or ``None`` when tracing is
        disabled.
        """
        if not self.enabled:
            return None
        ev = TraceEvent(time=self._env._now if at is None else at,
                        entity=entity, name=name, meta=meta)
        self._events.append(ev)
        return ev

    def record_event(self, entity: str, name: str, meta: Dict[str, Any],
                     at: Optional[float] = None) -> Optional[TraceEvent]:
        """Like :meth:`record`, but takes the meta dict directly.

        The hottest recording sites (task state transitions) build
        their payload dict anyway; passing it by reference skips the
        ``**kwargs`` re-packing of :meth:`record`.  The caller must
        hand over a fresh dict (it is stored, not copied).
        """
        if not self.enabled:
            return None
        ev = TraceEvent(self._env._now if at is None else at,
                        entity, name, meta)
        self._events.append(ev)
        return ev

    def _index_names(self) -> None:
        """Bring the by-name index up to date."""
        events = self._events
        start = self._indexed_name
        if start == len(events):
            return
        by_name = self._by_name.setdefault
        for ev in events[start:]:
            by_name(ev[2], []).append(ev)     # ev.name
        self._indexed_name = len(events)

    def _index_entities(self) -> None:
        """Bring the by-entity index up to date."""
        events = self._events
        start = self._indexed_entity
        if start == len(events):
            return
        by_entity = self._by_entity.setdefault
        for ev in events[start:]:
            by_entity(ev[1], []).append(ev)   # ev.entity
        self._indexed_entity = len(events)

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events_named(self, name: str) -> List[TraceEvent]:
        """All events with the given name, in record order."""
        self._index_names()
        return list(self._by_name.get(name, ()))

    def events_for(self, entity: str) -> List[TraceEvent]:
        """All events of one entity, in record order."""
        self._index_entities()
        return list(self._by_entity.get(entity, ()))

    def times(self, name: str) -> np.ndarray:
        """Timestamps of all events named ``name`` as a sorted array."""
        self._index_names()
        ts = np.array([ev.time for ev in self._by_name.get(name, ())],
                      dtype=float)
        ts.sort()
        return ts

    def first(self, name: str) -> Optional[TraceEvent]:
        self._index_names()
        evs = self._by_name.get(name)
        return evs[0] if evs else None

    def last(self, name: str) -> Optional[TraceEvent]:
        self._index_names()
        evs = self._by_name.get(name)
        return evs[-1] if evs else None

    def duration(self, entity: str, start_name: str, stop_name: str) -> float:
        """Time between two events of one entity (first occurrences).

        Raises ``KeyError`` when either event is missing.
        """
        self._index_entities()
        start = stop = None
        for ev in self._by_entity.get(entity, ()):
            if start is None and ev.name == start_name:
                start = ev.time
            elif start is not None and ev.name == stop_name:
                stop = ev.time
                break
        if start is None or stop is None:
            raise KeyError(
                f"{entity}: missing {start_name!r}..{stop_name!r} interval"
            )
        return stop - start

    def timeline(self, entity: str) -> List[tuple]:
        """(time, name) pairs for one entity, in record order."""
        self._index_entities()
        return [(ev.time, ev.name) for ev in self._by_entity.get(entity, ())]
