"""The trace recorder shared by all stack components.

One :class:`Profiler` exists per session.  Components call
:meth:`Profiler.record`; analysis code queries with
:meth:`Profiler.events_named` / :meth:`Profiler.timeline` or converts
to numpy arrays for the metric functions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

import numpy as np

from .events import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.kernel import Environment


class Profiler:
    """Append-only in-memory trace store keyed by event name and entity."""

    def __init__(self, env: "Environment") -> None:
        self._env = env
        self._events: List[TraceEvent] = []
        self._by_name: Dict[str, List[TraceEvent]] = defaultdict(list)
        self._by_entity: Dict[str, List[TraceEvent]] = defaultdict(list)

    # -- recording --------------------------------------------------------

    def record(self, entity: str, name: str, at: Optional[float] = None,
               **meta: Any) -> TraceEvent:
        """Record ``name`` for ``entity``.

        ``at`` overrides the timestamp (default: current simulated
        time) — used when the observing component learns about an
        event after it physically happened (e.g. completion messages
        arriving over a pipe), so traces carry the true event time.
        """
        ev = TraceEvent(time=self._env.now if at is None else at,
                        entity=entity, name=name, meta=meta)
        self._events.append(ev)
        self._by_name[name].append(ev)
        self._by_entity[entity].append(ev)
        return ev

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events_named(self, name: str) -> List[TraceEvent]:
        """All events with the given name, in record order."""
        return list(self._by_name.get(name, ()))

    def events_for(self, entity: str) -> List[TraceEvent]:
        """All events of one entity, in record order."""
        return list(self._by_entity.get(entity, ()))

    def times(self, name: str) -> np.ndarray:
        """Timestamps of all events named ``name`` as a sorted array."""
        ts = np.array([ev.time for ev in self._by_name.get(name, ())],
                      dtype=float)
        ts.sort()
        return ts

    def first(self, name: str) -> Optional[TraceEvent]:
        evs = self._by_name.get(name)
        return evs[0] if evs else None

    def last(self, name: str) -> Optional[TraceEvent]:
        evs = self._by_name.get(name)
        return evs[-1] if evs else None

    def duration(self, entity: str, start_name: str, stop_name: str) -> float:
        """Time between two events of one entity (first occurrences).

        Raises ``KeyError`` when either event is missing.
        """
        start = stop = None
        for ev in self._by_entity.get(entity, ()):
            if start is None and ev.name == start_name:
                start = ev.time
            elif start is not None and ev.name == stop_name:
                stop = ev.time
                break
        if start is None or stop is None:
            raise KeyError(
                f"{entity}: missing {start_name!r}..{stop_name!r} interval"
            )
        return stop - start

    def timeline(self, entity: str) -> List[tuple]:
        """(time, name) pairs for one entity, in record order."""
        return [(ev.time, ev.name) for ev in self._by_entity.get(entity, ())]
