"""Performance metrics: the paper's three core quantities (§4).

1. **throughput** — tasks launched per second, independent of their
   execution duration (average over the launch window, plus the peak
   rate over fixed-width bins);
2. **resource utilization** — percentage of allocated compute
   resources actively used over time;
3. **runtime overhead** — infrastructure setup time before workflow
   execution begins (agent + backend bootstrap).

All metrics are pure functions of task exec intervals / trace events,
so they apply identically across backends — exactly how
RADICAL-Analytics derives the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from . import events as tev

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.task import Task
    from .profiler import Profiler


# ---------------------------------------------------------------------------
# extraction helpers
# ---------------------------------------------------------------------------

def exec_start_times(tasks: Iterable["Task"]) -> np.ndarray:
    """Sorted payload start timestamps of the tasks that executed."""
    ts = np.array(sorted(
        t.exec_start for t in tasks if t.exec_start is not None), dtype=float)
    return ts


def exec_intervals(tasks: Iterable["Task"]) -> np.ndarray:
    """(start, stop, cores, gpus) rows for every executed task."""
    rows = [
        (t.exec_start, t.exec_stop,
         t.description.resources.cores, t.description.resources.gpus)
        for t in tasks
        if t.exec_start is not None and t.exec_stop is not None
    ]
    if not rows:
        return np.empty((0, 4), dtype=float)
    return np.array(rows, dtype=float)


# ---------------------------------------------------------------------------
# throughput
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ThroughputStats:
    """Average and peak task launch rates."""

    n_tasks: int
    window: float       #: width of the launch window [s]
    avg: float          #: tasks/s over the launch window
    peak: float         #: max binned rate [tasks/s]
    bin_width: float


def throughput(start_times: np.ndarray,
               bin_width: float = 1.0) -> ThroughputStats:
    """Launch throughput from sorted start timestamps.

    ``avg`` spans first to last start; ``peak`` is the maximum count
    in any ``bin_width`` window.  Degenerate inputs (0 or 1 task)
    yield zero rates rather than raising.
    """
    n = int(start_times.size)
    if n < 2:
        return ThroughputStats(n, 0.0, 0.0, 0.0, bin_width)
    window = float(start_times[-1] - start_times[0])
    if window <= 0.0:
        # All tasks started within one instant: rate is bounded by the
        # bin, not the window.
        return ThroughputStats(n, 0.0, float("inf"), n / bin_width, bin_width)
    edges = np.arange(start_times[0], start_times[-1] + bin_width, bin_width)
    counts, _ = np.histogram(start_times, bins=edges)
    peak = float(counts.max()) / bin_width if counts.size else 0.0
    return ThroughputStats(n, window, n / window, peak, bin_width)


def task_throughput(tasks: Iterable["Task"],
                    bin_width: float = 1.0) -> ThroughputStats:
    """Convenience wrapper over :func:`throughput`."""
    return throughput(exec_start_times(tasks), bin_width)


# ---------------------------------------------------------------------------
# utilization
# ---------------------------------------------------------------------------

def utilization(tasks: Iterable["Task"], total_cores: int,
                span: Optional[Tuple[float, float]] = None,
                resource: str = "cores") -> float:
    """Fraction of allocated resource-time actively used, in [0, 1].

    Parameters
    ----------
    tasks:
        Tasks whose exec intervals count as "actively used".
    total_cores:
        Allocated capacity of the chosen resource (cores or gpus).
    span:
        (t0, t1) accounting window; defaults to [first exec start,
        last exec stop].  Intervals are clipped to the span.
    resource:
        ``cores`` or ``gpus``.
    """
    return utilization_from_intervals(exec_intervals(tasks), total_cores,
                                      span=span, resource=resource)


def utilization_from_intervals(iv: np.ndarray, total_cores: int,
                               span: Optional[Tuple[float, float]] = None,
                               resource: str = "cores") -> float:
    """:func:`utilization` over precomputed ``(start, stop, cores,
    gpus)`` rows (see :func:`exec_intervals`).

    The array-level entry point lets callers that already hold the
    exec intervals as columns — the vectorized ensemble engine
    computes them for every member at once — reuse the exact same
    accounting (same row order, same float operations) as the
    task-object path.
    """
    if total_cores <= 0:
        raise ValueError(f"total_cores must be positive, got {total_cores}")
    col = {"cores": 2, "gpus": 3}[resource]
    if iv.shape[0] == 0:
        return 0.0
    if span is None:
        t0, t1 = float(iv[:, 0].min()), float(iv[:, 1].max())
    else:
        t0, t1 = span
    if t1 <= t0:
        return 0.0
    starts = np.clip(iv[:, 0], t0, t1)
    stops = np.clip(iv[:, 1], t0, t1)
    busy = float(np.sum((stops - starts) * iv[:, col]))
    return busy / (total_cores * (t1 - t0))


# ---------------------------------------------------------------------------
# overhead / makespan
# ---------------------------------------------------------------------------

def startup_overheads(profiler: "Profiler", kind: Optional[str] = None
                      ) -> List[Tuple[str, float]]:
    """(instance_id, bootstrap seconds) for every backend instance.

    ``kind`` filters on the backend type recorded in the event meta
    (``flux``, ``dragon``, ``srun``).
    """
    started = {ev.entity: ev for ev in profiler.events_named(tev.BACKEND_START)}
    out: List[Tuple[str, float]] = []
    for ev in profiler.events_named(tev.BACKEND_READY):
        if kind is not None and ev.meta.get("kind") != kind:
            continue
        begin = started.get(ev.entity)
        if begin is not None:
            out.append((ev.entity, ev.time - begin.time))
    return out


def makespan(tasks: Iterable["Task"]) -> float:
    """Workflow makespan: first submission to last payload stop."""
    tasks = list(tasks)
    submit = [t.state_history[0][0] for t in tasks]
    stops = [t.exec_stop for t in tasks if t.exec_stop is not None]
    if not submit or not stops:
        return 0.0
    return max(stops) - min(submit)


def pilot_startup_overhead(profiler: "Profiler") -> float:
    """Time from pilot activation request to first backend ready."""
    first_start = profiler.first(tev.BACKEND_START)
    ready = profiler.times(tev.BACKEND_READY)
    if first_start is None or ready.size == 0:
        return 0.0
    return float(ready.max() - first_start.time)
