"""Fig. 7 — runtime-instance launching overheads.

Paper: bootstrap costs ~20 s per Flux instance and ~9 s per Dragon
instance, nearly independent of instance size (1-64 nodes), and NOT
additive across instances because they launch concurrently.
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.core import PartitionSpec, PilotDescription, Session
from repro.platform import frontier

from .conftest import run_once

PAPER_FLUX_STARTUP = 20.0
PAPER_DRAGON_STARTUP = 9.0
SIZES = (1, 4, 16, 64)


def _measure_startup(backend: str, n_nodes: int, n_instances: int = 1):
    from repro.analytics import startup_overheads

    session = Session(cluster=frontier(max(n_nodes, 2)), seed=n_nodes)
    pmgr = session.pilot_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=n_nodes,
        partitions=(PartitionSpec(backend, n_instances=n_instances),)))
    session.run(pilot.active_event())
    overheads = startup_overheads(session.profiler, kind=backend)
    session.close()
    return overheads


def test_fig7_startup_overheads(benchmark, emit):
    measured = {}

    def sweep():
        for backend in ("flux", "dragon"):
            for n in SIZES:
                overheads = _measure_startup(backend, n)
                measured[(backend, n)] = overheads[0][1]
        return measured

    run_once(benchmark, sweep)

    rows = []
    for backend, paper in (("flux", PAPER_FLUX_STARTUP),
                           ("dragon", PAPER_DRAGON_STARTUP)):
        for n in SIZES:
            rows.append((backend, n, paper,
                         round(measured[(backend, n)], 2)))
    emit("Fig. 7: instance launching overheads (1-64 nodes/instance)\n"
         + format_table(["runtime", "nodes/inst", "paper [s]",
                         "measured [s]"], rows))

    for n in SIZES:
        assert abs(measured[("flux", n)] - PAPER_FLUX_STARTUP) < 6.0
        assert abs(measured[("dragon", n)] - PAPER_DRAGON_STARTUP) < 4.0
    # Near-flat in instance size: 64-node instance within ~25 % of
    # the 1-node instance.
    for backend in ("flux", "dragon"):
        small, large = measured[(backend, 1)], measured[(backend, 64)]
        assert abs(large - small) / small < 0.35


def test_fig7_concurrent_launch_not_additive(benchmark, emit):
    """16 concurrent instances bootstrap in ~the time of one."""

    def run():
        session = Session(cluster=frontier(16), seed=3)
        pmgr = session.pilot_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=16, partitions=(PartitionSpec("flux", n_instances=16),)))
        session.run(pilot.active_event())
        total = session.now
        session.close()
        return total

    total = run_once(benchmark, run)
    emit("Fig. 7 (concurrency): 16 Flux instances ready in "
         f"{total:.1f} s total (one instance needs ~{PAPER_FLUX_STARTUP} s; "
         "16x serial would be ~320 s)")
    # Far below the 16x-serial bound; close to a single bootstrap.
    assert total < 2.5 * PAPER_FLUX_STARTUP
