"""Run-store benchmark: cold-vs-warm speedup and sweep hit rates.

Two legs, both written to ``BENCH_store.json``:

**Cold vs warm.**  The reference config (flux_n at 64 nodes / 4
partitions, one null wave = 3584 tasks) is simulated into a fresh
store, then served from it.  A warm hit skips the whole DES run —
workload build, kernel, metric pass — and pays only digest
computation, one ``flock``-guarded index touch and a verified
``result.json`` parse, so the committed gate demands a ≥100× wall
speedup.  The hit's soundness (float-equal metrics, byte-identical
profile) is pinned by ``tests/store``; this file only guards the
economics.

**Zipf sweep.**  A 96-request stream whose seeds follow a Zipf
distribution (the reference-hot/tail-cold shape of real parameter
studies) runs through one shared store.  The stream is seeded, so its
distinct-seed count — and therefore the exact hit rate — is
deterministic: every repeated request must hit, every first
occurrence must miss and populate.

``tools/bench_gate.py`` gates ``tasks_per_wall_second*``,
``warm_speedup`` and ``hit_rate`` against the committed baseline.
"""

from __future__ import annotations

import json
import shutil
import time
from pathlib import Path

import numpy as np

from repro.experiments import ExperimentConfig, run_experiment
from repro.store import STATS, RunStore

from .conftest import BENCH_ROUNDS, rate_stats, run_once, write_bench

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_store.json"

#: Reference config for the cold/warm pair: deep enough (3584 tasks,
#: ~0.5s of simulation) that the ~1.5ms warm lookup clears the 100x
#: gate with an order of magnitude to spare.
CFG = ExperimentConfig(exp_id="perf_store", launcher="flux",
                       workload="null", n_nodes=64, n_partitions=4,
                       waves=1, seed=0)
N_TASKS = 3584

#: The acceptance gate: a warm hit at least 100x cheaper than the
#: simulation it replaces.
MIN_WARM_SPEEDUP = 100.0

#: Zipf request stream: 96 draws, exponent 1.3, seeds folded into
#: [0, 32).  Seeded, so the distinct count and hit rate are exact.
ZIPF_REQUESTS = 96
ZIPF_EXPONENT = 1.3
ZIPF_SEED_SPACE = 32


def _zipf_seeds() -> list:
    rng = np.random.default_rng(2026)
    return [int(s) % ZIPF_SEED_SPACE
            for s in rng.zipf(ZIPF_EXPONENT, size=ZIPF_REQUESTS)]


def _merge_bench(updates: dict) -> None:
    """Update ``BENCH_store.json`` in place: the two tests own
    disjoint key sets, so either can run alone without clobbering the
    other's committed numbers."""
    doc = (json.loads(BENCH_FILE.read_text())
           if BENCH_FILE.exists() else {})
    doc.update(updates)
    write_bench(BENCH_FILE, doc)


def test_store_cold_vs_warm(tmp_path, benchmark, emit):
    root = tmp_path / "store"

    def _cold_wall() -> float:
        shutil.rmtree(root, ignore_errors=True)
        wall0 = time.perf_counter()
        result = run_experiment(CFG, cache=root)
        wall = time.perf_counter() - wall0
        assert result.provenance == "fresh"
        assert result.n_done == result.n_tasks == N_TASKS
        return wall

    def _warm_wall() -> float:
        wall0 = time.perf_counter()
        result = run_experiment(CFG, cache=root)
        wall = time.perf_counter() - wall0
        assert result.provenance == "cached"
        assert result.n_tasks == N_TASKS
        return wall

    def _measure():
        # rate form (tasks per wall second) so the regression gate
        # treats a slowdown on either leg as a drop.
        cold = rate_stats(lambda: N_TASKS / _cold_wall())
        warm = rate_stats(lambda: N_TASKS / _warm_wall())
        return cold, warm

    cold, warm = run_once(benchmark, _measure)
    speedup = warm["median"] / cold["median"]

    _merge_bench({
        "config": {"exp_id": CFG.exp_id, "launcher": CFG.launcher,
                   "n_nodes": CFG.n_nodes,
                   "n_partitions": CFG.n_partitions, "waves": CFG.waves},
        "n_tasks": N_TASKS,
        "tasks_per_wall_second_cold": cold["median"],
        "tasks_per_wall_second_warm": warm["median"],
        "warm_speedup": speedup,
        "spread": {"cold": cold, "warm": warm},
        "rounds": BENCH_ROUNDS,
    })

    emit(f"store: cold {N_TASKS / cold['median'] * 1e3:,.0f}ms/run  "
         f"warm {N_TASKS / warm['median'] * 1e3:,.2f}ms/run  "
         f"-> {speedup:.0f}x warm speedup ({N_TASKS} tasks)\n"
         f"wrote {BENCH_FILE}")

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm store hit is only {speedup:.1f}x cheaper than a cold "
        f"simulation (gate: {MIN_WARM_SPEEDUP:.0f}x)")


def test_store_zipf_hit_rate(tmp_path, emit):
    seeds = _zipf_seeds()
    distinct = len(set(seeds))
    expected_rate = (len(seeds) - distinct) / len(seeds)
    cfg = ExperimentConfig(exp_id="perf_store_zipf", launcher="srun",
                           workload="null", n_nodes=1, waves=1, seed=0)
    store = RunStore(tmp_path / "store")
    before = STATS.snapshot()
    total_tasks = 0
    wall0 = time.perf_counter()
    for seed in seeds:
        result = run_experiment(cfg.with_seed(seed), cache=store)
        total_tasks += result.n_tasks
    wall = time.perf_counter() - wall0
    delta = STATS.delta(before)

    assert delta["hits"] == len(seeds) - distinct
    assert delta["misses"] == distinct
    assert delta["stored"] == distinct
    assert delta["integrity_failures"] == 0
    hit_rate = delta["hits"] / len(seeds)
    assert hit_rate == expected_rate

    _merge_bench({"zipf": {
        "requests": len(seeds),
        "distinct_seeds": distinct,
        "hit_rate": hit_rate,
        "tasks_per_wall_second_memoized": total_tasks / wall,
        "exponent": ZIPF_EXPONENT,
        "seed_space": ZIPF_SEED_SPACE,
    }})

    emit(f"store zipf: {len(seeds)} requests over {distinct} distinct "
         f"seeds -> hit rate {hit_rate:.1%}, "
         f"{total_tasks / wall:,.0f} tasks/s memoized\n"
         f"wrote {BENCH_FILE}")
