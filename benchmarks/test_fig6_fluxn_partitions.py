"""Fig. 6 — Flux throughput with 1-64 concurrent instances.

Paper: partitioning raises throughput at small/medium scale (4 nodes:
56 -> 98 tasks/s from 1 -> 4 instances; 16 nodes: 43 -> 195 from
1 -> 16), with diminishing returns at 256-1024 nodes (1024 nodes:
160.6 -> 232.9 from 1 -> 16 instances).  Max observed: 930 tasks/s.
Utilization >= 94.5 % up to 64 nodes, ~75 % at 1024 nodes/16 inst.
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.experiments import ExperimentConfig

from .conftest import repetitions, run_once

#: (nodes, partitions, waves, reps) — the 1024-node points run one
#: wave (57,344 tasks) to keep the sweep tractable.
SWEEP = (
    (4, 1, 4, 3), (4, 4, 4, 3),
    (16, 1, 4, 3), (16, 16, 4, 3),
    (64, 1, 4, 2), (64, 4, 4, 2), (64, 16, 4, 2), (64, 64, 4, 2),
    (1024, 1, 1, 2), (1024, 16, 1, 2),
)

PAPER = {(4, 1): 56.0, (4, 4): 98.0, (16, 1): 43.0, (16, 16): 195.0,
         (1024, 1): 160.6, (1024, 16): 232.9}
PAPER_MAX = 930.0


def test_fig6_fluxn_partition_sweep(benchmark, emit):
    results = {}

    def sweep():
        for n, p, waves, reps in SWEEP:
            cfg = ExperimentConfig(exp_id="flux_n", launcher="flux",
                                   workload="null", n_nodes=n,
                                   n_partitions=p, waves=waves)
            results[(n, p)] = repetitions(cfg, n_reps=reps)
        return results

    run_once(benchmark, sweep)

    rows = [(n, p, PAPER.get((n, p), "-"),
             round(results[(n, p)].throughput_avg, 1),
             round(results[(n, p)].throughput_max, 1))
            for n, p, _, _ in SWEEP]
    emit("Fig. 6: Flux throughput vs instance count (null tasks)\n"
         + format_table(["nodes", "instances", "paper avg/s", "avg/s",
                         "max/s"], rows)
         + f"\npaper max anywhere: {PAPER_MAX} tasks/s")

    # Shape 1: more instances help at small scale.
    assert results[(4, 4)].throughput_avg > results[(4, 1)].throughput_avg
    assert results[(16, 16)].throughput_avg > results[(16, 1)].throughput_avg
    # Shape 2: diminishing returns / coordination cost at 1024 nodes —
    # per-instance efficiency collapses relative to small scale.
    gain_small = (results[(16, 16)].throughput_avg
                  / results[(16, 1)].throughput_avg)
    gain_large = (results[(1024, 16)].throughput_avg
                  / max(results[(1024, 1)].throughput_avg, 1e-9))
    assert gain_large < gain_small
    # Shape 3: maximum throughput across the sweep lands near the
    # paper's 930 tasks/s (within a factor-of-two band).
    max_anywhere = max(r.throughput_max for r in results.values())
    assert 465 <= max_anywhere <= 1860
