"""Ablation — the srun concurrency ceiling (DESIGN.md §5.1).

Isolates *which* srun mechanism causes the paper's 50 % utilization:
with the 112-srun ceiling lifted (but controller serialization kept),
utilization recovers to ~100 %, proving the ceiling — not the launch
rate — is the binding constraint of Fig. 4.
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.experiments import ExperimentConfig, run_experiment
from repro.platform import FRONTIER_LATENCIES

from .conftest import run_once


def test_ablation_srun_ceiling(benchmark, emit):
    cfg = ExperimentConfig(exp_id="srun", launcher="srun", workload="dummy",
                           n_nodes=4, duration=180.0)
    out = {}

    def run():
        out["ceiling=112"] = run_experiment(cfg)
        out["ceiling=inf"] = run_experiment(
            cfg, latencies=FRONTIER_LATENCIES.with_overrides(
                srun_ceiling=10_000))
        return out

    run_once(benchmark, run)
    emit("Ablation: srun concurrency ceiling (dummy 180 s on 4 nodes)\n"
         + format_table(
             ["variant", "utilization", "makespan [s]"],
             [(k, f"{100 * r.utilization_cores:.1f} %", round(r.makespan))
              for k, r in out.items()]))

    assert abs(out["ceiling=112"].utilization_cores - 0.50) < 0.02
    # Without the ceiling, srun saturates the 224 cores.
    assert out["ceiling=inf"].utilization_cores > 0.90
    assert out["ceiling=inf"].makespan < out["ceiling=112"].makespan
