"""Ablation — Flux background-load and coordination models (DESIGN.md §5.2).

Two calibration terms shape Fig. 5(b)/Fig. 6:

* the per-run background-load factor (run-to-run variability and its
  degradation with instance size), and
* the per-instance agent coordination penalty ("overhead of managing
  many Flux instances", §4.1.3).

Ablating each shows why the gains from partitioning taper at scale.
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.experiments import ExperimentConfig, run_repetitions
from repro.platform import FRONTIER_LATENCIES

from .conftest import run_once


def test_ablation_flux_contention_terms(benchmark, emit):
    cfg = ExperimentConfig(exp_id="flux_n", launcher="flux", workload="null",
                           n_nodes=64, n_partitions=16, waves=2)
    out = {}

    def run():
        out["full model"] = run_repetitions(cfg, n_reps=2)
        out["no background load"] = run_repetitions(
            cfg, n_reps=2,
            latencies=FRONTIER_LATENCIES.with_overrides(
                flux_load_degradation=0.0, flux_load_cv=0.0))
        out["no coordination cost"] = run_repetitions(
            cfg, n_reps=2,
            latencies=FRONTIER_LATENCIES.with_overrides(
                agent_coord_per_instance=0.0))
        out["neither"] = run_repetitions(
            cfg, n_reps=2,
            latencies=FRONTIER_LATENCIES.with_overrides(
                flux_load_degradation=0.0, flux_load_cv=0.0,
                agent_coord_per_instance=0.0))
        return out

    run_once(benchmark, run)
    emit("Ablation: Flux contention terms (64 nodes / 16 instances, null)\n"
         + format_table(
             ["variant", "avg tasks/s", "max tasks/s"],
             [(k, round(v.throughput_avg, 1), round(v.throughput_max, 1))
              for k, v in out.items()]))

    # Each removed term recovers throughput; both together give the
    # ideal-scaling upper bound.
    assert out["no background load"].throughput_avg \
        >= out["full model"].throughput_avg * 0.9
    assert out["neither"].throughput_avg >= max(
        out["no background load"].throughput_avg,
        out["no coordination cost"].throughput_avg) * 0.9
    assert out["neither"].throughput_avg > out["full model"].throughput_avg
