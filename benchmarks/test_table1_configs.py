"""Table 1 — the experiment configuration matrix.

Regenerates the paper's Table 1 (experiment id, workload, launcher,
nodes/pilot, partitions, task types, task counts, cores/task) from
the programmatic configs, and runs a reduced-scale instance of each
experiment class to verify every configuration is executable.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analytics.report import format_table
from repro.experiments import run_experiment, table1_configs
from repro.platform.profiles import FRONTIER_CORES_PER_NODE
from repro.workloads import task_count

from .conftest import run_once


def test_table1_matrix(benchmark, emit):
    """Print the full Table-1 matrix as configured."""
    rows = run_once(benchmark, _build_matrix_rows)
    emit("Table 1: experiment matrix\n" + format_table(
        ["Exp ID", "workload", "launcher", "#nodes", "#partitions",
         "task types", "#tasks", "#cores/task"], rows))
    # 1 srun + 6 flux_1 + 8 flux_n + 4 dragon + 4 hybrid + 4 impeccable.
    assert len(rows) == 27


def _build_matrix_rows():
    rows = []
    for cfg in table1_configs():
        if cfg.workload == "impeccable":
            tasks = "~550" if cfg.n_nodes == 256 else "~1800"
            cores = "1-7168"
            types = "exec"
        else:
            tasks = task_count(cfg.n_nodes, FRONTIER_CORES_PER_NODE,
                               cfg.waves)
            cores = "1"
            types = "exec & func" if cfg.workload == "mixed" else "exec"
        rows.append((cfg.exp_id, cfg.workload, cfg.launcher, cfg.n_nodes,
                     cfg.n_partitions, types, tasks, cores))
    return rows


def test_table1_configs_all_runnable(benchmark, emit):
    """One reduced-scale run per experiment id proves executability."""
    seen = set()
    results = {}

    def run_all():
        for cfg in table1_configs():
            if cfg.exp_id in seen:
                continue
            seen.add(cfg.exp_id)
            small = cfg.scaled(1)
            if small.n_nodes > 16:
                small = replace(small, n_nodes=16,
                                n_partitions=min(small.n_partitions, 4))
            if small.workload == "impeccable":
                small = replace(small, generations=1)
            results[cfg.exp_id] = run_experiment(small)
        return results

    run_once(benchmark, run_all)
    rows = [(eid, r.n_tasks, r.n_done, f"{r.throughput.avg:.1f}")
            for eid, r in sorted(results.items())]
    emit("Table 1 executability check (reduced scale)\n" + format_table(
        ["Exp ID", "tasks", "done", "avg tasks/s"], rows))
    assert all(r.n_done + r.n_failed == r.n_tasks for r in results.values())
    assert all(r.n_failed == 0 for r in results.values())
