"""Simulator-kernel throughput benchmark (not a paper figure).

Measures how many *simulated* tasks the DES stack pushes through per
wall-clock second on the fixed reference configuration — 64 nodes,
4 Flux partitions, one full null-task load (14,336 tasks) — and
writes the number to ``BENCH_kernel.json`` at the repo root so the
driver can track kernel performance across commits.  The simulated
metrics themselves are deterministic; only the wall rate varies.

See docs/MODEL.md, "Performance model of the simulator itself", for
where the cycles go and what the fast paths are.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import ExperimentConfig, run_experiment

from .conftest import BENCH_ROUNDS, rate_stats, run_once, write_bench

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: The reference point: flux backend, 4 partitions, 64 nodes, 4 waves
#: of null tasks = 64 * 56 * 4 = 14,336 tasks.
CFG = ExperimentConfig(exp_id="perf_kernel", launcher="flux",
                       workload="null", n_nodes=64, n_partitions=4,
                       waves=4, seed=0)


def _rate() -> float:
    result = run_experiment(CFG)
    assert result.n_tasks == 14336
    assert result.n_done == result.n_tasks
    return result.n_tasks / result.wall_seconds


def test_kernel_tasks_per_wall_second(benchmark, emit):
    stats = run_once(benchmark, lambda: rate_stats(_rate))
    rate = stats["median"]

    write_bench(BENCH_FILE,
                {"tasks_per_wall_second": rate,
                 "spread": stats,
                 "rounds": BENCH_ROUNDS})
    emit(f"kernel throughput: {rate:,.0f} simulated tasks / wall second "
         f"(median of {BENCH_ROUNDS} after warmup, round spread "
         f"{stats['min']:,.0f}-{stats['max']:,.0f})\n"
         f"wrote {BENCH_FILE}")
