"""Extension — PRRTE DVM in the launcher design space (§5).

The paper positions PRRTE between srun and Flux: faster bootstrap and
launch than srun (no ceiling, minimal per-task overhead) but no
internal scheduler — RP supplies placement.  This bench places the
PRRTE backend on the same throughput/overhead axes as the paper's
evaluated launchers.
"""

from __future__ import annotations

from repro.analytics import startup_overheads, task_throughput, utilization
from repro.analytics.report import format_table
from repro.core import PartitionSpec, PilotDescription, Session
from repro.platform import frontier
from repro.workloads import dummy_workload, task_count

from .conftest import run_once

N_NODES = 16


def _run(backend: str, duration: float = 0.0):
    session = Session(cluster=frontier(N_NODES), seed=37)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=N_NODES, partitions=(PartitionSpec(backend),)))
    tmgr.add_pilot(pilot)
    n = task_count(N_NODES, 56, 2)
    tasks = tmgr.submit_tasks(dummy_workload(n, duration=duration))
    session.run(tmgr.wait_tasks())
    rate = task_throughput(tasks).avg
    util = utilization(tasks, total_cores=N_NODES * 56)
    bootstrap = startup_overheads(session.profiler)
    boot = bootstrap[0][1] if bootstrap else 0.0
    session.close()
    return rate, util, boot


def test_extension_prrte_design_point(benchmark, emit):
    out = {}

    def run():
        for backend in ("srun", "prrte", "flux"):
            out[backend] = _run(backend)
        return out

    run_once(benchmark, run)
    emit(f"Extension: PRRTE in the launcher design space ({N_NODES} nodes, "
         "null tasks)\n" + format_table(
             ["backend", "avg tasks/s", "bootstrap [s]"],
             [(k, round(v[0], 1), round(v[2], 1)) for k, v in out.items()]))

    srun_rate, _, _ = out["srun"]
    prrte_rate, _, prrte_boot = out["prrte"]
    flux_rate, _, flux_boot = out["flux"]
    # PRRTE launches much faster than srun at this scale (no ceiling,
    # no controller blow-up)...
    assert prrte_rate > 3 * srun_rate
    # ...and bootstraps faster than a Flux instance (no scheduler).
    assert prrte_boot < flux_boot


def test_extension_prrte_utilization(benchmark, emit):
    def run():
        return _run("prrte", duration=180.0)

    _, util, _ = run_once(benchmark, run)
    emit(f"PRRTE dummy(180 s) utilization at {N_NODES} nodes: "
         f"{100 * util:.1f} % (no srun-like ceiling)")
    # Unlike srun's 50 % cap, the DVM saturates the allocation.
    assert util > 0.90
