"""Fig. 5(c) — Dragon (single centralized instance) exec-task throughput.

Paper: ~343 tasks/s at 4 nodes, ~380 at 16 nodes, declining to
~204 tasks/s at 64 nodes (centralized global services); max 622.
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.experiments import config_by_id, run_repetitions

from .conftest import run_once

PAPER_AVG = {4: 343.0, 16: 380.0, 64: 204.0}
NODES = (1, 4, 16, 64)


def test_fig5c_dragon_throughput(benchmark, emit):
    results = {}

    def sweep():
        for n in NODES:
            cfg = config_by_id("dragon", n_nodes=n)
            results[n] = run_repetitions(cfg, n_reps=3)
        return results

    run_once(benchmark, sweep)

    rows = [(n, PAPER_AVG.get(n, "-"),
             round(results[n].throughput_avg, 1),
             round(results[n].throughput_max, 1)) for n in NODES]
    emit("Fig. 5(c): Dragon exec-task throughput vs nodes (null tasks)\n"
         + format_table(["nodes", "paper avg/s", "avg/s", "max/s"], rows))

    # Shape: roughly flat at small/medium scale...
    assert abs(results[4].throughput_avg
               - results[16].throughput_avg) < 0.35 * results[4].throughput_avg
    # ...and lower at 64 nodes (centralized GS contention).
    assert results[64].throughput_avg < results[16].throughput_avg
    # Magnitudes near the paper's three anchors (within 35 %).
    for n, paper in PAPER_AVG.items():
        measured = results[n].throughput_avg
        assert abs(measured - paper) / paper < 0.35, (n, measured)
