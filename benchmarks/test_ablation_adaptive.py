"""Ablation — IMPECCABLE adaptive task-count scheduling (DESIGN.md §5.5).

With adaptive scheduling, scalable stages size themselves from idle
resources at submission time (§4.2: "opportunistically exploit idle
compute resources").  Ablating it yields fewer tasks for a similar
makespan, i.e. lower science throughput per allocation.
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.experiments import ExperimentConfig, run_experiment

from .conftest import run_once


def test_ablation_adaptive_scheduling(benchmark, emit):
    out = {}

    def run():
        for adaptive in (True, False):
            cfg = ExperimentConfig(
                exp_id="impeccable_flux", launcher="flux",
                workload="impeccable", n_nodes=256, adaptive=adaptive)
            out[adaptive] = run_experiment(cfg)
        return out

    run_once(benchmark, run)
    rows = [(("adaptive" if k else "static"), r.n_tasks, round(r.makespan),
             round(r.n_tasks / r.makespan * 3600, 1),
             f"{100 * r.utilization_cores:.1f} %")
            for k, r in out.items()]
    emit("Ablation: IMPECCABLE adaptive task counts (flux, 256 nodes)\n"
         + format_table(["scheduling", "tasks", "makespan [s]",
                         "tasks/hour", "cpu util"], rows))

    adaptive, static = out[True], out[False]
    assert adaptive.n_tasks > static.n_tasks
    # The extra adaptive tasks ride on idle resources: science
    # throughput (tasks per allocation-hour) holds within a few
    # percent while total output grows.
    assert (adaptive.n_tasks / adaptive.makespan
            > static.n_tasks / static.makespan * 0.95)
    assert adaptive.utilization_cores >= static.utilization_cores - 0.02
