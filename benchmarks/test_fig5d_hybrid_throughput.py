"""Fig. 5(d) — hybrid flux+dragon throughput on mixed workloads.

Paper: throughput grows with nodes and instances; at 64 nodes the
maximum reaches 1,547 tasks/s — the upper bound of RP's task
management subsystem.  Executables run via Flux, Python functions via
Dragon, on equal partitions.
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.experiments import ExperimentConfig, run_repetitions

from .conftest import run_once

PAPER_PEAK_64 = 1547.0
#: (nodes, instances per runtime)
SWEEP = ((2, 1), (4, 2), (16, 4), (64, 8))


def test_fig5d_hybrid_throughput(benchmark, emit):
    results = {}

    def sweep():
        for n, parts in SWEEP:
            cfg = ExperimentConfig(
                exp_id="flux+dragon", launcher="flux+dragon",
                workload="mixed", n_nodes=n, n_partitions=parts,
                duration=0.0)
            results[n] = run_repetitions(cfg, n_reps=3)
        return results

    run_once(benchmark, sweep)

    rows = [(n, parts, round(results[n].throughput_avg, 1),
             round(results[n].throughput_max, 1))
            for n, parts in SWEEP]
    emit("Fig. 5(d): flux+dragon mixed-workload throughput\n"
         + format_table(["nodes", "inst/runtime", "avg tasks/s",
                         "max tasks/s"], rows)
         + f"\npaper anchor: max {PAPER_PEAK_64} tasks/s at 64 nodes")

    # Shape: throughput grows with node/instance count.
    assert results[64].throughput_avg > results[2].throughput_avg
    # Peak at 64 nodes approaches the RP task-management bound.
    assert results[64].throughput_max > 1000.0
    assert results[64].throughput_max < 2500.0
    # The hybrid outperforms what either backend sustains alone at the
    # same scale (Flux ~200/s, Dragon ~204/s at 64 nodes).
    assert results[64].throughput_max > 2 * 204.0
