"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and
prints the measured rows next to the paper-reported values.  The
pytest-benchmark fixture times the *harness run* (one round — the
simulations are deterministic); the scientific output is the printed
table, echoed to stdout with ``-s`` or captured in the benchmark
report.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Benchmark a deterministic simulation exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def emit(capsys):
    """Print through pytest's capture so tables land in the report."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit
