"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and
prints the measured rows next to the paper-reported values.  The
pytest-benchmark fixture times the *harness run* (one round — the
simulations are deterministic); the scientific output is the printed
table, echoed to stdout with ``-s`` or captured in the benchmark
report.
"""

from __future__ import annotations

import os

import pytest

#: Worker-process count for the sweep helpers below, taken from the
#: ``REPRO_BENCH_PARALLEL`` environment variable (``auto`` = one per
#: core, an integer = that many workers).  Unset means serial — the
#: benchmarks time identically to the paper-reproduction runs unless
#: parallelism is asked for explicitly.
BENCH_PARALLEL = os.environ.get("REPRO_BENCH_PARALLEL")


def run_once(benchmark, fn):
    """Benchmark a deterministic simulation exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def write_bench(path, doc) -> None:
    """Write a ``BENCH_*.json`` document crash-safely.

    Atomic temp-file-and-rename (see :mod:`repro.resilience.atomic`),
    so a benchmark run killed mid-write leaves the previous baseline
    intact instead of a truncated JSON that breaks the regression
    gate.  Key order and layout match the old direct writes.
    """
    import json

    from repro.resilience.atomic import atomic_write_text

    atomic_write_text(path, json.dumps(doc, indent=2) + "\n")


#: Measurement rounds for the ``test_perf_*`` wall-clock guards,
#: overridable via ``REPRO_BENCH_ROUNDS`` (CI uses the default; 1
#: gives the old single-shot behaviour for quick local runs).
BENCH_ROUNDS = max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "3")))


def rate_stats(fn, rounds: int = None, warmup: bool = True) -> dict:
    """Per-round spread of ``rounds`` calls to ``fn`` after one warmup.

    The perf guards compare wall-clock rates, and single rounds on a
    shared machine routinely spread by 10-20% (allocator state, page
    cache, scheduler jitter).  One warmup absorbs the cold-start
    costs; the median of the remaining rounds is robust to a single
    slow outlier, which is the dominant noise shape observed (runs
    are only ever *slowed down* by interference, never sped up).

    Returns ``{"min", "median", "max", "rounds", "store"}`` so the
    BENCH JSONs record the whole spread — when the regression gate
    trips, the baseline's min/max show whether the median moved
    outside the machine's observed noise band or the run was just
    unlucky.  ``store`` is the run-store counter delta across the
    measured rounds (hits/misses/stored, from
    :data:`repro.store.STATS`): an all-zero delta *proves* the
    numbers were produced cache-cold, with no memoized simulation
    quietly inflating a rate.
    """
    import statistics

    from repro.store import STATS

    if rounds is None:
        rounds = BENCH_ROUNDS
    if warmup:
        fn()
    before = STATS.snapshot()
    rates = sorted(fn() for _ in range(rounds))
    return {
        "min": rates[0],
        "median": statistics.median(rates),
        "max": rates[-1],
        "rounds": rounds,
        "store": STATS.delta(before),
    }


def median_rate(fn, rounds: int = None, warmup: bool = True) -> float:
    """Median rate only; see :func:`rate_stats` for the spread."""
    return rate_stats(fn, rounds=rounds, warmup=warmup)["median"]


def repetitions(cfg, n_reps):
    """``run_repetitions`` honoring ``REPRO_BENCH_PARALLEL``.

    Parallel and serial aggregates are identical (each repetition is
    an independent seeded simulation); only wall time differs.
    """
    from repro.experiments import run_repetitions

    return run_repetitions(cfg, n_reps=n_reps, parallel=BENCH_PARALLEL)


def sweep_configs(cfgs):
    """Run a list of configs, fanned out when ``REPRO_BENCH_PARALLEL``
    is set; returns results in input order."""
    from repro.experiments import run_many

    if BENCH_PARALLEL is None:
        from repro.experiments import run_experiment

        return [run_experiment(c) for c in cfgs]
    return run_many(cfgs, jobs=BENCH_PARALLEL)


@pytest.fixture
def emit(capsys):
    """Print through pytest's capture so tables land in the report."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit
