"""Ablation — dynamic (load-aware) backend selection (extension).

The paper's future work (§6): "dynamic backend selection based on
workload characteristics".  On a skewed mixed workload (many more
executables than the Flux partition can absorb while Dragon sits
partly idle), dynamic routing spills executables to the less-loaded
capable backend and shortens the launch window versus the paper's
static policy.
"""

from __future__ import annotations

from repro.analytics import task_throughput
from repro.analytics.report import format_table
from repro.core import PartitionSpec, PilotDescription, Session
from repro.platform import frontier
from repro.workloads import dummy_workload

from .conftest import run_once

N_NODES = 16


def _run(routing: str) -> float:
    session = Session(cluster=frontier(N_NODES), seed=29)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=N_NODES, routing=routing,
        partitions=(PartitionSpec("flux", n_instances=2, nodes=8),
                    PartitionSpec("srun", nodes=8))))
    tmgr.add_pilot(pilot)
    # Executable-only burst: static routing sends everything to Flux.
    tasks = tmgr.submit_tasks(dummy_workload(4000, duration=0.0))
    session.run(tmgr.wait_tasks())
    rate = task_throughput(tasks).avg
    session.close()
    return rate


def test_ablation_dynamic_routing(benchmark, emit):
    out = {}

    def run():
        out["static"] = _run("static")
        out["dynamic"] = _run("dynamic")
        return out

    run_once(benchmark, run)
    emit("Ablation: dynamic backend selection (16 nodes, 4000 exec null "
         "tasks, flux+srun)\n" + format_table(
             ["routing", "avg tasks/s"],
             [(k, round(v, 1)) for k, v in out.items()]))

    # Load-aware spilling uses both backends and beats static routing
    # on this skewed workload.
    assert out["dynamic"] > out["static"]
