"""Fig. 5(a) — srun task throughput vs. node count.

Paper: srun peaks at 152 tasks/s on a single node, degrades to
61 tasks/s at 4 nodes and keeps declining with scale (controller
serialization: per-launch service time grows with allocation size).
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.experiments import config_by_id, run_repetitions

from .conftest import run_once

#: node count -> paper-reported avg throughput [tasks/s] (declared
#: values: 152 at 1 node, 61 at 4 nodes; larger scales only described
#: qualitatively as "continues to decline").
PAPER_AVG = {1: 152.0, 4: 61.0}
NODES = (1, 2, 4, 16)


def test_fig5a_srun_throughput(benchmark, emit):
    results = {}

    def sweep():
        for n in NODES:
            cfg = config_by_id("srun", n_nodes=n, waves=2)
            results[n] = run_repetitions(cfg, n_reps=3)
        return results

    run_once(benchmark, sweep)

    rows = []
    for n in NODES:
        agg = results[n]
        rows.append((n, PAPER_AVG.get(n, "-"),
                     round(agg.throughput_avg, 1),
                     round(agg.throughput_max, 1)))
    emit("Fig. 5(a): srun throughput vs nodes (null tasks)\n"
         + format_table(["nodes", "paper avg/s", "avg/s", "max/s"], rows))

    # Shape: monotone decline with node count.
    avgs = [results[n].throughput_avg for n in NODES]
    assert all(a > b for a, b in zip(avgs, avgs[1:]))
    # Magnitudes near the two published anchors.
    assert abs(results[1].throughput_avg - PAPER_AVG[1]) / PAPER_AVG[1] < 0.25
    assert abs(results[4].throughput_avg - PAPER_AVG[4]) / PAPER_AVG[4] < 0.25
