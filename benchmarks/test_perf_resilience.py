"""Resilience-layer overhead guard (not a paper figure).

Two costs are pinned to ``BENCH_resilience.json``:

* **Checkpoint overhead** — the kernel-benchmark reference workload
  run plain and with durable checkpointing at the default cadence
  (``checkpoint_sim_interval=60``).  The ISSUE's budget is <= 10%:
  a crash-safe run must stay within a tenth of the unprotected run,
  or nobody will leave checkpointing on.
* **Recovery latency** — wall seconds for a supervised
  :class:`~repro.shard.coordinator.ProcessHost` to notice a
  SIGKILLed worker, respawn it, and replay the journal.  The crash
  path is detected by pid polling, not by waiting out the hang
  deadline, so it should be milliseconds.

As with the fault-layer guard, wall-clock ratios on a shared machine
are noisy — and they *drift* (rates fall over a session), so plain
and checkpointed rounds are interleaved and each checkpointed round
is judged against its neighboring plain rounds.  When the per-round
overheads disagree by more than the allowance the machine cannot
certify either way and the assertion is skipped — the recorded JSON
tracks the trend across commits either way (see
``tools/bench_gate.py``, which gates ``checkpoint_overhead`` as a
ceiling metric).
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

from repro.experiments import ExperimentConfig, run_experiment
from repro.platform.latency import FRONTIER_LATENCIES
from repro.resilience import ResilienceSpec
from repro.resilience.supervisor import SupervisorPolicy
from repro.shard.coordinator import ProcessHost
from repro.shard.protocol import InstanceSpec, ShardConfig

from .conftest import BENCH_ROUNDS, run_once, write_bench

BENCH_FILE = Path(__file__).resolve().parent.parent / \
    "BENCH_resilience.json"

CFG = ExperimentConfig(exp_id="perf_resilience", launcher="srun",
                       workload="null", n_nodes=64, waves=2, seed=0)

#: The ISSUE's checkpoint budget: crash safety at the default cadence
#: must cost no more than a tenth of the run.
MAX_CHECKPOINT_OVERHEAD = 0.10

#: Noise certificate: allowed spread between the per-round overhead
#: estimates (mirrors the fault-layer benchmark's allowance).
MAX_PLAIN_SPREAD = 0.10


def _rate(resilience) -> float:
    wall0 = time.perf_counter()
    result = run_experiment(CFG, resilience=resilience)
    wall = time.perf_counter() - wall0
    assert result.n_done == result.n_tasks > 0
    return result.n_tasks / wall


def test_checkpoint_overhead(benchmark, emit, tmp_path):
    import statistics

    spec = ResilienceSpec(checkpoint_dir=str(tmp_path / "ckpt"))

    def _measure():
        # Shared machines drift — rates fall monotonically over a
        # session (frequency scaling, cache pressure), so bracketing
        # legs mis-attribute the drift to the checkpoint layer.
        # Interleave instead: p c p c ... p, and compare each
        # checkpointed round against the *average of its neighboring
        # plain rounds*, which cancels linear drift exactly.
        _rate(None)  # warmup
        plain = [_rate(None)]
        overheads = []
        for _ in range(BENCH_ROUNDS):
            checked = _rate(spec)
            plain.append(_rate(None))
            local = (plain[-2] + plain[-1]) / 2.0
            overheads.append(1.0 - checked / local)
        return plain, overheads

    plain, overheads = run_once(benchmark, _measure)
    # Certify from the closest-agreeing pair of rounds: interference
    # only ever *adds* overhead, so a single slow outlier round must
    # not veto an otherwise clean measurement.
    srt = sorted(overheads)
    if len(srt) == 1:
        jitter, overhead = 0.0, max(0.0, srt[0])
    else:
        jitter, lo = min((srt[i + 1] - srt[i], srt[i])
                         for i in range(len(srt) - 1))
        overhead = max(0.0, lo + jitter / 2.0)
    drift = abs(plain[0] - plain[-1]) / max(plain)

    write_bench(BENCH_FILE, {
        "tasks_per_wall_second_plain": statistics.median(plain),
        "checkpoint_overhead": overhead,
        "checkpoint_sim_interval": spec.checkpoint_sim_interval,
        "overhead_per_round": overheads,
        "plain_drift": drift,
        "rounds": BENCH_ROUNDS,
    })

    emit(f"plain: {statistics.median(plain):,.0f} tasks/s  "
         f"checkpoint overhead {overhead:+.1%} at "
         f"{spec.checkpoint_sim_interval:.0f}s sim cadence "
         f"(per-round {', '.join(f'{o:+.1%}' for o in overheads)}; "
         f"plain drift {drift:.1%})\n"
         f"wrote {BENCH_FILE}")

    if jitter > MAX_PLAIN_SPREAD:
        import pytest

        pytest.skip(f"per-round overheads spread by {jitter:.1%} "
                    f"(> {MAX_PLAIN_SPREAD:.0%}); machine too noisy to "
                    f"certify checkpoint overhead")
    assert overhead <= MAX_CHECKPOINT_OVERHEAD, (
        f"checkpointing at the default cadence costs {overhead:.1%} "
        f"(budget {MAX_CHECKPOINT_OVERHEAD:.0%})")


def _recovery_seconds() -> float:
    """Kill a supervised shard worker mid-conversation and time the
    respawn-and-replay to a collected window result."""
    config = ShardConfig(
        shard_index=0, seed=7, start_time=0.0,
        latencies=FRONTIER_LATENCIES, cluster_name="frontier",
        cores_per_node=8, gpus_per_node=0, mem_gb_per_node=64.0,
        instances=(InstanceSpec(0, "agent.0.flux.000", (0, 1), "fcfs"),),
        lean=False, trace=True, observe=False, faults=None,
        heartbeat=0.1)
    policy = SupervisorPolicy(supervise=True, heartbeat_interval=0.1,
                              hang_deadline=5.0, max_respawns=2,
                              respawn_backoff=0.0)
    host = ProcessHost(config, policy=policy)
    try:
        host.post(1.0, [])
        host.collect()
        os.kill(host.proc.pid, signal.SIGKILL)
        t0 = time.monotonic()
        host.post(2.0, [])
        host.collect()
        return time.monotonic() - t0
    finally:
        host.close()


def test_supervised_recovery_latency(benchmark, emit):
    latencies = run_once(
        benchmark,
        lambda: sorted(_recovery_seconds() for _ in range(BENCH_ROUNDS)))
    median = latencies[len(latencies) // 2]

    doc = json.loads(BENCH_FILE.read_text()) if BENCH_FILE.is_file() else {}
    doc.update({
        "recovery_seconds_median": median,
        "recovery_seconds_max": latencies[-1],
    })
    write_bench(BENCH_FILE, doc)

    emit(f"worker kill -> respawn+replay: median {median * 1e3:.1f}ms, "
         f"max {latencies[-1] * 1e3:.1f}ms over {len(latencies)} rounds\n"
         f"updated {BENCH_FILE}")

    # Crash detection polls the pid — recovery must not wait out the
    # hang deadline (5s above).  Generous bound: fork + config resend
    # + two-window replay in a couple of seconds even under load.
    assert median < 2.0, (
        f"supervised recovery took {median:.2f}s — the crash path is "
        f"waiting on a deadline instead of polling")
