"""Extension — identical-workload backend comparison via trace replay.

Records one Flux run's task arrivals, then replays the *same*
workload (same arrival times, durations, shapes) through each
launcher.  This is the controlled-comparison methodology the paper's
Table-1 experiments approximate with regenerated workloads, made
exact.
"""

from __future__ import annotations

from repro.analytics import makespan, task_throughput
from repro.analytics.report import format_table
from repro.core import PartitionSpec, PilotDescription, Session
from repro.platform import frontier
from repro.workloads import ReplayRunner, dummy_workload, workload_from_trace

from .conftest import run_once

N_NODES = 8


def _record():
    """Source run: 2,000 short tasks, bursty submission."""
    session = Session(cluster=frontier(N_NODES), seed=19)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=N_NODES, partitions=(PartitionSpec("flux", n_instances=2),)))
    tmgr.add_pilot(pilot)

    def bursts(env):
        for _ in range(4):
            tmgr.submit_tasks(dummy_workload(500, duration=10.0))
            yield env.timeout(30.0)

    session.run(session.env.process(bursts(session.env)))
    session.run(tmgr.wait_tasks())
    return session


def _replay(workload, backend):
    session = Session(cluster=frontier(N_NODES), seed=20)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    parts = ((PartitionSpec(backend, n_instances=2),)
             if backend == "flux" else (PartitionSpec(backend),))
    pilot = pmgr.submit_pilots(PilotDescription(nodes=N_NODES,
                                                partitions=parts))
    tmgr.add_pilot(pilot)
    runner = ReplayRunner(session, tmgr, workload)
    session.run(runner.start())
    stats = task_throughput(runner.tasks)
    span = makespan(runner.tasks)
    done = sum(t.succeeded for t in runner.tasks)
    session.close()
    return done, stats.avg, span


def test_extension_replay_comparison(benchmark, emit):
    out = {}

    def run():
        source = _record()
        workload = workload_from_trace(source.profiler)
        source.close()
        for backend in ("flux", "prrte", "srun"):
            out[backend] = _replay(workload, backend)
        return out

    run_once(benchmark, run)
    emit("Extension: identical replayed workload (2,000 x 10 s tasks, "
         f"{N_NODES} nodes)\n" + format_table(
             ["backend", "done", "avg tasks/s", "makespan [s]"],
             [(k, v[0], round(v[1], 1), round(v[2], 1))
              for k, v in out.items()]))

    # Everything completes everywhere (same workload, enough resources).
    assert all(v[0] == 2000 for v in out.values())
    # On identical input, the launch-path ordering shows directly:
    # flux and prrte beat srun's makespan.
    assert out["flux"][2] < out["srun"][2]
    assert out["prrte"][2] < out["srun"][2]
