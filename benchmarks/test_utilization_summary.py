"""Utilization summary (§4.1.3, §4.1.5, §4.2).

* flux_n: utilization >= 94.5 % for all configurations up to 64
  nodes; drops (to ~75.4 % in the paper) at 1024 nodes / 16 instances
  where the agent feed rate, not the resource pool, limits progress.
* flux+dragon: >= 99.6 %, some configurations reaching 100 %.
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.experiments import ExperimentConfig, run_experiment

from .conftest import run_once


def test_fluxn_utilization_small_scale(benchmark, emit):
    results = {}

    def run():
        for n, p in ((16, 4), (64, 4), (64, 16)):
            cfg = ExperimentConfig(exp_id="flux_n", launcher="flux",
                                   workload="dummy", n_nodes=n,
                                   n_partitions=p, duration=180.0)
            results[(n, p)] = run_experiment(cfg)
        return results

    run_once(benchmark, run)
    rows = [(n, p, ">=94.5 %", f"{100 * r.utilization_cores:.1f} %")
            for (n, p), r in results.items()]
    emit("flux_n utilization at <= 64 nodes\n" + format_table(
        ["nodes", "instances", "paper", "measured"], rows))
    for r in results.values():
        assert r.utilization_cores >= 0.945


def test_fluxn_utilization_degrades_at_1024(benchmark, emit):
    """At 1024 nodes / 16 instances the launch path cannot keep 57,344
    cores fed with 180 s tasks: utilization falls well below the
    small-scale >=94.5 % regime (paper: 75.4 %)."""

    def run():
        cfg = ExperimentConfig(exp_id="flux_n", launcher="flux",
                               workload="dummy", n_nodes=1024,
                               n_partitions=16, duration=180.0, waves=1)
        return run_experiment(cfg)

    result = run_once(benchmark, run)
    emit("flux_n utilization at 1024 nodes / 16 instances\n" + format_table(
        ["paper", "measured"],
        [("75.4 %", f"{100 * result.utilization_cores:.1f} %")]))
    assert result.utilization_cores < 0.945
    assert result.utilization_cores > 0.40


def test_hybrid_utilization(benchmark, emit):
    results = {}

    def run():
        for n, p in ((16, 4), (64, 8)):
            cfg = ExperimentConfig(exp_id="hybrid", launcher="flux+dragon",
                                   workload="mixed", n_nodes=n,
                                   n_partitions=p, duration=360.0)
            results[(n, p)] = run_experiment(cfg)
        return results

    run_once(benchmark, run)
    rows = [(n, p, ">=99.6 %", f"{100 * r.utilization_cores:.2f} %")
            for (n, p), r in results.items()]
    emit("flux+dragon utilization\n" + format_table(
        ["nodes", "inst/runtime", "paper", "measured"], rows))
    for r in results.values():
        assert r.utilization_cores >= 0.985
