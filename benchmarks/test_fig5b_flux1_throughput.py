"""Fig. 5(b) — single-Flux-instance throughput vs. node count.

Paper: average throughput grows from ~28 tasks/s at 1 node to nearly
300 tasks/s at 1024 nodes; peak reaches 744 tasks/s, with substantial
variability across repetitions.
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.experiments import config_by_id, run_repetitions

from .conftest import run_once

PAPER_AVG_1_NODE = 28.0
PAPER_AVG_1024_NODES = 300.0
PAPER_PEAK = 744.0

#: (nodes, waves, reps): full 4-wave workloads up to 64 nodes; at 256
#: and 1024 nodes one wave keeps the sweep tractable (throughput is a
#: launch-window metric, so wave count does not change the rate).
SWEEP = ((1, 4, 3), (4, 4, 3), (16, 4, 3), (64, 4, 3), (256, 1, 2),
         (1024, 1, 2))


def test_fig5b_flux1_throughput(benchmark, emit):
    results = {}

    def sweep():
        for n, waves, reps in SWEEP:
            cfg = config_by_id("flux_1", n_nodes=n, waves=waves)
            results[n] = run_repetitions(cfg, n_reps=reps)
        return results

    run_once(benchmark, sweep)

    rows = [(n, round(results[n].throughput_avg, 1),
             round(results[n].throughput_max, 1))
            for n, _, _ in SWEEP]
    emit("Fig. 5(b): single Flux instance throughput vs nodes (null tasks)\n"
         + format_table(["nodes", "avg tasks/s", "max tasks/s"], rows)
         + f"\npaper anchors: ~{PAPER_AVG_1_NODE}/s @1 node, "
           f"~{PAPER_AVG_1024_NODES}/s avg @1024 nodes, peak {PAPER_PEAK}/s")

    # Shape: strong positive scaling with node count.
    assert results[1024].throughput_avg > 5 * results[1].throughput_avg
    # Anchors within a factor-of-two band.
    assert 14 <= results[1].throughput_avg <= 56
    assert 150 <= results[1024].throughput_avg <= 600
    # A single instance sustains high peak rates at scale.
    assert results[1024].throughput_max > 300
