"""Microbenchmarks — component-level middleware costs.

The paper's null workloads "stress only the middleware stack and
reveal its internal throughput limits" (§4).  These microbenchmarks
measure each serialized stage of our stack in isolation, giving the
per-component cost table that explains the end-to-end rates:

* agent dispatch (RP task management),
* Flux ingest and lane spawn,
* Dragon global services (exec vs function path),
* slurmctld launch RPC and PRRTE DVM launch.
"""

from __future__ import annotations

import pytest

from repro.analytics.report import format_table
from repro.platform import DETERMINISTIC_LATENCIES, generic
from repro.sim import Environment, RngStreams

from .conftest import run_once


def test_microbench_component_costs(benchmark, emit):
    lat = DETERMINISTIC_LATENCIES
    rows = {}

    def run():
        # Direct model evaluation at reference scales (deterministic).
        rows["agent dispatch @64 nodes"] = (
            lat.agent_dispatch_base + 64 * lat.agent_dispatch_per_node)
        rows["flux ingest"] = lat.flux_ingest_cost
        rows["flux lane spawn (1 lane)"] = 1.0 / lat.flux_lane_rate
        rows["dragon GS exec @4 nodes"] = (
            lat.dragon_gs_exec_cost * (1 + 4 * lat.dragon_gs_pernode_penalty))
        rows["dragon GS func @4 nodes"] = (
            lat.dragon_func_cost * (1 + 4 * lat.dragon_func_pernode_penalty))
        rows["slurmctld launch @4 nodes"] = (
            lat.srun_ctl_base + 4 * lat.srun_ctl_per_node
            + 8.0 * lat.srun_ctl_per_node15)
        rows["prrte DVM launch @4 nodes"] = (
            lat.prrte_launch_cost + 4 * lat.prrte_launch_per_node)
        return rows

    run_once(benchmark, run)
    emit("Microbench: per-task middleware costs (deterministic model)\n"
         + format_table(
             ["stage", "cost [ms]", "ceiling [tasks/s]"],
             [(k, round(1e3 * v, 3), round(1.0 / v, 1))
              for k, v in rows.items()]))

    # The ordering that produces the paper's end-to-end results:
    # dragon-func < agent < flux-ingest < dragon-exec < prrte < srun
    # per-task costs.
    assert rows["dragon GS func @4 nodes"] < rows["flux ingest"]
    assert rows["flux ingest"] < rows["dragon GS exec @4 nodes"]
    assert rows["dragon GS exec @4 nodes"] < rows["prrte DVM launch @4 nodes"]
    assert (rows["prrte DVM launch @4 nodes"]
            < rows["slurmctld launch @4 nodes"])


def test_microbench_measured_vs_model(benchmark, emit):
    """The simulated Flux ingest pipeline hits its modeled ceiling."""
    from repro.flux import FluxInstance, Jobspec

    lat = DETERMINISTIC_LATENCIES
    out = {}

    def run():
        env = Environment()
        rng = RngStreams(0)
        alloc = generic(64, cores_per_node=56).allocate_nodes(64)
        inst = FluxInstance(env, alloc, lat, rng, instance_id="micro")
        env.run(env.process(inst.start()))
        jobs = [inst.submit(Jobspec(command="x", duration=0.0))
                for _ in range(3000)]
        env.run()
        starts = sorted(j.start_time for j in jobs)
        out["rate"] = (len(starts) - 1) / (starts[-1] - starts[0])
        out["model"] = inst.n_lanes * lat.flux_lane_rate
        return out

    run_once(benchmark, run)
    emit(f"Flux 64-node instance: measured {out['rate']:.1f} tasks/s vs "
         f"lane-model {out['model']:.1f} tasks/s")
    assert out["rate"] == pytest.approx(out["model"], rel=0.05)
