"""Ablation — task-type-aware routing on/off (DESIGN.md §5.4).

The hybrid configuration's value comes from sending each task type to
the backend matching its execution model.  Forcing the whole mixed
workload onto a single backend (all-to-flux or all-to-dragon) loses
throughput relative to routed execution on the same allocation.
"""

from __future__ import annotations

from typing import Optional

from repro.analytics import task_throughput
from repro.analytics.report import format_table
from repro.core import PartitionSpec, PilotDescription, Session
from repro.platform import frontier
from repro.workloads import mixed_workload

from .conftest import run_once

N_NODES = 16
N_PARTS = 4


def _run(force_backend: Optional[str]) -> float:
    session = Session(cluster=frontier(N_NODES), seed=23)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=N_NODES,
        partitions=(PartitionSpec("flux", n_instances=N_PARTS),
                    PartitionSpec("dragon", n_instances=N_PARTS))))
    tmgr.add_pilot(pilot)
    descs = mixed_workload(1500, 1500, duration=0.0)
    if force_backend is not None:
        from dataclasses import replace

        descs = [replace(d, backend=force_backend) for d in descs]
    tasks = tmgr.submit_tasks(descs)
    session.run(tmgr.wait_tasks())
    rate = task_throughput(tasks).avg
    session.close()
    return rate


def test_ablation_routing(benchmark, emit):
    out = {}

    def run():
        out["routed (flux+dragon)"] = _run(None)
        out["all-to-flux"] = _run("flux")
        out["all-to-dragon"] = _run("dragon")
        return out

    run_once(benchmark, run)
    emit("Ablation: task-type-aware routing (16 nodes, 3000 mixed null "
         "tasks)\n" + format_table(
             ["policy", "avg tasks/s"],
             [(k, round(v, 1)) for k, v in out.items()]))

    # Routing beats forcing everything through Flux (the slower path
    # for half the workload).
    assert out["routed (flux+dragon)"] > out["all-to-flux"]
