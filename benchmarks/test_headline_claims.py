"""Headline claims from the abstract / §6.

* RP+Flux sustains up to 930 tasks/s (multi-instance).
* RP+Flux+Dragon exceeds 1,500 tasks/s at >= 99.6 % utilization.
* srun peaks at 152 tasks/s (1 node) and degrades with scale
  (61 tasks/s at 4 nodes), with utilization below 50 %.
* For IMPECCABLE, RP+Flux reduces makespan by 30-60 % relative to
  srun/Slurm on up to 1,024 nodes.
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.experiments import (
    ExperimentConfig,
    config_by_id,
    run_experiment,
    run_repetitions,
)

from .conftest import run_once


def test_headline_throughput_ordering(benchmark, emit):
    """srun << flux_n < hybrid, with the paper's magnitudes."""
    out = {}

    def run():
        out["srun_1"] = run_repetitions(
            config_by_id("srun", n_nodes=1, waves=2), n_reps=3)
        out["srun_4"] = run_repetitions(
            config_by_id("srun", n_nodes=4, waves=2), n_reps=3)
        out["flux_n"] = run_repetitions(
            ExperimentConfig(exp_id="flux_n", launcher="flux",
                             workload="null", n_nodes=64, n_partitions=16),
            n_reps=3)
        out["hybrid"] = run_repetitions(
            ExperimentConfig(exp_id="hybrid", launcher="flux+dragon",
                             workload="mixed", n_nodes=64, n_partitions=8,
                             duration=0.0), n_reps=3)
        return out

    run_once(benchmark, run)
    emit("Headline throughput claims\n" + format_table(
        ["config", "paper", "avg/s", "max/s"],
        [("srun @1 node", "152/s", round(out["srun_1"].throughput_avg, 1),
          round(out["srun_1"].throughput_max, 1)),
         ("srun @4 nodes", "61/s", round(out["srun_4"].throughput_avg, 1),
          round(out["srun_4"].throughput_max, 1)),
         ("flux 16 inst @64 nodes", "<=930/s",
          round(out["flux_n"].throughput_avg, 1),
          round(out["flux_n"].throughput_max, 1)),
         ("flux+dragon @64 nodes", ">1500/s peak",
          round(out["hybrid"].throughput_avg, 1),
          round(out["hybrid"].throughput_max, 1))]))

    assert 110 <= out["srun_1"].throughput_avg <= 190
    assert 45 <= out["srun_4"].throughput_avg <= 80
    assert out["flux_n"].throughput_max > out["srun_1"].throughput_max
    assert out["hybrid"].throughput_max > 1000
    assert out["hybrid"].throughput_max > out["flux_n"].throughput_max


def test_headline_utilization(benchmark, emit):
    """srun pinned at 50 %; hybrid at ~99.6-100 %."""
    out = {}

    def run():
        out["srun"] = run_experiment(ExperimentConfig(
            exp_id="srun", launcher="srun", workload="dummy", n_nodes=4,
            duration=180.0))
        out["hybrid"] = run_experiment(ExperimentConfig(
            exp_id="hybrid", launcher="flux+dragon", workload="mixed",
            n_nodes=16, n_partitions=4, duration=360.0))
        return out

    run_once(benchmark, run)
    emit("Headline utilization claims\n" + format_table(
        ["config", "paper", "measured"],
        [("srun dummy(180) @4 nodes", "50 %",
          f"{100 * out['srun'].utilization_cores:.1f} %"),
         ("flux+dragon dummy(360) @16 nodes", ">=99.6 %",
          f"{100 * out['hybrid'].utilization_cores:.2f} %")]))

    assert abs(out["srun"].utilization_cores - 0.50) < 0.02
    assert out["hybrid"].utilization_cores > 0.985


def test_headline_impeccable_makespan_reduction(benchmark, emit):
    """30-60 % makespan reduction at 1024 nodes."""
    out = {}

    def run():
        for launcher in ("srun", "flux"):
            out[launcher] = run_experiment(ExperimentConfig(
                exp_id=f"impeccable_{launcher}", launcher=launcher,
                workload="impeccable", n_nodes=1024))
        return out

    run_once(benchmark, run)
    reduction = 1.0 - out["flux"].makespan / out["srun"].makespan
    emit("Headline IMPECCABLE claim (1024 nodes)\n" + format_table(
        ["backend", "makespan [s]"],
        [("srun", round(out["srun"].makespan)),
         ("flux", round(out["flux"].makespan)),
         ("reduction", f"{100 * reduction:.0f} % (paper: 30-60 %)")]))
    assert 0.30 <= reduction <= 0.70
