"""Observability overhead guard (not a paper figure).

Runs the kernel-benchmark reference configuration (64 nodes, 4 Flux
partitions, 14,336 null tasks) three ways — observability disabled,
enabled, and disabled-again — and writes the measured rates to
``BENCH_observability.json``.  The contract under test is the ISSUE's
"near-free when disabled" requirement: a session that never asked for
observability must run the same hot kernel loops as before the layer
existed.

Wall-clock ratios on a shared machine are noisy, so the disabled
overhead is asserted against the *better* of the two disabled rounds
with a generous noise allowance; the real regression tracking happens
on the recorded JSON across commits.  The enabled run has no pass
bound (instrumentation is allowed to cost), but its slowdown is
recorded for the same tracking.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments import ExperimentConfig, run_experiment

from .conftest import BENCH_ROUNDS, rate_stats, run_once, write_bench

BENCH_FILE = Path(__file__).resolve().parent.parent / \
    "BENCH_observability.json"

CFG = ExperimentConfig(exp_id="perf_obs", launcher="flux",
                       workload="null", n_nodes=64, n_partitions=4,
                       waves=4, seed=0)

#: Allowed disabled-path slowdown.  The ISSUE budget is 2%; wall-clock
#: measurement noise on shared CI machines regularly exceeds that on
#: its own, so the hard gate adds a noise allowance and the strict 2%
#: is tracked via the recorded JSON.
MAX_DISABLED_OVERHEAD = 0.10

#: Allowed telemetry slowdown relative to the enabled path.  The ISSUE
#: budget for progress streaming is 5%; the hard gate again adds a
#: noise allowance, and the strict number is tracked via the JSON.
MAX_PROGRESS_OVERHEAD = 0.15


def _rate(observe: bool, progress: bool = False) -> float:
    wall0 = time.perf_counter()
    result = run_experiment(CFG, observe=observe,
                            progress=(lambda record: None)
                            if progress else None)
    wall = time.perf_counter() - wall0
    assert result.n_done == result.n_tasks == 14336
    return result.n_tasks / wall


def test_disabled_observability_overhead(benchmark, emit):
    # Each leg is a warmup + median-of-N in its own right; the two
    # disabled legs still bracket the enabled + progress ones so slow
    # machine drift shows up as disabled-round spread, not as fake
    # overhead.
    stats = run_once(benchmark, lambda: {
        "disabled_1": rate_stats(lambda: _rate(observe=False)),
        "enabled": rate_stats(lambda: _rate(observe=True), warmup=False),
        "progress": rate_stats(lambda: _rate(observe=True, progress=True),
                               warmup=False),
        "disabled_2": rate_stats(lambda: _rate(observe=False),
                                 warmup=False),
    })
    rates = {leg: s["median"] for leg, s in stats.items()}

    disabled = max(rates["disabled_1"], rates["disabled_2"])
    enabled = rates["enabled"]
    progress = rates["progress"]
    # Interleaving the rounds cancels machine-level drift: the two
    # disabled measurements bracket the instrumented ones.
    spread = abs(rates["disabled_1"] - rates["disabled_2"]) / disabled
    overhead = 1.0 - min(rates["disabled_1"], rates["disabled_2"]) / disabled
    enabled_cost = 1.0 - enabled / disabled
    # Telemetry rides on the instrumented loop, so its marginal cost
    # is measured against the enabled leg, not the disabled one.
    progress_cost = 1.0 - progress / enabled

    write_bench(BENCH_FILE, {
        "tasks_per_wall_second_disabled": disabled,
        "tasks_per_wall_second_enabled": enabled,
        "tasks_per_wall_second_progress": progress,
        "disabled_round_spread": spread,
        "enabled_slowdown": enabled_cost,
        "progress_slowdown": progress_cost,
        "spread": stats,
        "rounds": BENCH_ROUNDS,
    })

    emit(f"observability off: {disabled:,.0f} tasks/s  "
         f"on: {enabled:,.0f} tasks/s  "
         f"with progress: {progress:,.0f} tasks/s\n"
         f"(enabled slowdown {enabled_cost:+.1%}, "
         f"progress slowdown {progress_cost:+.1%}, "
         f"disabled round spread {spread:.1%})\n"
         f"wrote {BENCH_FILE}")

    # The two disabled rounds ARE the disabled path; their spread is
    # pure measurement noise and must sit inside the allowance that
    # the cross-commit tracking relies on.
    assert overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled-path rounds differ by {overhead:.1%} "
        f"(> {MAX_DISABLED_OVERHEAD:.0%}); machine too noisy to certify")
    # Live telemetry must stay in its budget: the probe is a countdown
    # in the instrumented loop and sampling is wall-clock limited.
    assert progress_cost <= MAX_PROGRESS_OVERHEAD, (
        f"progress streaming costs {progress_cost:.1%} over the "
        f"instrumented baseline (> {MAX_PROGRESS_OVERHEAD:.0%})")


def test_disabled_matches_kernel_baseline(emit):
    """Compare against BENCH_kernel.json when the kernel benchmark ran
    earlier in the same session (pytest runs files alphabetically, so
    ``test_perf_kernel`` precedes this file)."""
    kernel_file = BENCH_FILE.parent / "BENCH_kernel.json"
    if not kernel_file.is_file():
        emit("BENCH_kernel.json absent; baseline comparison skipped")
        return
    baseline = json.loads(kernel_file.read_text())["tasks_per_wall_second"]
    ours = json.loads(BENCH_FILE.read_text())[
        "tasks_per_wall_second_disabled"]
    ratio = ours / baseline
    emit(f"disabled-path rate vs kernel baseline: {ratio:.2f}x")
    # Same workload, same code path: anything below this is a real
    # regression, not noise.
    assert ratio > 0.75, (
        f"observability-disabled run reached only {ratio:.2f}x of the "
        f"kernel benchmark baseline ({ours:,.0f} vs {baseline:,.0f})")
