"""Fig. 4 — srun resource utilization under the concurrency ceiling.

Paper: 896 single-core dummy(180 s) tasks on 4 nodes (224 cores at
SMT=1).  Frontier's 112-concurrent-srun ceiling caps concurrency at
112 running tasks, pinning utilization to 50 %.
"""

from __future__ import annotations

from repro.analytics import concurrency_series
from repro.analytics.report import format_series, format_table
from repro.experiments import ExperimentConfig, run_experiment

from .conftest import run_once

PAPER_UTILIZATION = 0.50
PAPER_MAX_CONCURRENCY = 112


def test_fig4_srun_utilization(benchmark, emit):
    cfg = ExperimentConfig(exp_id="srun", launcher="srun", workload="dummy",
                           n_nodes=4, duration=180.0, waves=4)
    result = run_once(benchmark, lambda: run_experiment(cfg))

    series = concurrency_series(result.tasks, resolution=10.0)
    emit("Fig. 4: srun utilization, 896 x dummy(180 s) on 4 nodes\n"
         + format_table(
             ["metric", "paper", "measured"],
             [("tasks", 896, result.n_tasks),
              ("max concurrency", PAPER_MAX_CONCURRENCY, int(series.max())),
              ("utilization", PAPER_UTILIZATION,
               round(result.utilization_cores, 3))])
         + "\n" + format_series(series.times, series.values,
                                label="running tasks"))

    assert result.n_tasks == 896
    # The ceiling binds: concurrency plateaus at exactly 112.
    assert series.max() == PAPER_MAX_CONCURRENCY
    # Utilization is pinned at ~50 % (112 of 224 cores).
    assert abs(result.utilization_cores - PAPER_UTILIZATION) < 0.02
