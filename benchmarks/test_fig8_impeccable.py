"""Fig. 8 — IMPECCABLE at scale: srun vs Flux backends.

Paper (dummy 180 s tasks, 256 and 1024 Frontier nodes):

=============  ========  =========  ==========================
backend        nodes     makespan   CPU/GPU utilization
=============  ========  =========  ==========================
srun           256       ~26,000 s  30 % / 20 %
srun           1024      ~44,000 s  15 % / 14 %
flux           256       ~22,000 s  68 % / 33 %
flux           1024      ~17,500 s  69 % / 43 %
=============  ========  =========  ==========================

Tasks: ~550 at 256 nodes, ~1800 at 1024 nodes (1-7,168 cores, up to
1,024 GPUs).  The panels plot running-task concurrency and the
execution start rate over time.
"""

from __future__ import annotations

import numpy as np

from repro.analytics import (
    concurrency_series,
    start_rate_series,
    state_occupancy_series,
)
from repro.analytics.report import format_series, format_table
from repro.core.states import TaskState
from repro.experiments import ExperimentConfig, run_experiment

from .conftest import run_once

PAPER = {
    ("srun", 256): dict(makespan=26_000, cpu=0.30, gpu=0.20),
    ("srun", 1024): dict(makespan=44_000, cpu=0.15, gpu=0.14),
    ("flux", 256): dict(makespan=22_000, cpu=0.68, gpu=0.33),
    ("flux", 1024): dict(makespan=17_500, cpu=0.69, gpu=0.43),
}


def test_fig8_impeccable_campaign(benchmark, emit):
    results = {}

    def sweep():
        for launcher in ("srun", "flux"):
            for nodes in (256, 1024):
                cfg = ExperimentConfig(
                    exp_id=f"impeccable_{launcher}", launcher=launcher,
                    workload="impeccable", n_nodes=nodes)
                results[(launcher, nodes)] = run_experiment(cfg)
        return results

    run_once(benchmark, sweep)

    rows = []
    for key, paper in PAPER.items():
        r = results[key]
        rows.append((key[0], key[1], r.n_tasks,
                     paper["makespan"], round(r.makespan),
                     paper["cpu"], round(r.utilization_cores, 2),
                     paper["gpu"], round(r.utilization_gpus, 2)))
    emit("Fig. 8: IMPECCABLE campaign, srun vs Flux\n" + format_table(
        ["backend", "nodes", "tasks", "paper mkspan", "mkspan[s]",
         "paper cpu", "cpu util", "paper gpu", "gpu util"], rows))

    for (launcher, nodes), r in results.items():
        conc = concurrency_series(r.tasks, resolution=120.0)
        rate = start_rate_series(r.tasks, bin_width=120.0)
        emit(format_series(conc.times, conc.values,
                           label=f"{launcher}@{nodes}n running tasks")
             + "\n"
             + format_series(rate.times, rate.values,
                             label=f"{launcher}@{nodes}n start rate [/s]"))

    # Task counts near the paper's ~550 / ~1800.
    assert 430 <= results[("flux", 256)].n_tasks <= 700
    assert 1400 <= results[("flux", 1024)].n_tasks <= 2300
    # Ordering: Flux beats srun on makespan at 1024 nodes, decisively.
    assert (results[("flux", 1024)].makespan
            < 0.7 * results[("srun", 1024)].makespan)
    # Flux utilization beats srun's at 1024 nodes.
    assert (results[("flux", 1024)].utilization_cores
            > results[("srun", 1024)].utilization_cores)
    # Flux at 1024 nodes is faster than Flux at 256 (scaling works).
    assert (results[("flux", 1024)].makespan
            < results[("flux", 256)].makespan)
    # srun at 1024 is slower than srun at 256 (launch path degrades).
    assert (results[("srun", 1024)].makespan
            > results[("srun", 256)].makespan)
    # Makespan magnitudes within a factor-of-two of the paper.
    for key, paper in PAPER.items():
        measured = results[key].makespan
        assert 0.4 * paper["makespan"] <= measured <= 2.0 * paper["makespan"], \
            (key, measured)
    # "The number of running tasks consistently trails the number of
    # scheduled tasks, with the gap widening at 1024 nodes" (§4.2):
    # time-integrated scheduling backlog per task is far larger under
    # srun than under Flux at 1024 nodes.
    def backlog_per_task(result):
        series = state_occupancy_series(result.tasks,
                                        TaskState.AGENT_SCHEDULING,
                                        resolution=60.0)
        if series.values.size == 0:
            return 0.0
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(series.values,
                               series.times)) / result.n_tasks

    srun_backlog = backlog_per_task(results[("srun", 1024)])
    flux_backlog = backlog_per_task(results[("flux", 1024)])
    assert srun_backlog > 2 * flux_backlog
