"""Ablation — Dragon exec vs native function mode (DESIGN.md §5.3).

The paper runs Dragon *against its design* (launching executables) in
Fig. 5(c) and notes its strength is in-memory functions.  This
ablation quantifies the function-path advantage that motivates the
hybrid routing policy.
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.core import PartitionSpec, PilotDescription, Session
from repro.core.description import MODE_EXECUTABLE, MODE_FUNCTION
from repro.platform import frontier
from repro.workloads import dummy_workload

from .conftest import run_once


def _throughput(mode: str, n_nodes: int = 16, n_tasks: int = 4000) -> float:
    from repro.analytics import task_throughput

    session = Session(cluster=frontier(n_nodes), seed=17)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=n_nodes, partitions=(PartitionSpec("dragon"),)))
    tmgr.add_pilot(pilot)
    tasks = tmgr.submit_tasks(dummy_workload(n_tasks, duration=0.0,
                                             mode=mode))
    session.run(tmgr.wait_tasks())
    rate = task_throughput(tasks).avg
    session.close()
    return rate


def test_ablation_dragon_exec_vs_function(benchmark, emit):
    out = {}

    def run():
        out["executable"] = _throughput(MODE_EXECUTABLE)
        out["function"] = _throughput(MODE_FUNCTION)
        return out

    run_once(benchmark, run)
    speedup = out["function"] / out["executable"]
    emit("Ablation: Dragon task modality (16 nodes, null tasks)\n"
         + format_table(
             ["mode", "avg tasks/s"],
             [("executable (Fig. 5c config)", round(out["executable"], 1)),
              ("function (native mode)", round(out["function"], 1)),
              ("function/exec speedup", f"{speedup:.2f}x")]))

    # The native function path is substantially faster — the premise
    # of routing functions to Dragon in the hybrid configuration.
    assert speedup > 1.5
