"""Full-machine weak-scaling benchmark (not a paper figure).

Runs the ``frontier_full`` family — flux_n at a fixed 147
nodes/partition, from 588 nodes up to the whole 9408-node machine —
with one null-task wave per point, and writes wall time, simulated
throughput and peak RSS per point to ``BENCH_scale.json``.

Each point runs in a fresh subprocess so ``ru_maxrss`` is the honest
per-point peak (in-process it would only ever ratchet up), and so the
points do not share allocator state.  The family enables the scale
machinery this benchmark exists to guard: bulk submission, lean
retention, and a spilling profiler, all trace-neutral.

The full-machine point carries the ISSUE's resource budget: it must
finish inside ``WALL_BUDGET_S`` and ``RSS_BUDGET_MB``.  The budgets
are deliberately loose versus the measured values (documented in
EXPERIMENTS.md, "Simulator performance and scaling") — they are
there to catch order-of-magnitude regressions, not noise; trend
tracking happens on the recorded JSON across commits.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.experiments.configs import FRONTIER_SCALE_POINTS

from .conftest import run_once, write_bench

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

#: One wave keeps the sweep benchmark-sized (526,848 tasks at the
#: full-machine point); four-wave feasibility is documented, not run
#: on every commit.
WAVES = 1

#: Resource budget for the 9408-node / 64-partition point.
WALL_BUDGET_S = 600.0
RSS_BUDGET_MB = 2048.0

#: Target for the sharded full-machine point versus the sequential
#: one — only asserted on hosts with at least this many cores (the
#: ISSUE's bar: >= 2x on a 4-core host).
SHARD_SPEEDUP = 2.0
SHARD_MIN_CORES = 4

#: Runs in the child: one scaling point, metrics as JSON on stdout.
#: ``argv[3]`` selects sharding: ``"0"`` = sequential, anything else
#: is passed through as the config's ``shards`` value.
_CHILD = """\
import json, resource, sys, tempfile, time
from dataclasses import replace
from repro.experiments.configs import frontier_full_configs
from repro.experiments.harness import run_experiment

idx, waves, shards = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
cfg = replace(frontier_full_configs(waves=waves)[idx], seed=0)
if shards != "0":
    cfg = replace(cfg, shards=shards)
t0 = time.perf_counter()
res = run_experiment(cfg, spill_dir=tempfile.mkdtemp(prefix="repro-scale-"))
wall = time.perf_counter() - t0
point = {
    "n_nodes": cfg.n_nodes,
    "n_partitions": cfg.n_partitions,
    "n_tasks": res.n_tasks,
    "n_done": res.n_done,
    "wall_seconds": wall,
    "tasks_per_wall_second": res.n_tasks / wall,
    "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
}
if shards != "0":
    point["n_shards"] = res.n_shards
    point["shard_peak_rss_mb"] = res.shard_peak_rss_mb
print(json.dumps(point))
"""


def _run_point(idx: int, shards: str = "0") -> dict:
    env = dict(os.environ)
    src = str(BENCH_FILE.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(idx), str(WAVES), shards],
        capture_output=True, text=True, env=env, check=True)
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_weak_scaling_to_full_machine(benchmark, emit):
    # The sharded full-machine point only makes sense with real
    # parallelism; on a single-core host ``shards=auto`` resolves to
    # one shard (= sequential path) and the run would be a duplicate.
    ncores = os.cpu_count() or 1

    def sweep():
        pts = [_run_point(i) for i in range(len(FRONTIER_SCALE_POINTS))]
        if ncores >= 2:
            pts.append(_run_point(len(FRONTIER_SCALE_POINTS) - 1,
                                  shards="auto"))
        return pts

    points = run_once(benchmark, sweep)

    for p in points:
        assert p["n_done"] == p["n_tasks"], (
            f"{p['n_nodes']}-node point lost tasks: "
            f"{p['n_done']}/{p['n_tasks']}")

    write_bench(BENCH_FILE, {
        "waves": WAVES,
        "points": points,
        "wall_budget_s": WALL_BUDGET_S,
        "rss_budget_mb": RSS_BUDGET_MB,
    })

    rows = "\n".join(
        f"  {p['n_nodes']:>5} nodes / {p['n_partitions']:>2} parts"
        + (f" x{p['n_shards']} shards" if p.get("n_shards") else "")
        + f": {p['n_tasks']:>7,} tasks  {p['wall_seconds']:7.1f}s  "
        f"{p['tasks_per_wall_second']:7,.0f} tasks/s  "
        f"{p['peak_rss_mb']:6.0f} MB peak"
        for p in points)
    emit(f"weak scaling ({WAVES} wave):\n{rows}\nwrote {BENCH_FILE}")

    full = next(p for p in points
                if p["n_nodes"] == 9408 and not p.get("n_shards"))
    assert full["n_partitions"] == 64
    assert full["wall_seconds"] <= WALL_BUDGET_S, (
        f"full-machine point took {full['wall_seconds']:.0f}s "
        f"(budget {WALL_BUDGET_S:.0f}s)")
    assert full["peak_rss_mb"] <= RSS_BUDGET_MB, (
        f"full-machine point peaked at {full['peak_rss_mb']:.0f} MB "
        f"(budget {RSS_BUDGET_MB:.0f} MB)")

    sharded = next((p for p in points if p.get("n_shards")), None)
    if sharded is not None:
        assert sharded["wall_seconds"] <= WALL_BUDGET_S
        assert sharded["peak_rss_mb"] <= RSS_BUDGET_MB
        for rss in sharded["shard_peak_rss_mb"]:
            assert rss <= RSS_BUDGET_MB
        if ncores >= SHARD_MIN_CORES:
            speedup = (sharded["tasks_per_wall_second"]
                       / full["tasks_per_wall_second"])
            assert speedup >= SHARD_SPEEDUP, (
                f"sharded full-machine point at {speedup:.2f}x the "
                f"sequential rate (target {SHARD_SPEEDUP:.1f}x on "
                f">={SHARD_MIN_CORES} cores)")
