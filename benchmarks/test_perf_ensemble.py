"""Ensemble-engine cost-per-seed benchmark (not a paper figure).

Four legs, one ``BENCH_ensemble.json``:

* **srun** (top-level keys, the historical baseline): 64 seeds of the
  4-node one-wave null sweep (224 tasks/seed) through the vectorized
  engine vs 64 independent sequential ``run_experiment`` calls.  Both
  legs run under the same ``REPRO_BENCH_ROUNDS`` policy, so the
  recorded min/median/max spreads are comparable round-for-round.
* **flux_1** and **dragon** (nested sections): the same
  ensemble-vs-independent comparison for the newly vectorized
  launchers, 32 seeds each at one node.  The flux per-seed speedup
  carries the ISSUE's >=5x contract inline; both sections' rate and
  speedup keys are prefix-matched by ``tools/bench_gate.py`` and so
  gate regressions from the commit after they first land.
* **replay_parallel**: the fallback for configs no recurrence covers
  (flux_n with real partitions) — auto-sharded parallel replay vs a
  pinned serial replay.  Its speedup scales with the host's core
  count, so it is recorded under a key the gate does *not* match and
  asserted inline (>=2x) only on >=4-core hosts.

The comparisons are apples-to-apples because the per-seed *outputs*
are identical by construction: metrics float-equal, exported profiles
byte-equal (pinned by ``tests/ensemble/``) — the engines differ only
in how much work they share across members.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.ensemble import run_ensemble, supports_vectorized
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.configs import config_by_id

from .conftest import BENCH_ROUNDS, rate_stats, run_once, write_bench

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_ensemble.json"

#: The reference sweep: srun at 4 nodes, one null wave = 224 tasks
#: per seed, 64 seeds.
CFG = ExperimentConfig(exp_id="perf_ensemble", launcher="srun",
                       workload="null", n_nodes=4, waves=1, seed=0)
N_SEEDS = 64
SEEDS = list(range(N_SEEDS))

#: Acceptance gates: per-seed ensemble cost at most a tenth of an
#: independent srun run's, a fifth of a flux one's.
MIN_SPEEDUP = 10.0
MIN_FLUX_SPEEDUP = 5.0
#: Parallel-replay contract, asserted only where the pool has room.
MIN_REPLAY_PARALLEL_SPEEDUP = 2.0
MIN_CORES_FOR_REPLAY_GATE = 4

#: The vectorized flux/dragon legs: one node, two waves = 112 tasks
#: per seed, 32 seeds.  Their per-seed floor is the real zero-task
#: bootstrap capture (flux/dragon draw per-seed startup randomness),
#: so more tasks per seed is what the speedup actually amortizes;
#: their independent legs are full DES runs, an order of magnitude
#: slower per task than srun's.
VEC_N_SEEDS = 32
VEC_WAVES = 2
VEC_TASKS = 112
#: The replay-fallback leg: flux_n with two real partitions (112
#: tasks/seed) — enough seeds that pool spawn overhead amortizes.
REPLAY_N_SEEDS = 128


def _tasks(result, expected: int) -> int:
    assert result.n_done == result.n_tasks == expected
    return result.n_tasks


def _ensemble_rate(cfg, seeds, tasks_per_seed):
    def rate() -> float:
        wall0 = time.perf_counter()
        ens = run_ensemble(cfg, seeds=seeds)
        wall = time.perf_counter() - wall0
        assert ens.engine == "vectorized"
        total = sum(_tasks(m.result, tasks_per_seed)
                    for m in ens.members)
        return total / wall

    return rate


def _independent_rate(cfg, seeds, tasks_per_seed):
    def rate() -> float:
        wall0 = time.perf_counter()
        total = sum(_tasks(run_experiment(cfg.with_seed(seed)),
                           tasks_per_seed)
                    for seed in seeds)
        return total / (time.perf_counter() - wall0)

    return rate


def _vectorized_leg(cfg, n_seeds, tasks_per_seed) -> dict:
    seeds = list(range(n_seeds))
    ensemble = rate_stats(_ensemble_rate(cfg, seeds, tasks_per_seed))
    independent = rate_stats(_independent_rate(cfg, seeds,
                                               tasks_per_seed))
    return {
        "n_seeds": n_seeds,
        "tasks_per_seed": tasks_per_seed,
        "tasks_per_wall_second_ensemble": ensemble["median"],
        "tasks_per_wall_second_independent": independent["median"],
        "per_seed_speedup": ensemble["median"] / independent["median"],
        "spread": {"ensemble": ensemble, "independent": independent},
    }


def _replay_parallel_leg() -> dict:
    from repro.experiments.parallel import resolve_jobs

    cfg = config_by_id("flux_n", n_nodes=2, n_partitions=2, waves=1)
    seeds = list(range(REPLAY_N_SEEDS))
    tasks_per_seed = 112

    def serial() -> float:
        wall0 = time.perf_counter()
        ens = run_ensemble(cfg, seeds=seeds, parallel=1)
        wall = time.perf_counter() - wall0
        assert ens.engine == "replay" and ens.n_workers == 1
        total = sum(_tasks(m.result, tasks_per_seed)
                    for m in ens.members)
        return total / wall

    def auto() -> float:
        wall0 = time.perf_counter()
        ens = run_ensemble(cfg, seeds=seeds)   # parallel unset -> auto
        wall = time.perf_counter() - wall0
        assert ens.engine == "replay"
        total = sum(_tasks(m.result, tasks_per_seed)
                    for m in ens.members)
        return total / wall

    serial_stats = rate_stats(serial)
    auto_stats = rate_stats(auto)
    return {
        "config": "flux_n-2n2p",
        "n_seeds": REPLAY_N_SEEDS,
        "tasks_per_seed": tasks_per_seed,
        "n_workers": resolve_jobs("auto", n_items=REPLAY_N_SEEDS),
        # Machine-dependent (scales with cores), so these keys stay
        # outside the gate's metric prefixes on purpose.
        "serial_rate": serial_stats["median"],
        "auto_rate": auto_stats["median"],
        "speedup": auto_stats["median"] / serial_stats["median"],
        "spread": {"serial": serial_stats, "auto": auto_stats},
    }


def test_ensemble_per_seed_speedup(benchmark, emit):
    assert supports_vectorized(CFG)
    flux_cfg = config_by_id("flux_1", n_nodes=1, waves=VEC_WAVES)
    dragon_cfg = config_by_id("dragon", n_nodes=1, waves=VEC_WAVES)
    assert supports_vectorized(flux_cfg)
    assert supports_vectorized(dragon_cfg)

    def _measure():
        srun = _vectorized_leg(CFG, N_SEEDS, 224)
        flux = _vectorized_leg(flux_cfg, VEC_N_SEEDS, VEC_TASKS)
        dragon = _vectorized_leg(dragon_cfg, VEC_N_SEEDS, VEC_TASKS)
        replay = _replay_parallel_leg()
        return srun, flux, dragon, replay

    srun, flux, dragon, replay = run_once(benchmark, _measure)
    speedup = srun["per_seed_speedup"]

    write_bench(BENCH_FILE, {
        "n_seeds": N_SEEDS,
        "tasks_per_seed": 224,
        "tasks_per_wall_second_ensemble":
            srun["tasks_per_wall_second_ensemble"],
        "tasks_per_wall_second_independent":
            srun["tasks_per_wall_second_independent"],
        "per_seed_speedup": speedup,
        "spread": srun["spread"],
        "rounds": BENCH_ROUNDS,
        "flux_1": flux,
        "dragon": dragon,
        "replay_parallel": replay,
    })

    emit("per-seed ensemble speedups (vectorized vs independent):\n"
         f"  srun 4n:   {speedup:6.1f}x  "
         f"({srun['tasks_per_wall_second_ensemble']:,.0f} vs "
         f"{srun['tasks_per_wall_second_independent']:,.0f} tasks/s, "
         f"{N_SEEDS} seeds x 224 tasks)\n"
         f"  flux_1 1n: {flux['per_seed_speedup']:6.1f}x  "
         f"({VEC_N_SEEDS} seeds x {VEC_TASKS} tasks)\n"
         f"  dragon 1n: {dragon['per_seed_speedup']:6.1f}x  "
         f"({VEC_N_SEEDS} seeds x {VEC_TASKS} tasks)\n"
         f"replay fallback (flux_n-2n2p, {replay['n_workers']} "
         f"workers): {replay['speedup']:.2f}x auto-parallel vs serial\n"
         f"wrote {BENCH_FILE}")

    assert speedup >= MIN_SPEEDUP, (
        f"srun ensemble engine is only {speedup:.1f}x cheaper per seed "
        f"than independent runs (gate: {MIN_SPEEDUP:.0f}x)")
    assert flux["per_seed_speedup"] >= MIN_FLUX_SPEEDUP, (
        f"flux ensemble engine is only {flux['per_seed_speedup']:.1f}x "
        f"cheaper per seed (gate: {MIN_FLUX_SPEEDUP:.0f}x)")
    if replay["n_workers"] >= MIN_CORES_FOR_REPLAY_GATE:
        assert replay["speedup"] >= MIN_REPLAY_PARALLEL_SPEEDUP, (
            f"auto-parallel replay is only {replay['speedup']:.2f}x "
            f"faster than serial with {replay['n_workers']} workers "
            f"(gate: {MIN_REPLAY_PARALLEL_SPEEDUP:.0f}x on >=4 cores)")
